//! The ratchet baseline: grandfathered violations, committed as text.
//!
//! Entries key on `(rule, file, normalized snippet)` — *not* line numbers,
//! which drift with every unrelated edit. Matching is multiset matching:
//! three identical grandfathered `unwrap()`s in one file consume three
//! baseline entries, so deleting one of them makes one entry stale and the
//! ratchet notices. Stale entries are an error under `--deny`: burn-downs
//! must be committed (`--write-baseline`), or the baseline would quietly
//! re-grow headroom for new violations with the same snippet text.

use crate::rules::Violation;
use std::collections::HashMap;

/// One grandfathered violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    pub rule: String,
    pub file: String,
    pub snippet: String,
}

impl Entry {
    fn key(&self) -> String {
        format!("{}\t{}\t{}", self.rule, self.file, self.snippet)
    }
}

/// Parses the committed baseline. Blank lines and `#` comments are
/// skipped; anything else must be `rule<TAB>file<TAB>snippet`.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let l = raw.trim_end();
        if l.trim().is_empty() || l.starts_with('#') {
            continue;
        }
        let mut parts = l.splitn(3, '\t');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(file), Some(snippet)) if !rule.is_empty() && !file.is_empty() => {
                entries.push(Entry {
                    rule: rule.to_string(),
                    file: file.to_string(),
                    snippet: snippet.to_string(),
                });
            }
            _ => {
                return Err(format!(
                    "baseline line {}: expected rule<TAB>file<TAB>snippet, got {l:?}",
                    idx + 1
                ))
            }
        }
    }
    Ok(entries)
}

/// Renders violations as a baseline file, sorted for stable diffs.
pub fn render(violations: &[Violation]) -> String {
    let mut lines: Vec<String> = violations
        .iter()
        .map(|v| format!("{}\t{}\t{}", v.rule.id(), v.file, v.snippet))
        .collect();
    lines.sort();
    let mut out = String::from(
        "# fgdb-lint baseline: grandfathered violations (ratchet-only).\n\
         # Regenerate with `cargo run -p fgdb-lint -- --write-baseline` after a burn-down.\n\
         # Format: rule<TAB>file<TAB>whitespace-normalized source line.\n",
    );
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// The result of matching current violations against the baseline.
#[derive(Debug, Default)]
pub struct Matched {
    /// Violations not covered by the baseline — these fail the gate.
    pub fresh: Vec<Violation>,
    /// How many current violations the baseline absorbed.
    pub baselined: usize,
    /// Baseline entries with no surviving violation — a burn-down that
    /// must be committed.
    pub stale: Vec<Entry>,
}

/// Multiset-matches `violations` against `entries`.
pub fn apply(violations: Vec<Violation>, entries: &[Entry]) -> Matched {
    let mut budget: HashMap<String, usize> = HashMap::new();
    for e in entries {
        *budget.entry(e.key()).or_insert(0) += 1;
    }
    let mut m = Matched::default();
    for v in violations {
        let key = format!("{}\t{}\t{}", v.rule.id(), v.file, v.snippet);
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                m.baselined += 1;
            }
            _ => m.fresh.push(v),
        }
    }
    // Whatever budget survives was never consumed: stale entries.
    for e in entries {
        let key = e.key();
        if let Some(n) = budget.get_mut(&key) {
            if *n > 0 {
                *n -= 1;
                m.stale.push(e.clone());
            }
        }
    }
    m
}
