//! `fgdb-lint`: workspace static analysis that mechanizes the repo's
//! bug-class invariants.
//!
//! PR 8 found silently-truncating length casts in the wire encoder by
//! hand; this crate turns that class of review finding — and the
//! panic-free-serving, annotated-synchronization, and documented-knob
//! invariants from PRs 5–8 — into a mechanical, ratcheted gate. See
//! [`rules`] for the rule catalogue, [`lexer`] for why the lexer is
//! hand-rolled, and [`baseline`] for the ratchet semantics.
//!
//! The crate is self-contained on purpose (no crates.io deps, in the
//! spirit of `shims/`): the gate itself can never be broken by a
//! dependency the offline container cannot fetch.

pub mod baseline;
pub mod lexer;
pub mod rules;

use rules::{Rule, Violation};
use std::fs;
use std::path::{Path, PathBuf};

/// How a run is configured; mirrors the CLI flags.
#[derive(Debug)]
pub struct Options {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Baseline file to match against; `None` disables the baseline
    /// (`--no-baseline`), so every violation reports as fresh.
    pub baseline_path: Option<PathBuf>,
    /// Regenerate the baseline from the current tree instead of gating.
    pub write_baseline: bool,
}

/// Everything a run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not absorbed by the baseline, in walk order.
    pub fresh: Vec<Violation>,
    /// How many violations the baseline absorbed.
    pub baselined: usize,
    /// Baseline entries whose violation no longer exists (burn-down to
    /// commit).
    pub stale: Vec<baseline::Entry>,
    /// Total violations before baseline matching.
    pub total: usize,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// Path the baseline was written to, when `write_baseline` was set.
    pub wrote_baseline: Option<PathBuf>,
}

impl Report {
    /// True when the gate should fail under `--deny`: any fresh violation,
    /// or any stale baseline entry (burn-downs must be committed).
    pub fn deny(&self) -> bool {
        !self.fresh.is_empty() || !self.stale.is_empty()
    }
}

/// Collects every workspace production source file: `src/` trees of the
/// root crate, `crates/*`, and `shims/*`. Tests/benches/examples dirs are
/// out of scope by construction — R1–R3 are production-path invariants,
/// and in-file `#[cfg(test)]` modules are exempted at the rule layer.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut src_dirs = vec![root.join("src")];
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        if !dir.is_dir() {
            continue;
        }
        for member in read_dir_sorted(&dir)? {
            let src = member.join("src");
            if src.is_dir() {
                src_dirs.push(src);
            }
        }
    }
    let mut files = Vec::new();
    for dir in src_dirs {
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    Ok(files)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes — the form rule scoping
/// and baselines key on, stable across platforms.
pub fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Committed bench baselines (`BENCH_*.json` in the workspace root), for
/// rule R4's README check.
pub fn bench_baselines(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for path in read_dir_sorted(root)? {
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            if name.starts_with("BENCH_") && name.ends_with(".json") && path.is_file() {
                out.push(name.to_string());
            }
        }
    }
    Ok(out)
}

/// Runs the full pass: walk, lex, rules, R4 doc checks, baseline match.
pub fn run(opts: &Options) -> Result<Report, String> {
    let files = workspace_files(&opts.root)?;
    let mut violations: Vec<Violation> = Vec::new();
    let mut knob_sites: Vec<(String, String, usize)> = Vec::new();
    let mut files_scanned = 0usize;
    for file in &files {
        let src = fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let rel = rel_path(&opts.root, file);
        let analysis = rules::analyze_source(&rel, &src);
        violations.extend(analysis.violations);
        for (knob, line) in analysis.knobs {
            knob_sites.push((knob, rel.clone(), line));
        }
        files_scanned += 1;
    }

    let readme_path = opts.root.join("README.md");
    let readme = fs::read_to_string(&readme_path)
        .map_err(|e| format!("read {}: {e}", readme_path.display()))?;
    violations.extend(rules::check_docs(
        &readme,
        &knob_sites,
        &bench_baselines(&opts.root)?,
    ));

    // Walk order is deterministic, but R4 findings land last; sort so
    // output and baselines group by file regardless of rule.
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let total = violations.len();

    if opts.write_baseline {
        let path = opts
            .baseline_path
            .clone()
            .unwrap_or_else(|| opts.root.join(BASELINE_FILE));
        fs::write(&path, baseline::render(&violations))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        return Ok(Report {
            fresh: Vec::new(),
            baselined: total,
            stale: Vec::new(),
            total,
            files_scanned,
            wrote_baseline: Some(path),
        });
    }

    let matched = match &opts.baseline_path {
        Some(path) => {
            let text = match fs::read_to_string(path) {
                Ok(t) => t,
                // A missing baseline is an empty one: first run fails on
                // everything until `--write-baseline` commits the debt.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                Err(e) => return Err(format!("read {}: {e}", path.display())),
            };
            baseline::apply(violations, &baseline::parse(&text)?)
        }
        None => baseline::Matched {
            fresh: violations,
            ..Default::default()
        },
    };
    Ok(Report {
        fresh: matched.fresh,
        baselined: matched.baselined,
        stale: matched.stale,
        total,
        files_scanned,
        wrote_baseline: None,
    })
}

/// Default committed baseline filename, relative to the workspace root.
pub const BASELINE_FILE: &str = "fgdb-lint.baseline";

/// Per-rule fresh-violation counts, for summaries.
pub fn count_by_rule(violations: &[Violation]) -> Vec<(Rule, usize)> {
    let mut counts: Vec<(Rule, usize)> = Vec::new();
    for v in violations {
        match counts.iter_mut().find(|(r, _)| *r == v.rule) {
            Some((_, n)) => *n += 1,
            None => counts.push((v.rule, 1)),
        }
    }
    counts.sort_by_key(|&(r, _)| r);
    counts
}
