//! The rule engine: fgdb's bug-class invariants as token-window checks.
//!
//! Four rules, each mechanizing an invariant a past PR established by hand
//! (see `docs/ARCHITECTURE.md` §Static analysis for the catalogue):
//!
//! * **cast** (R1) — no narrowing `as` casts on the persisted-format and
//!   wire paths, and no `len() as <narrow>` anywhere: the PR-8
//!   wire-truncation bug class. Checked `try_from`/`len_u32`-style paths
//!   are the required alternative.
//! * **panic** (R2) — no `unwrap`/`expect`/`panic!`-family calls and no
//!   bare slice indexing in the panic-free serving/durability modules.
//! * **sync** (R3) — every `Ordering::Relaxed` and every zero-argument
//!   lock acquisition in hot-path modules must carry a
//!   `lint:allow(sync, reason)` naming why it is safe.
//! * **docs** (R4) — every `FGDB_*` knob string in code must appear in
//!   README's knob table; every committed `BENCH_*.json` must appear in
//!   README's baseline table.
//!
//! Test code (`#[cfg(test)]` / `#[test]` items) and doc-comment examples
//! are exempt from R1–R3; R4 spans everything, tests included — a knob
//! only a stress test reads still deserves its README row.

use crate::lexer::{lex, Lexed, SuppKind, Tok, TokKind};

/// Rule identifiers — the names `lint:allow(rule, …)` refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: narrowing `as` casts on length/wire/format paths.
    Cast,
    /// R2: panic paths (unwrap/expect/panic!/bare indexing) in panic-free
    /// modules.
    Panic,
    /// R3: unannotated `Ordering::Relaxed` / lock acquisition in hot-path
    /// modules.
    Sync,
    /// R4: README drift (knob table, bench baseline table).
    Docs,
    /// Meta: a malformed `lint:allow` (missing reason, unknown rule…).
    Suppression,
}

impl Rule {
    /// The stable id used in suppressions, baselines, and JSON output.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Cast => "cast",
            Rule::Panic => "panic",
            Rule::Sync => "sync",
            Rule::Docs => "docs",
            Rule::Suppression => "suppression",
        }
    }

    fn from_id(s: &str) -> Option<Rule> {
        Some(match s {
            "cast" => Rule::Cast,
            "panic" => Rule::Panic,
            "sync" => Rule::Sync,
            "docs" => Rule::Docs,
            "suppression" => Rule::Suppression,
            _ => return None,
        })
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The offending source line, whitespace-normalized (the baseline key).
    pub snippet: String,
    pub message: String,
}

/// Everything `analyze_source` learned about one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    pub violations: Vec<Violation>,
    /// `FGDB_*` knob names found in string literals, with first-use line.
    pub knobs: Vec<(String, usize)>,
}

// ---------------------------------------------------------------------------
// Scopes: which invariant applies where
// ---------------------------------------------------------------------------

/// R1 file scope: the wire encoder and the durable format/WAL/store — the
/// modules whose length fields reach disk or the network.
fn cast_scoped(path: &str) -> bool {
    matches!(
        path,
        "crates/serve/src/protocol.rs"
            | "crates/durability/src/format.rs"
            | "crates/durability/src/wal.rs"
            | "crates/durability/src/store.rs"
    )
}

/// R2 file scope: the panic-free serving and recovery loops.
fn panic_scoped(path: &str) -> bool {
    (path.starts_with("crates/serve/src/") && path.ends_with(".rs"))
        || (path.starts_with("crates/durability/src/") && path.ends_with(".rs"))
        || path == "crates/core/src/serving.rs"
        || path == "crates/core/src/supervise.rs"
}

/// R3 file scope: hot-path modules where a mis-ordered atomic or a lock on
/// the sampling path is a real (and silent) scalability bug.
fn sync_scoped(path: &str) -> bool {
    (path.starts_with("crates/graph/src/") && path.ends_with(".rs"))
        || (path.starts_with("crates/mcmc/src/") && path.ends_with(".rs"))
        || path == "crates/core/src/serving.rs"
}

/// Cast targets R1 flags: every integer type strictly narrower than 64
/// bits. 64/128-bit targets are widening from any integer the format and
/// wire paths carry; `usize` is exempt because the servers this repo
/// targets are 64-bit and every decoded `usize` is bounds-checked at its
/// decode site (see ARCHITECTURE.md §Static analysis for the heuristic's
/// boundary).
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Zero-argument acquisition methods R3 tracks.
const LOCK_METHODS: [&str; 6] = ["lock", "try_lock", "read", "try_read", "write", "try_write"];

/// Keywords that may legitimately precede `[` without it being an index
/// expression (array types, slice patterns, array literals after these).
const NON_INDEX_KEYWORDS: [&str; 14] = [
    "mut", "ref", "dyn", "in", "return", "break", "else", "match", "if", "while", "loop", "move",
    "let", "const",
];

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]` items.
fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct(b'#') && toks.get(i + 1).is_some_and(|t| t.is_punct(b'[')) {
            let attr_line = toks[i].line;
            let (is_test, after_attr) = scan_attribute(toks, i + 1);
            if is_test {
                let end = item_end(toks, after_attr);
                let end_line = toks
                    .get(end.saturating_sub(1).min(toks.len().saturating_sub(1)))
                    .map_or(attr_line, |t| t.line);
                regions.push((attr_line, end_line));
                i = end;
                continue;
            }
            i = after_attr;
            continue;
        }
        i += 1;
    }
    regions
}

/// Parses one `[…]` attribute starting at its `[`. Returns whether it is a
/// test gate and the index just past the closing `]`.
fn scan_attribute(toks: &[Tok], open: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut first_ident: Option<&str> = None;
    let mut saw_test = false;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b']') => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            TokKind::Ident => {
                if first_ident.is_none() {
                    first_ident = Some(&toks[i].text);
                }
                if toks[i].text == "test" {
                    saw_test = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let is_test = match first_ident {
        Some("test") => true,
        Some("cfg") | Some("cfg_attr") => saw_test,
        _ => false,
    };
    (is_test, i)
}

/// Finds the end of the item following an attribute: skips further
/// attributes, then consumes to the matching `}` of the first top-level
/// brace (or to a terminating `;` for braceless items). Returns the index
/// just past the item.
fn item_end(toks: &[Tok], mut i: usize) -> usize {
    // Skip stacked attributes (`#[cfg(test)] #[allow(…)] fn …`).
    while i < toks.len()
        && toks[i].is_punct(b'#')
        && toks.get(i + 1).is_some_and(|t| t.is_punct(b'['))
    {
        let (_, after) = scan_attribute(toks, i + 1);
        i = after;
    }
    let mut paren = 0i64;
    let mut bracket = 0i64;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct(b'(') => paren += 1,
            TokKind::Punct(b')') => paren -= 1,
            TokKind::Punct(b'[') => bracket += 1,
            TokKind::Punct(b']') => bracket -= 1,
            TokKind::Punct(b';') if paren == 0 && bracket == 0 => return i + 1,
            TokKind::Punct(b'{') if paren == 0 && bracket == 0 => {
                let mut depth = 0i64;
                while i < toks.len() {
                    match toks[i].kind {
                        TokKind::Punct(b'{') => depth += 1,
                        TokKind::Punct(b'}') => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// Suppression resolution
// ---------------------------------------------------------------------------

/// Per-file suppression index: which (rule, line) pairs are covered, and
/// which suppressions were used (for honest reporting).
struct Allows {
    /// `(rule, line)` covered by line-form suppressions.
    line_allows: Vec<(Rule, usize)>,
    /// `(rule, start, end)` regions from start/end pairs.
    regions: Vec<(Rule, usize, usize)>,
}

fn build_allows(lexed: &Lexed, file: &str, out: &mut Vec<Violation>) -> Allows {
    let mut line_allows = Vec::new();
    let mut regions: Vec<(Rule, usize, usize)> = Vec::new();
    let mut open: Vec<(Rule, usize)> = Vec::new();
    for s in &lexed.suppressions {
        let Some(rule) = Rule::from_id(&s.rule) else {
            out.push(Violation {
                rule: Rule::Suppression,
                file: file.to_string(),
                line: s.line,
                snippet: snippet_of(lexed, s.line),
                message: format!(
                    "lint:allow names unknown rule `{}` (known: cast, panic, sync, docs)",
                    s.rule
                ),
            });
            continue;
        };
        match s.kind {
            SuppKind::Line => {
                let target = if s.standalone {
                    lexed.next_code_line(s.line + 1).unwrap_or(s.line)
                } else {
                    s.line
                };
                line_allows.push((rule, target));
            }
            SuppKind::Start => open.push((rule, s.line)),
            SuppKind::End => {
                // Close the innermost open region for this rule.
                match open.iter().rposition(|(r, _)| *r == rule) {
                    Some(idx) => {
                        let (r, start) = open.remove(idx);
                        regions.push((r, start, s.line));
                    }
                    None => out.push(Violation {
                        rule: Rule::Suppression,
                        file: file.to_string(),
                        line: s.line,
                        snippet: snippet_of(lexed, s.line),
                        message: format!("lint:allow-end({}) without a matching start", s.rule),
                    }),
                }
            }
        }
    }
    for (rule, start) in open {
        out.push(Violation {
            rule: Rule::Suppression,
            file: file.to_string(),
            line: start,
            snippet: snippet_of(lexed, start),
            message: format!("lint:allow-start({}) never closed", rule.id()),
        });
        // Fail closed: honoring an unclosed start to end-of-file would let
        // one stray comment disable a rule for a whole module, so it is
        // dropped entirely.
    }
    Allows {
        line_allows,
        regions,
    }
}

impl Allows {
    fn covered(&self, rule: Rule, line: usize) -> bool {
        self.line_allows
            .iter()
            .any(|&(r, l)| r == rule && l == line)
            || self
                .regions
                .iter()
                .any(|&(r, s, e)| r == rule && s <= line && line <= e)
    }
}

fn snippet_of(lexed: &Lexed, line: usize) -> String {
    lexed
        .lines
        .get(line.saturating_sub(1))
        .map(|l| normalize(l))
        .unwrap_or_default()
}

/// Whitespace-normalizes a source line: the stable key baselines match on
/// (line numbers drift with every edit; the text of a violation does not).
pub fn normalize(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut last_space = true;
    for ch in line.trim().chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(ch);
            last_space = false;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The per-file pass
// ---------------------------------------------------------------------------

/// Runs every token rule over one file. `path` must be workspace-relative
/// with forward slashes — scoping is path-based.
pub fn analyze_source(path: &str, src: &str) -> FileAnalysis {
    let lexed = lex(src);
    let mut violations = Vec::new();
    for m in &lexed.malformed {
        violations.push(Violation {
            rule: Rule::Suppression,
            file: path.to_string(),
            line: m.line,
            snippet: snippet_of(&lexed, m.line),
            message: m.problem.clone(),
        });
    }
    let allows = build_allows(&lexed, path, &mut violations);
    let regions = test_regions(&lexed.toks);
    let in_test = |line: usize| regions.iter().any(|&(s, e)| s <= line && line <= e);

    let toks = &lexed.toks;
    let mut knobs: Vec<(String, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        // R4 collection: exact FGDB_* knob literals, everywhere.
        if t.kind == TokKind::Str
            && is_knob_literal(&t.text)
            && !knobs.iter().any(|(k, _)| k == &t.text)
        {
            knobs.push((t.text.clone(), t.line));
        }
        if in_test(t.line) {
            continue;
        }

        // R1: `as <narrow-int>` in scoped files; `len() as <narrow-int>`
        // everywhere.
        if t.is_ident("as") {
            if let Some(ty) = toks.get(i + 1) {
                if ty.kind == TokKind::Ident && NARROW_INTS.contains(&ty.text.as_str()) {
                    let feeds_len = i >= 3
                        && toks[i - 1].is_punct(b')')
                        && toks[i - 2].is_punct(b'(')
                        && toks[i - 3].is_ident("len");
                    if feeds_len || cast_scoped(path) {
                        push_unless_allowed(
                            &mut violations,
                            &allows,
                            &lexed,
                            Rule::Cast,
                            path,
                            t.line,
                            if feeds_len {
                                format!(
                                    "length expression truncated by `as {}` — use a checked \
                                     `{}::try_from` (len_u32-style) conversion",
                                    ty.text, ty.text
                                )
                            } else {
                                format!(
                                    "narrowing `as {}` on a format/wire path — use `{}::try_from` \
                                     with a typed error",
                                    ty.text, ty.text
                                )
                            },
                        );
                    }
                }
            }
        }

        if panic_scoped(path) {
            // R2: `.unwrap()` / `.expect(` method calls.
            if t.is_punct(b'.') {
                if let Some(m) = toks.get(i + 1) {
                    let unwrap_call = m.is_ident("unwrap")
                        && toks.get(i + 2).is_some_and(|t| t.is_punct(b'('))
                        && toks.get(i + 3).is_some_and(|t| t.is_punct(b')'));
                    let expect_call =
                        m.is_ident("expect") && toks.get(i + 2).is_some_and(|t| t.is_punct(b'('));
                    if unwrap_call || expect_call {
                        push_unless_allowed(
                            &mut violations,
                            &allows,
                            &lexed,
                            Rule::Panic,
                            path,
                            t.line,
                            format!(
                                "`.{}()` in a panic-free module — return the module's typed \
                                 error instead",
                                m.text
                            ),
                        );
                    }
                }
            }
            // R2: panic-family macros.
            if t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && toks.get(i + 1).is_some_and(|n| n.is_punct(b'!'))
            {
                push_unless_allowed(
                    &mut violations,
                    &allows,
                    &lexed,
                    Rule::Panic,
                    path,
                    t.line,
                    format!(
                        "`{}!` in a panic-free module — return a typed error",
                        t.text
                    ),
                );
            }
            // R2: bare slice indexing `expr[…]`.
            if t.is_punct(b'[') && i > 0 {
                let prev = &toks[i - 1];
                let indexes = match &prev.kind {
                    TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Punct(b')') | TokKind::Punct(b']') => true,
                    _ => false,
                };
                if indexes {
                    push_unless_allowed(
                        &mut violations,
                        &allows,
                        &lexed,
                        Rule::Panic,
                        path,
                        t.line,
                        "bare slice indexing in a panic-free module — use `.get(…)` or a \
                         length-checked helper"
                            .to_string(),
                    );
                }
            }
        }

        if sync_scoped(path) {
            // R3: Ordering::Relaxed must be annotated.
            if t.is_ident("Relaxed")
                && i >= 3
                && toks[i - 1].is_punct(b':')
                && toks[i - 2].is_punct(b':')
                && toks[i - 3].is_ident("Ordering")
                && !allows.covered(Rule::Sync, t.line)
            {
                violations.push(Violation {
                    rule: Rule::Sync,
                    file: path.to_string(),
                    line: t.line,
                    snippet: snippet_of(&lexed, t.line),
                    message: "`Ordering::Relaxed` in a hot-path module must carry \
                              `lint:allow(sync, reason)` naming why relaxed ordering is safe"
                        .to_string(),
                });
            }
            // R3: zero-argument lock acquisitions must be annotated.
            if t.is_punct(b'.') {
                if let Some(m) = toks.get(i + 1) {
                    if m.kind == TokKind::Ident
                        && LOCK_METHODS.contains(&m.text.as_str())
                        && toks.get(i + 2).is_some_and(|t| t.is_punct(b'('))
                        && toks.get(i + 3).is_some_and(|t| t.is_punct(b')'))
                        && !allows.covered(Rule::Sync, m.line)
                    {
                        violations.push(Violation {
                            rule: Rule::Sync,
                            file: path.to_string(),
                            line: m.line,
                            snippet: snippet_of(&lexed, m.line),
                            message: format!(
                                "`.{}()` acquisition in a hot-path module must carry \
                                 `lint:allow(sync, reason)` naming why it cannot stall sampling",
                                m.text
                            ),
                        });
                    }
                }
            }
        }
    }

    // One violation per (rule, line): `a[0][1]` or a line with two casts
    // reads as one finding, keeping baselines stable under rewrites that
    // merge or split expressions on a line.
    violations.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.file == b.file);
    FileAnalysis { violations, knobs }
}

fn push_unless_allowed(
    violations: &mut Vec<Violation>,
    allows: &Allows,
    lexed: &Lexed,
    rule: Rule,
    path: &str,
    line: usize,
    message: String,
) {
    if allows.covered(rule, line) {
        return;
    }
    violations.push(Violation {
        rule,
        file: path.to_string(),
        line,
        snippet: snippet_of(lexed, line),
        message,
    });
}

/// True for a string literal that *is* a knob name (`FGDB_FSYNC`), as
/// opposed to prose that merely mentions one.
fn is_knob_literal(s: &str) -> bool {
    s.strip_prefix("FGDB_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    })
}

// ---------------------------------------------------------------------------
// R4: cross-file doc-drift checks
// ---------------------------------------------------------------------------

/// Checks every collected knob and committed bench baseline against
/// README's tables. A "table row" is any README line starting with `|`
/// that names the item in backticks — mentioning a knob in prose does not
/// count; the tables are the contract.
pub fn check_docs(
    readme: &str,
    knob_sites: &[(String, String, usize)], // (knob, file, line)
    bench_files: &[String],
) -> Vec<Violation> {
    let table_rows: Vec<&str> = readme
        .lines()
        .filter(|l| l.trim_start().starts_with('|'))
        .collect();
    let in_table = |name: &str| {
        let ticked = format!("`{name}`");
        table_rows.iter().any(|row| row.contains(&ticked))
    };
    let mut out = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    for (knob, file, line) in knob_sites {
        if seen.contains(&knob.as_str()) {
            continue;
        }
        seen.push(knob);
        if !in_table(knob) {
            out.push(Violation {
                rule: Rule::Docs,
                file: file.clone(),
                line: *line,
                snippet: knob.clone(),
                message: format!(
                    "env knob `{knob}` is read here but missing from README's knob table"
                ),
            });
        }
    }
    for bench in bench_files {
        if !in_table(bench) {
            out.push(Violation {
                rule: Rule::Docs,
                file: "README.md".to_string(),
                line: 1,
                snippet: bench.clone(),
                message: format!(
                    "committed baseline `{bench}` is missing from README's bench baseline table"
                ),
            });
        }
    }
    out
}
