//! `fgdb-lint` CLI. See `cargo run -p fgdb-lint -- --help`.

use fgdb_lint::{count_by_rule, run, Options, Report, BASELINE_FILE};
use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
fgdb-lint: workspace static analysis for the fgdb repo's bug-class invariants

USAGE: fgdb-lint [OPTIONS]

OPTIONS:
  --root <DIR>        workspace root to scan (default: .)
  --baseline <FILE>   baseline file (default: <root>/fgdb-lint.baseline)
  --no-baseline       ignore the baseline; report every violation as fresh
  --write-baseline    regenerate the baseline from the current tree
  --json              machine-readable output
  --deny              exit non-zero on fresh violations or stale baseline entries
  -h, --help          this text

RULES: cast (narrowing casts on format/wire/length paths), panic (panic
paths in serving/durability modules), sync (unannotated Relaxed/locks in
hot paths), docs (README knob/bench-table drift), suppression (malformed
lint:allow). Suppress with `// lint:allow(rule, reason)` — reasons are
mandatory; regions via lint:allow-start/-end.";

struct Cli {
    opts: Options,
    json: bool,
    deny: bool,
}

fn parse_args() -> Result<Option<Cli>, String> {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut json = false;
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ))
            }
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--json" => json = true,
            "--deny" => deny = true,
            "-h" | "--help" => {
                println!("{HELP}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    let baseline_path = if no_baseline {
        None
    } else {
        Some(baseline.unwrap_or_else(|| root.join(BASELINE_FILE)))
    };
    Ok(Some(Cli {
        opts: Options {
            root,
            baseline_path,
            write_baseline,
        },
        json,
        deny,
    }))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(report: &Report) {
    let mut out = String::from("{\n  \"fresh\": [\n");
    for (i, v) in report.fresh.iter().enumerate() {
        let comma = if i + 1 < report.fresh.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"snippet\": \"{}\", \
             \"message\": \"{}\"}}{comma}\n",
            v.rule.id(),
            json_escape(&v.file),
            v.line,
            json_escape(&v.snippet),
            json_escape(&v.message),
        ));
    }
    out.push_str("  ],\n  \"stale\": [\n");
    for (i, e) in report.stale.iter().enumerate() {
        let comma = if i + 1 < report.stale.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"snippet\": \"{}\"}}{comma}\n",
            json_escape(&e.rule),
            json_escape(&e.file),
            json_escape(&e.snippet),
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"baselined\": {},\n  \"total\": {},\n  \"files_scanned\": {}\n}}",
        report.baselined, report.total, report.files_scanned
    ));
    println!("{out}");
}

fn print_human(report: &Report) {
    for v in &report.fresh {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule.id(), v.message);
        if !v.snippet.is_empty() {
            println!("    {}", v.snippet);
        }
    }
    for e in &report.stale {
        println!(
            "stale baseline entry: [{}] {} — {} (violation fixed; commit a regenerated \
             baseline via --write-baseline)",
            e.rule, e.file, e.snippet
        );
    }
    if let Some(path) = &report.wrote_baseline {
        println!(
            "wrote baseline {} ({} grandfathered violation(s))",
            path.display(),
            report.total
        );
        return;
    }
    let by_rule = count_by_rule(&report.fresh);
    let breakdown = by_rule
        .iter()
        .map(|(r, n)| format!("{}={n}", r.id()))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "fgdb-lint: {} fresh violation(s){}{}, {} baselined, {} stale baseline entr(ies), \
         {} file(s) scanned",
        report.fresh.len(),
        if breakdown.is_empty() { "" } else { " (" },
        if breakdown.is_empty() {
            String::new()
        } else {
            format!("{breakdown})")
        },
        report.baselined,
        report.stale.len(),
        report.files_scanned
    );
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fgdb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&cli.opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fgdb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if cli.json {
        print_json(&report);
    } else {
        print_human(&report);
    }
    if cli.deny && report.deny() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
