//! A hand-rolled Rust lexer, just deep enough to be trustworthy for
//! token-stream linting.
//!
//! The failure mode of naive `grep`-style linting is the lexical one: an
//! `unwrap()` inside a string literal, an `as u32` inside a nested block
//! comment, a `//` inside `r"raw // string"`. This lexer handles exactly
//! the constructs that break such tools — raw strings (`r#"…"#` with any
//! hash depth), byte/raw-byte/C strings, nested block comments, char
//! literals vs lifetimes, raw identifiers — and reduces everything else to
//! a flat token stream with line numbers.
//!
//! It deliberately does **not** build an AST: every rule in
//! [`crate::rules`] is expressible over a token window, and a token lexer
//! cannot fall behind the language the way a parser would.

/// What a token is. Only the distinctions the rules need are kept.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `as`, `fn`, `r#type` → `type`).
    Ident,
    /// Lifetime (`'a`, `'static`), without the quote.
    Lifetime,
    /// Any numeric literal.
    Num,
    /// Any string-ish literal (`"…"`, `r#"…"#`, `b"…"`), quotes stripped
    /// where cheap; the text is best-effort and only used for rule R4's
    /// knob scan.
    Str,
    /// A char or byte-char literal.
    Char,
    /// One punctuation byte (`.`, `[`, `!`, `:` …).
    Punct(u8),
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for this punctuation byte.
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

/// How a `lint:allow` comment scopes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuppKind {
    /// `// lint:allow(rule, reason)` — the line it trails, or (standalone)
    /// the next code line.
    Line,
    /// `// lint:allow-start(rule, reason)` — opens a region.
    Start,
    /// `// lint:allow-end(rule)` — closes the innermost matching region.
    End,
}

/// A parsed, well-formed suppression comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub line: usize,
    pub rule: String,
    pub reason: String,
    pub kind: SuppKind,
    /// True when the comment was the only thing on its line.
    pub standalone: bool,
}

/// A `lint:allow` comment the parser could not accept, with why.
#[derive(Clone, Debug)]
pub struct MalformedSuppression {
    pub line: usize,
    pub problem: String,
}

/// The full lexing result for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub suppressions: Vec<Suppression>,
    pub malformed: Vec<MalformedSuppression>,
    /// `line_has_code[i]` is true when 1-based line `i+1` holds at least
    /// one non-comment token.
    pub line_has_code: Vec<bool>,
    /// Raw source lines, for violation snippets.
    pub lines: Vec<String>,
}

impl Lexed {
    /// The first line at or after `line` (1-based) that holds code; used to
    /// resolve which line a standalone suppression targets.
    pub fn next_code_line(&self, line: usize) -> Option<usize> {
        (line..=self.line_has_code.len()).find(|&l| self.line_has_code[l - 1])
    }

    fn mark_code(&mut self, line: usize) {
        if let Some(flag) = self.line_has_code.get_mut(line.saturating_sub(1)) {
            *flag = true;
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes one file. Never fails: unterminated constructs consume to EOF —
/// for a linter, resilience beats strictness (rustc will reject the file
/// anyway if it is truly malformed).
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed {
        lines: src.lines().map(str::to_string).collect(),
        ..Lexed::default()
    };
    out.line_has_code = vec![false; out.lines.len()];
    let mut i = 0usize;
    let mut line = 1usize;

    macro_rules! push_tok {
        ($kind:expr, $text:expr) => {{
            out.mark_code(line);
            out.toks.push(Tok {
                kind: $kind,
                text: $text,
                line,
            });
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if b.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. `///` and `//!` docs). Doc-comment
                // example code therefore never reaches the token stream —
                // rules R1–R3 exempt doc examples for free.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let standalone = !out.line_has_code.get(line - 1).copied().unwrap_or(false);
                parse_suppression(&src[start..i], line, standalone, &mut out);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nested per Rust.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' | b'c' if starts_special_literal(bytes, i) => {
                let (tok, next, newlines) = lex_special_literal(src, i, line);
                push_tok!(tok.0, tok.1);
                line += newlines;
                i = next;
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                push_tok!(TokKind::Ident, src[start..i].to_string());
            }
            b'"' => {
                let (text, next, newlines) = scan_plain_string(src, i + 1);
                push_tok!(TokKind::Str, text);
                line += newlines;
                i = next;
            }
            b'\'' => {
                let (kind, text, next) = lex_quote(src, i);
                push_tok!(kind, text);
                i = next;
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    if is_ident_continue(bytes[i]) {
                        i += 1;
                    } else if bytes[i] == b'.'
                        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                        && !src[start..i].contains('.')
                    {
                        i += 1; // decimal point, not a `..` range
                    } else {
                        break;
                    }
                }
                push_tok!(TokKind::Num, src[start..i].to_string());
            }
            _ if b.is_ascii() => {
                push_tok!(TokKind::Punct(b), (b as char).to_string());
                i += 1;
            }
            _ => {
                // Non-ASCII outside strings/comments: skip the code point.
                let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                i += ch_len;
            }
        }
    }
    out
}

/// True when `r`/`b`/`c` at `i` starts a raw string, byte string, byte
/// char, or C string rather than a plain identifier.
fn starts_special_literal(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if bytes[i] == b'b' && bytes.get(j) == Some(&b'r') {
        j += 1; // br"…" / br#"…"#
    }
    if bytes[i] == b'c' && bytes.get(j) == Some(&b'r') {
        j += 1; // cr#"…"#
    }
    match bytes.get(j) {
        Some(&b'"') => true,
        Some(&b'\'') => bytes[i] == b'b', // b'x'
        Some(&b'#') => {
            // Raw string `r#"` (any hash depth) — but `r#ident` is a raw
            // identifier, not a literal.
            let mut k = j;
            while bytes.get(k) == Some(&b'#') {
                k += 1;
            }
            bytes.get(k) == Some(&b'"')
        }
        _ => false,
    }
}

/// Lexes a raw/byte/C string or byte char starting at `i`. Returns the
/// token, the next byte offset, and how many newlines were consumed.
fn lex_special_literal(src: &str, i: usize, _line: usize) -> ((TokKind, String), usize, usize) {
    let bytes = src.as_bytes();
    let mut j = i;
    while matches!(bytes.get(j), Some(&b'r') | Some(&b'b') | Some(&b'c')) {
        j += 1;
    }
    if bytes.get(j) == Some(&b'\'') {
        // b'x' byte char (escapes included).
        let (_, text, next) = lex_quote(src, j);
        return ((TokKind::Char, text), next, 0);
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(bytes.get(j), Some(&b'"'));
    j += 1;
    let body_start = j;
    let raw = hashes > 0 || src[i..j].contains('r');
    let mut newlines = 0usize;
    while j < bytes.len() {
        match bytes[j] {
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'\\' if !raw => {
                if bytes.get(j + 1) == Some(&b'\n') {
                    newlines += 1;
                }
                j += 2;
            }
            b'"' => {
                // A raw string only closes on `"` followed by its hashes.
                let close = (0..hashes).all(|k| bytes.get(j + 1 + k) == Some(&b'#'));
                if close {
                    let text = src[body_start..j].to_string();
                    return ((TokKind::Str, text), j + 1 + hashes, newlines);
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    ((TokKind::Str, src[body_start..].to_string()), j, newlines)
}

/// Scans a plain `"…"` string body beginning right after the opening quote.
fn scan_plain_string(src: &str, start: usize) -> (String, usize, usize) {
    let bytes = src.as_bytes();
    let mut j = start;
    let mut newlines = 0usize;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => {
                // A `\` + newline line continuation still ends a source
                // line — count it, or every later token reports early.
                if bytes.get(j + 1) == Some(&b'\n') {
                    newlines += 1;
                }
                j += 2;
            }
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'"' => return (src[start..j].to_string(), j + 1, newlines),
            _ => j += 1,
        }
    }
    (src[start..].to_string(), j, newlines)
}

/// Disambiguates `'` at `i`: char literal vs lifetime.
fn lex_quote(src: &str, i: usize) -> (TokKind, String, usize) {
    let bytes = src.as_bytes();
    let j = i + 1;
    match bytes.get(j) {
        Some(&b'\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut k = j + 1;
            if k < bytes.len() {
                k += 1; // the escaped byte itself (covers \' and \\)
            }
            while k < bytes.len() && bytes[k] != b'\'' {
                k += 1;
            }
            (
                TokKind::Char,
                src[i..=k.min(bytes.len() - 1)].to_string(),
                (k + 1).min(bytes.len()),
            )
        }
        Some(&b) if is_ident_start(b) => {
            // `'a'` is a char; `'a` / `'static` is a lifetime.
            let mut k = j;
            while k < bytes.len() && is_ident_continue(bytes[k]) {
                k += 1;
            }
            if bytes.get(k) == Some(&b'\'') {
                (TokKind::Char, src[i..=k].to_string(), k + 1)
            } else {
                (TokKind::Lifetime, src[j..k].to_string(), k)
            }
        }
        Some(_) => {
            // Digit, punctuation, or multibyte scalar: a char literal.
            let mut k = j;
            while k < bytes.len() && bytes[k] != b'\'' && bytes[k] != b'\n' {
                k += 1;
            }
            (
                TokKind::Char,
                src[i..k.min(bytes.len())].to_string(),
                (k + 1).min(bytes.len()),
            )
        }
        None => (TokKind::Punct(b'\''), "'".to_string(), j),
    }
}

/// Recognizes and validates `lint:allow` forms inside a line comment.
///
/// A suppression must *start* the comment (`// lint:allow(…)`), and doc
/// comments (`///`, `//!`) never carry suppressions — both rules exist so
/// that prose merely *mentioning* the directive (like this paragraph) is
/// inert. A directive that starts a comment but does not parse is recorded
/// as malformed — a suppression that silently fails open would be worse
/// than no suppression mechanism at all.
fn parse_suppression(comment: &str, line: usize, standalone: bool, out: &mut Lexed) {
    let content = comment.trim_start_matches('/');
    if comment.starts_with("///") || comment.starts_with("//!") {
        return;
    }
    let Some(rest) = content.trim_start().strip_prefix("lint:allow") else {
        return;
    };
    let (kind, rest) = if let Some(r) = rest.strip_prefix("-start") {
        (SuppKind::Start, r)
    } else if let Some(r) = rest.strip_prefix("-end") {
        (SuppKind::End, r)
    } else {
        (SuppKind::Line, rest)
    };
    let Some(body) = rest
        .strip_prefix('(')
        .and_then(|r| r.split_once(')'))
        .map(|(body, _)| body)
    else {
        out.malformed.push(MalformedSuppression {
            line,
            problem: "lint:allow needs the form lint:allow(rule, reason)".into(),
        });
        return;
    };
    let (rule, reason) = match body.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (body.trim(), ""),
    };
    if rule.is_empty() {
        out.malformed.push(MalformedSuppression {
            line,
            problem: "lint:allow with an empty rule name".into(),
        });
        return;
    }
    if reason.is_empty() && kind != SuppKind::End {
        out.malformed.push(MalformedSuppression {
            line,
            problem: format!("lint:allow({rule}) without a reason — reasons are mandatory"),
        });
        return;
    }
    out.suppressions.push(Suppression {
        line,
        rule: rule.to_string(),
        reason: reason.to_string(),
        kind,
        standalone,
    });
}
