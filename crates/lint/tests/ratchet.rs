//! End-to-end ratchet semantics over a synthetic mini-workspace on disk:
//! injecting a violation fails the gate, grandfathering it passes, fixing
//! it makes the baseline entry stale (which fails again until the
//! baseline is regenerated) — the full burn-down cycle.

use fgdb_lint::{run, Options, BASELINE_FILE};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

static DIRS: AtomicU32 = AtomicU32::new(0);

fn scratch_workspace() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fgdb-lint-ratchet-{}-{}",
        std::process::id(),
        DIRS.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(dir.join("crates/x/src")).expect("scratch dirs");
    fs::write(dir.join("README.md"), "# scratch\n").expect("readme");
    dir
}

fn write_lib(root: &Path, body: &str) {
    fs::write(root.join("crates/x/src/lib.rs"), body).expect("lib.rs");
}

fn gate(root: &Path) -> fgdb_lint::Report {
    run(&Options {
        root: root.to_path_buf(),
        baseline_path: Some(root.join(BASELINE_FILE)),
        write_baseline: false,
    })
    .expect("lint run")
}

#[test]
fn inject_grandfather_burn_down_cycle() {
    let root = scratch_workspace();
    let violating = "pub fn f(v: &[u8]) -> u32 { v.len() as u32 }\n";
    let clean = "pub fn f(v: &[u8]) -> u64 { v.len() as u64 }\n";

    // 1. Injected violation, no baseline: the gate denies.
    write_lib(&root, violating);
    let report = gate(&root);
    assert!(report.deny(), "expected denial: {report:?}");
    assert_eq!(report.fresh.len(), 1);

    // 2. Grandfather it: gate passes, violation counted as baselined.
    let report = run(&Options {
        root: root.clone(),
        baseline_path: Some(root.join(BASELINE_FILE)),
        write_baseline: true,
    })
    .expect("write baseline");
    assert!(!report.deny());
    let report = gate(&root);
    assert!(!report.deny(), "baselined tree must pass: {report:?}");
    assert_eq!(report.baselined, 1);

    // 3. A *second* violation is fresh — the baseline is not a blanket.
    write_lib(
        &root,
        "pub fn f(v: &[u8]) -> u32 { v.len() as u32 }\n\
         pub fn g(v: &[u8]) -> u16 { v.len() as u16 }\n",
    );
    let report = gate(&root);
    assert!(report.deny());
    assert_eq!((report.fresh.len(), report.baselined), (1, 1));

    // 4. Burn the original down: its entry goes stale, and the gate
    //    denies until the baseline is regenerated and committed.
    write_lib(&root, clean);
    let report = gate(&root);
    assert!(report.deny(), "stale entries must deny: {report:?}");
    assert!(report.fresh.is_empty());
    assert_eq!(report.stale.len(), 1);
    let report = run(&Options {
        root: root.clone(),
        baseline_path: Some(root.join(BASELINE_FILE)),
        write_baseline: true,
    })
    .expect("regenerate");
    assert_eq!(report.total, 0);
    let report = gate(&root);
    assert!(!report.deny(), "clean tree + empty baseline must pass");

    fs::remove_dir_all(&root).ok();
}

#[test]
fn missing_readme_is_a_run_error_not_a_pass() {
    let root = scratch_workspace();
    fs::remove_file(root.join("README.md")).expect("remove readme");
    write_lib(&root, "pub fn f() {}\n");
    let err = run(&Options {
        root: root.clone(),
        baseline_path: None,
        write_baseline: false,
    });
    assert!(err.is_err(), "R4 cannot run without a README: {err:?}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn multiset_matching_consumes_one_entry_per_occurrence() {
    let root = scratch_workspace();
    // Two textually identical violations on different lines.
    write_lib(
        &root,
        "pub fn f(v: &[u8]) -> u32 { v.len() as u32 }\n\
         pub fn g(v: &[u8]) -> u32 { v.len() as u32 }\n",
    );
    run(&Options {
        root: root.clone(),
        baseline_path: Some(root.join(BASELINE_FILE)),
        write_baseline: true,
    })
    .expect("write baseline");
    // Removing one of the two leaves exactly one stale entry — identical
    // snippets are matched as a multiset, not a set.
    write_lib(&root, "pub fn f(v: &[u8]) -> u32 { v.len() as u32 }\n");
    let report = gate(&root);
    assert_eq!(
        (report.fresh.len(), report.baselined, report.stale.len()),
        (0, 1, 1)
    );
    fs::remove_dir_all(&root).ok();
}
