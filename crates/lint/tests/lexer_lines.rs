//! Line-number fidelity: every identifier token the lexer produces must
//! actually appear on the source line it reports. Runs over the whole
//! workspace, so any construct that desynchronizes the line counter
//! (multi-line strings, `\`-newline continuations, nested comments…)
//! fails here with the first drifted token named.

use std::path::Path;

#[test]
fn every_ident_token_is_on_its_reported_line() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = fgdb_lint::workspace_files(&root).expect("walk workspace");
    assert!(files.len() > 50, "workspace walk looks broken: {files:?}");
    for file in files {
        let src = std::fs::read_to_string(&file).expect("read source");
        let lines: Vec<&str> = src.lines().collect();
        let lexed = fgdb_lint::lexer::lex(&src);
        for t in &lexed.toks {
            if t.kind != fgdb_lint::lexer::TokKind::Ident {
                continue;
            }
            let on_line = lines
                .get(t.line - 1)
                .is_some_and(|l| l.contains(t.text.as_str()));
            assert!(
                on_line,
                "{}:{}: token {:?} not on that line ({:?})",
                file.display(),
                t.line,
                t.text,
                lines.get(t.line - 1)
            );
        }
    }
}
