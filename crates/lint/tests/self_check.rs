//! The lint's own gate, as a test: the committed workspace must be clean
//! against the committed baseline, with zero stale entries. This is what
//! makes the ratchet enforceable from `cargo test` alone — CI runs the
//! binary too, but a contributor who only runs the test suite still hits
//! the gate.

use fgdb_lint::{run, Options, BASELINE_FILE};
use std::path::Path;

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&Options {
        root: root.clone(),
        baseline_path: Some(root.join(BASELINE_FILE)),
        write_baseline: false,
    })
    .expect("lint run");
    assert!(
        report.files_scanned > 50,
        "workspace walk looks broken: scanned {}",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .fresh
        .iter()
        .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule.id(), v.message))
        .collect();
    assert!(
        report.fresh.is_empty(),
        "fresh violations (fix them or suppress with a reasoned lint:allow):\n{}",
        rendered.join("\n")
    );
    assert!(
        report.stale.is_empty(),
        "stale baseline entries (violations fixed — commit a regenerated baseline \
         via `cargo run -p fgdb-lint -- --write-baseline`): {:?}",
        report.stale
    );
}
