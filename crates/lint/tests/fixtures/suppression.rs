//! Fixture for rule `suppression` (malformed / dangling lint:allow forms).
//! Analyzed by the rules test — never compiled.

pub fn malformed(n: usize) -> usize {
    let a = n; // lint:allow(cast) — MALFORMED: no reason
    let b = n; // lint:allow — MALFORMED: no parenthesized body
    let c = n; // lint:allow(nosuchrule, with a reason) — VIOLATION: unknown rule
    // lint:allow-end(panic) — VIOLATION: end without start
    // lint:allow-start(panic, never closed below) — VIOLATION: unclosed
    a + b + c
}

pub fn well_formed(opt: Option<u32>) -> u32 {
    opt.unwrap() // lint:allow(panic, fixture: a complete, reasoned suppression)
}
