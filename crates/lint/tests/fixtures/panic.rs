//! Fixture for rule `panic`. Analyzed under a scoped pretend path
//! (`crates/serve/src/server.rs`) by the rules test — never compiled.

pub fn positives(opt: Option<u32>, res: Result<u32, String>, buf: &[u8]) -> u32 {
    let a = opt.unwrap(); // VIOLATION: unwrap
    let b = res.expect("must exist"); // VIOLATION: expect
    if buf.is_empty() {
        panic!("empty"); // VIOLATION: panic!
    }
    if a > 100 {
        unreachable!(); // VIOLATION: unreachable!
    }
    if b > 100 {
        todo!(); // VIOLATION: todo!
    }
    let c = buf[0]; // VIOLATION: bare indexing
    let d = (buf)[1]; // VIOLATION: indexing after a paren group
    u32::from(c) + u32::from(d) + a + b
}

pub fn suppressed(opt: Option<u32>, buf: &[u8]) -> u32 {
    let a = opt.unwrap(); // lint:allow(panic, fixture: checked is_some on the line above)
    // lint:allow(panic, fixture: index bounded by the caller contract)
    let b = buf[0];
    // lint:allow-start(panic, fixture: region form covers several lines)
    let c = buf[1];
    let d = buf[2];
    // lint:allow-end(panic)
    a + u32::from(b) + u32::from(c) + u32::from(d)
}

pub fn false_positive_guards(pair: (u32, u32), flag: bool) -> u32 {
    // Array literals, types, and slice patterns are not index expressions:
    let arr = [1u32, 2, 3];
    let [x, y] = [pair.0, pair.1];
    let boxed: Box<[u32; 2]> = Box::new([x, y]);
    // `.get` and doc-style prose mentioning .unwrap() must not fire:
    let got = arr.get(0).copied();
    let s = "docs say .unwrap() panics; buf[0] too";
    // A method named expect_something is not `.expect(`:
    let n = if flag { got.unwrap_or(0) } else { 0 };
    n + boxed[0] // lint:allow(panic, fixture: fixed-size array, index in bounds)
        + s.len() as u32 // lint:allow(cast, fixture: short string)
}

/// ```
/// // Doc examples never reach the token stream:
/// let v = Some(1).unwrap();
/// let b = [1, 2][0];
/// ```
pub fn doc_example_guard() {}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_allowed_here() {
        let v = vec![1, 2];
        assert_eq!(v.first().copied().unwrap(), v[0]);
    }
}
