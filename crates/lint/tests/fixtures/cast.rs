//! Fixture for rule `cast`. Analyzed under a scoped pretend path
//! (`crates/durability/src/format.rs`) by the rules test — never compiled.

pub fn positives(payload: &[u8], n: usize) -> (u32, u16, u8) {
    let a = payload.len() as u32; // VIOLATION: len feeding a narrowing cast
    let b = n as u16; // VIOLATION: narrowing cast in a scoped file
    let c = (n & 0x7F) as u8; // VIOLATION: masked, but unannotated
    (a, b, c)
}

pub fn suppressed(payload: &[u8], n: usize) -> (u32, u8) {
    let a = payload.len() as u32; // lint:allow(cast, fixture: caller bounds len above)
    // lint:allow(cast, fixture: masked to 7 bits)
    let b = (n & 0x7F) as u8;
    (a, b)
}

pub fn false_positive_guards(n: usize, small: u16) -> u64 {
    // Widening casts are exempt: u64/i64/u128/usize targets.
    let w = n as u64 + u64::from(small) + (n as i64 as u64);
    // Mentions in strings and comments must not fire:
    let s = "let x = v.len() as u32;";
    let r = r#"raw string with n as u16 and "quotes" inside"#;
    /* block comment: len() as u32
       /* nested: idx as u8 */
       still commented: x as i16 */
    let msg = r##"deeper raw # string: y as u32 "#" still going"##;
    w + (s.len() + r.len() + msg.len()) as u64
}

#[cfg(test)]
mod tests {
    // Test code is exempt from R1 entirely.
    #[test]
    fn casts_allowed_here() {
        let n = 300usize;
        assert_eq!(n as u8, 44);
        assert_eq!(vec![1].len() as u32, 1);
    }
}
