//! Fixture for rule `sync`. Analyzed under a hot-path pretend path
//! (`crates/mcmc/src/walker.rs`) by the rules test — never compiled.

pub fn positives(counter: &AtomicU64, m: &Mutex<u32>, rw: &RwLock<u32>) -> u64 {
    let a = counter.load(Ordering::Relaxed); // VIOLATION: unannotated Relaxed
    counter.store(a + 1, Ordering::Relaxed); // VIOLATION: unannotated Relaxed
    let b = *m.lock().unwrap_or_default(); // VIOLATION: unannotated lock()
    let c = *rw.read().unwrap_or_default(); // VIOLATION: unannotated read()
    let d = *rw.write().unwrap_or_default(); // VIOLATION: unannotated write()
    a + u64::from(b) + u64::from(c) + u64::from(d)
}

pub fn suppressed(counter: &AtomicU64, m: &Mutex<u32>) -> u64 {
    // lint:allow(sync, fixture: advisory counter, no cross-thread ordering)
    let a = counter.load(Ordering::Relaxed);
    let b = *m.lock().unwrap(); // lint:allow(sync, fixture: held for one copy)
    // lint:allow-start(sync, fixture: region covering a burst of counter reads)
    let c = counter.load(Ordering::Relaxed);
    let d = counter.load(Ordering::Relaxed);
    // lint:allow-end(sync)
    a + u64::from(b) + c + d
}

pub fn false_positive_guards(counter: &AtomicU64, r: &mut impl Read, w: &mut impl Write) -> usize {
    // Stronger orderings need no annotation:
    let a = counter.load(Ordering::Acquire);
    counter.store(a, Ordering::Release);
    // io::Read::read / io::Write::write take arguments — not acquisitions:
    let mut buf = [0u8; 8];
    let n = r.read(&mut buf).unwrap_or(0);
    let m = w.write(&buf).unwrap_or(0);
    // Mentions in strings and comments must not fire:
    let s = "Ordering::Relaxed and .lock() in prose";
    /* .read() inside a comment */
    n + m + s.len()
}
