//! Fixture-driven rule tests: each fixture under `tests/fixtures/` is
//! analyzed under a pretend in-scope workspace path (fixtures are data,
//! never compiled). Per rule: positives fire, suppressed sites stay
//! silent, and the false-positive guards — raw strings, nested comments,
//! doc examples, `#[cfg(test)]` blocks — stay silent too.

use fgdb_lint::rules::{analyze_source, check_docs, Rule};

fn rule_lines(path: &str, src: &str, rule: Rule) -> Vec<usize> {
    analyze_source(path, src)
        .violations
        .into_iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

fn count(path: &str, src: &str, rule: Rule) -> usize {
    rule_lines(path, src, rule).len()
}

const CAST_FIXTURE: &str = include_str!("fixtures/cast.rs");
const PANIC_FIXTURE: &str = include_str!("fixtures/panic.rs");
const SYNC_FIXTURE: &str = include_str!("fixtures/sync.rs");
const SUPP_FIXTURE: &str = include_str!("fixtures/suppression.rs");

#[test]
fn cast_fixture_positives_fire_and_guards_do_not() {
    let path = "crates/durability/src/format.rs";
    let lines = rule_lines(path, CAST_FIXTURE, Rule::Cast);
    // Exactly the three positives: suppressed sites, widening casts, raw
    // strings, nested comments, and the #[cfg(test)] module are silent.
    assert_eq!(lines.len(), 3, "cast lines: {lines:?}");
    for line in &lines {
        let text = CAST_FIXTURE.lines().nth(line - 1).unwrap_or("");
        assert!(
            text.contains("VIOLATION"),
            "unexpected cast at line {line}: {text}"
        );
    }
    assert_eq!(count(path, CAST_FIXTURE, Rule::Panic), 0);
    assert_eq!(count(path, CAST_FIXTURE, Rule::Suppression), 0);
}

#[test]
fn cast_rule_is_scoped_but_len_pattern_is_workspace_wide() {
    // Out of the scoped file set, plain narrowing casts pass…
    let src = "pub fn f(n: usize) -> u16 { n as u16 }\n";
    assert_eq!(count("crates/graph/src/graph.rs", src, Rule::Cast), 0);
    // …but a length expression feeding a narrowing cast fires anywhere.
    let src = "pub fn f(v: &[u8]) -> u32 { v.len() as u32 }\n";
    assert_eq!(count("crates/graph/src/graph.rs", src, Rule::Cast), 1);
}

#[test]
fn cast_rule_redetects_the_pr8_wire_truncation_bug_class() {
    // The exact shape PR 8 fixed by hand: a frame length silently
    // truncated while encoding. Reverting that fix must fail the lint.
    let reverted = "fn frame(payload: &[u8], out: &mut Vec<u8>) {\n\
                    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());\n\
                    }\n";
    assert_eq!(
        count("crates/serve/src/protocol.rs", reverted, Rule::Cast),
        1
    );
    // And the same expression is caught even outside the scoped files,
    // via the workspace-wide len-feeding pattern.
    assert_eq!(count("crates/bench/src/lib.rs", reverted, Rule::Cast), 1);
}

#[test]
fn panic_fixture_positives_fire_and_guards_do_not() {
    let path = "crates/serve/src/server.rs";
    let lines = rule_lines(path, PANIC_FIXTURE, Rule::Panic);
    assert_eq!(lines.len(), 7, "panic lines: {lines:?}");
    for line in &lines {
        let text = PANIC_FIXTURE.lines().nth(line - 1).unwrap_or("");
        assert!(
            text.contains("VIOLATION"),
            "unexpected panic at line {line}: {text}"
        );
    }
    // The trailing/standalone/region suppressions all carry reasons.
    assert_eq!(count(path, PANIC_FIXTURE, Rule::Suppression), 0);
    // The same file outside the panic-free scope is silent.
    assert_eq!(
        count(
            "crates/relational/src/planner.rs",
            PANIC_FIXTURE,
            Rule::Panic
        ),
        0
    );
}

#[test]
fn sync_fixture_positives_fire_and_guards_do_not() {
    let path = "crates/mcmc/src/walker.rs";
    let lines = rule_lines(path, SYNC_FIXTURE, Rule::Sync);
    assert_eq!(lines.len(), 5, "sync lines: {lines:?}");
    for line in &lines {
        let text = SYNC_FIXTURE.lines().nth(line - 1).unwrap_or("");
        assert!(
            text.contains("VIOLATION"),
            "unexpected sync at line {line}: {text}"
        );
    }
    assert_eq!(count(path, SYNC_FIXTURE, Rule::Suppression), 0);
    // Outside the hot-path scope nothing fires.
    assert_eq!(
        count("crates/serve/src/server.rs", SYNC_FIXTURE, Rule::Sync),
        0
    );
}

#[test]
fn malformed_suppressions_are_themselves_violations() {
    let path = "crates/graph/src/shard.rs";
    let lines = rule_lines(path, SUPP_FIXTURE, Rule::Suppression);
    // Two malformed forms, one unknown rule, one dangling end, one
    // unclosed start.
    assert_eq!(lines.len(), 5, "suppression lines: {lines:?}");
}

#[test]
fn lexer_handles_constructs_that_break_naive_linters() {
    // An unwrap hidden in a raw string plus a real one after a nested
    // comment: exactly one finding, on the right line.
    let src = "pub fn f(o: Option<u32>) -> u32 {\n\
               let s = r#\"prose: o.unwrap() and buf[0]\"#;\n\
               /* outer /* nested .expect( */ still comment */\n\
               let _ = s;\n\
               o.unwrap()\n\
               }\n";
    let lines = rule_lines("crates/serve/src/server.rs", src, Rule::Panic);
    assert_eq!(lines, vec![5], "panic lines: {lines:?}");
}

#[test]
fn docs_rule_flags_missing_knobs_and_benches() {
    let readme = "# repo\n\
                  | knob | default |\n\
                  |---|---|\n\
                  | `FGDB_DOCUMENTED` | 1.0 |\n\
                  | `BENCH_listed.json` | bench |\n";
    let knobs = vec![
        (
            "FGDB_DOCUMENTED".to_string(),
            "crates/a/src/lib.rs".to_string(),
            3,
        ),
        (
            "FGDB_MISSING".to_string(),
            "crates/a/src/lib.rs".to_string(),
            9,
        ),
    ];
    let benches = vec![
        "BENCH_listed.json".to_string(),
        "BENCH_orphan.json".to_string(),
    ];
    let violations = check_docs(readme, &knobs, &benches);
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(violations.iter().all(|v| v.rule == Rule::Docs));
    assert!(violations
        .iter()
        .any(|v| v.message.contains("FGDB_MISSING")));
    assert!(violations
        .iter()
        .any(|v| v.message.contains("BENCH_orphan.json")));
    // Prose mentions (non-table lines) do not count as documentation.
    let prose = "FGDB_MISSING is documented only in prose, `FGDB_MISSING` even in backticks\n";
    let violations = check_docs(prose, &knobs[1..], &[]);
    assert_eq!(violations.len(), 1, "{violations:?}");
}

#[test]
fn knob_collection_finds_env_var_literals() {
    let src = "pub fn knob() -> Option<String> {\n\
               std::env::var(\"FGDB_FIXTURE_KNOB\").ok()\n\
               }\n";
    let analysis = analyze_source("crates/a/src/lib.rs", src);
    assert_eq!(analysis.knobs, vec![("FGDB_FIXTURE_KNOB".to_string(), 2)]);
}
