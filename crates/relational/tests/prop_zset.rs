//! Property suite for the Z-set algebra underneath the circuit backend.
//!
//! [`ZSet`] must be a commutative group under merge (identity = empty,
//! inverse = negation), with eager zero-coalescing so equality is structural,
//! plus the checked-apply contract: a retraction with no matching insertion
//! is a typed, transactional error — and that same bug class surfaces as
//! [`CircuitError::InconsistentDelta`] when it reaches δ/γ operator state.

mod common;

use common::random_db;
use fgdb_relational::parser::parse_plan;
use fgdb_relational::planner::optimize;
use fgdb_relational::{
    tuple, CircuitError, DeltaSet, MaterializedView, Tuple, Value, ViewBackend, ZSet,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a bag of (small tuple, small signed weight) entries, coalesced
/// into a Z-set by construction.
fn entries() -> impl Strategy<Value = Vec<(Tuple, i64)>> {
    prop::collection::vec(((0i64..4, 0i64..4), -3i64..=3), 0..24)
        .prop_map(|v| v.into_iter().map(|((a, b), w)| (tuple![a, b], w)).collect())
}

fn zset(v: Vec<(Tuple, i64)>) -> ZSet {
    ZSet::from_entries(v)
}

proptest! {
    /// Zero-coalescing: weights that cancel leave no entry behind, so no
    /// Z-set ever reports a zero weight as present.
    #[test]
    fn coalesce_to_zero_means_absent(v in entries()) {
        let z = zset(v.clone());
        for (t, w) in z.iter() {
            prop_assert_ne!(w, 0, "zero-weight entry for {:?}", t);
        }
        // Adding the negation of any entry removes it entirely.
        let first = z.iter().next().map(|(t, w)| (t.clone(), w));
        if let Some((t, w)) = first {
            let mut z2 = z.clone();
            z2.add(t.clone(), -w);
            prop_assert_eq!(z2.weight(&t), 0);
            prop_assert_eq!(z2.distinct_len(), z.distinct_len() - 1);
        }
    }

    /// Group laws: merge is commutative and associative, empty is the
    /// identity, and negation is the inverse.
    #[test]
    fn merge_is_a_commutative_group(a in entries(), b in entries(), c in entries()) {
        let (za, zb, zc) = (zset(a), zset(b), zset(c));

        let mut ab = za.clone(); ab.merge(&zb);
        let mut ba = zb.clone(); ba.merge(&za);
        prop_assert_eq!(ab.sorted_entries(), ba.sorted_entries(), "commutativity");

        let mut ab_c = ab.clone(); ab_c.merge(&zc);
        let mut bc = zb.clone(); bc.merge(&zc);
        let mut a_bc = za.clone(); a_bc.merge(&bc);
        prop_assert_eq!(ab_c.sorted_entries(), a_bc.sorted_entries(), "associativity");

        let mut id = za.clone(); id.merge(&ZSet::new());
        prop_assert_eq!(id.sorted_entries(), za.sorted_entries(), "identity");

        let mut inv = za.clone(); inv.merge(&za.negated());
        prop_assert!(inv.is_empty(), "inverse: {:?}", inv.sorted_entries());
        prop_assert_eq!(za.negated().negated(), za.clone(), "involution");

        // merge_owned agrees with merge.
        let mut owned = za.clone(); owned.merge_owned(zb.clone());
        let mut borrowed = za.clone(); borrowed.merge(&zb);
        prop_assert_eq!(owned, borrowed);

        // Totals are additive.
        prop_assert_eq!(ab.total_weight(), za.total_weight() + zb.total_weight());
    }

    /// δ projects onto unit-weight positive support, idempotently.
    #[test]
    fn distinct_is_idempotent_unit_support(v in entries()) {
        let z = zset(v);
        let d = z.distinct();
        prop_assert!(d.is_snapshot());
        prop_assert_eq!(d.distinct(), d.clone());
        prop_assert_eq!(d.sorted_support(), z.sorted_support());
        for (_, w) in d.iter() {
            prop_assert_eq!(w, 1);
        }
    }

    /// `apply_checked` either applies the whole delta (all weights stay
    /// non-negative) or rejects it leaving the state bit-identical.
    #[test]
    fn checked_apply_is_transactional(a in entries(), d in entries()) {
        // Snapshots have positive weights; build one via distinct + scaling.
        let mut state = ZSet::new();
        for (t, w) in zset(a).iter() {
            state.add(t.clone(), w.abs());
        }
        let delta = zset(d);
        let before = state.sorted_entries();
        match state.apply_checked(&delta) {
            Ok(()) => {
                prop_assert!(state.iter().all(|(_, w)| w >= 0));
                let mut expect = ZSet::from_entries(before);
                expect.merge(&delta);
                prop_assert_eq!(state.sorted_entries(), expect.sorted_entries());
            }
            Err(e) => {
                prop_assert!(e.weight < 0, "typed error carries the offending weight");
                prop_assert_eq!(state.sorted_entries(), before, "state must be untouched");
            }
        }
    }

    /// Round-tripping through the delta-transport `CountedSet` is lossless.
    #[test]
    fn counted_set_round_trip(v in entries()) {
        let z = zset(v);
        let back = ZSet::from_counted(&z.clone().into_counted());
        prop_assert_eq!(back, z);
    }
}

/// Regression: a retraction of a never-inserted tuple must surface as a
/// typed [`CircuitError::InconsistentDelta`] through *aggregate* operator
/// state (the δ path is covered in `prop_circuit.rs`), not as a panic or a
/// silently negative group count.
#[test]
fn phantom_retraction_through_aggregate_is_typed() {
    let db = random_db(7);
    let plan = parse_plan("SELECT doc_id, COUNT(*) AS n FROM TOKEN GROUP BY doc_id").unwrap();
    let opt = optimize(&plan, &db).unwrap();
    let mut view = MaterializedView::with_backend(&opt, &db, ViewBackend::Circuit).unwrap();
    let mut deltas = DeltaSet::new();
    // doc_id 777 has no rows, so its COUNT would go negative — a phantom
    // retraction inside an existing group merely decrements, which is what
    // a legitimate delete looks like and must stay legal.
    deltas.record_delete(
        &Arc::from("TOKEN"),
        tuple![424_242i64, 777i64, "ghost", "O", "O", Value::Null],
    );
    let err = view.try_apply_delta(&deltas).unwrap_err();
    assert!(
        matches!(err, CircuitError::InconsistentDelta(_)),
        "expected InconsistentDelta, got {err:?}"
    );
}
