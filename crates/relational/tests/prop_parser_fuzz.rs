//! Parser fuzzing with non-ASCII query text.
//!
//! The serving layer hands arbitrary client bytes to [`parse`] and renders
//! any [`ParseError`] back over the wire, so two totality properties are
//! load-bearing: parsing never panics on any UTF-8 input, and every
//! reported byte offset lands on a character boundary of that input (so
//! span rendering can slice safely). The generators deliberately mix
//! multibyte scalars — 2-byte (é), 3-byte (日, ☃), and 4-byte (𝄞, 😀) —
//! into every structural position: identifiers, literals, operators, and
//! raw garbage.

use fgdb_relational::parser::{parse, parse_plan, ParseError};
use proptest::prelude::*;

/// Mixed-width alphabet: SQL structure, ASCII filler, and multibyte
/// scalars of every UTF-8 encoded length.
const ALPHABET: &[char] = &[
    'S', 'E', 'L', 'C', 'T', 'F', 'R', 'O', 'M', 'W', 'H', 'a', 'b', 'c', '_', '0', '7', ' ', ' ',
    '\'', '(', ')', ',', '.', '*', '=', '<', '>', '!', '-', '\n', 'é', 'ß', 'λ', '日', '本', '語',
    '☃', '★', '𝄞', '😀', '𝔘',
];

fn arb_char() -> impl Strategy<Value = char> {
    (0usize..ALPHABET.len()).prop_map(|i| ALPHABET[i])
}

fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_char(), 0..48).prop_map(|cs| cs.into_iter().collect())
}

/// Valid query skeletons the splicer corrupts at random char positions.
const SEEDS: &[&str] = &[
    "SELECT string FROM TOKEN WHERE label = 'B-PER'",
    "SELECT COUNT(*) FILTER (WHERE label = 'B-PER') AS n_person FROM TOKEN",
    "SELECT doc_id FROM TOKEN GROUP BY doc_id HAVING COUNT(*) > 2",
    "SELECT t1.string FROM TOKEN t1 JOIN TOKEN t2 ON t1.doc_id = t2.doc_id",
];

/// Every-error-path invariant: offsets are in-range char boundaries and
/// rendering is total.
fn check_error_contract(sql: &str) -> Result<(), TestCaseError> {
    match parse(sql) {
        Ok(ast) => {
            // Lowering must be panic-free too (it may legitimately fail).
            let _ = ast.to_plan();
        }
        Err(e) => {
            if let Some(o) = e.offset {
                prop_assert!(o <= sql.len(), "offset {o} out of range for `{sql}`");
                prop_assert!(
                    sql.is_char_boundary(o),
                    "offset {o} splits a char in `{sql}`"
                );
            }
            let rendered = e.render(sql);
            prop_assert!(rendered.contains(&e.message));
        }
    }
    let _ = parse_plan(sql);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_unicode_never_panics(sql in arb_text()) {
        check_error_contract(&sql)?;
    }

    #[test]
    fn corrupted_valid_queries_never_panic(
        seed_idx in 0usize..4,
        pos in 0usize..70,
        splice in prop::collection::vec(arb_char(), 1..6),
    ) {
        let seed = SEEDS[seed_idx];
        let chars: Vec<char> = seed.chars().collect();
        let cut = pos.min(chars.len());
        let corrupted: String = chars[..cut]
            .iter()
            .chain(splice.iter())
            .chain(chars[cut..].iter())
            .collect();
        check_error_contract(&corrupted)?;
    }
}

#[test]
fn multibyte_error_offsets_are_boundaries() {
    for bad in [
        "SELECT ★ FROM TOKEN",
        "SELECT string FROM TOKEN WHERE label = 'héllo",
        "SELECT string FROM TOKEN WHERE λ",
        "SELECT string FROM TOKEN 'труд' garbage",
        "SELECT string FROM TOKEN WHERE label = '𝔘𝔫𝔦' ☃",
        "SELECT '日本語' FROM TOKEN WHERE ",
    ] {
        let e = parse(bad).expect_err("malformed");
        if let Some(o) = e.offset {
            assert!(o <= bad.len(), "`{bad}`: offset {o} out of range");
            assert!(bad.is_char_boundary(o), "`{bad}`: offset {o} splits a char");
        }
        let _ = e.render(bad);
    }
}

#[test]
fn render_caret_aligns_by_chars_not_bytes() {
    // 'é' is 2 bytes but 1 column: the caret must sit under ☃ (char
    // column 16) even though its byte offset is 17.
    let sql = "SELECT 'é' FROM ☃";
    let e = parse(sql).expect_err("☃ is not a table name");
    let o = e.offset.expect("unexpected-character errors carry offsets");
    assert_eq!(&sql[o..o + '☃'.len_utf8()], "☃");
    let rendered = e.render(sql);
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines.len(), 3, "message, source line, caret: {rendered}");
    assert_eq!(lines[1], sql);
    let caret_col = sql[..o].chars().count();
    assert_eq!(lines[2].chars().count(), caret_col + 1);
    assert!(lines[2].ends_with('^'));
}

#[test]
fn render_clamps_hostile_offsets() {
    // Offsets inside a multibyte scalar or past the end must clamp, not
    // panic — the renderer is total even for offsets it did not produce.
    let sql = "SELECT 'é' FROM t";
    let inside_e_acute = ParseError {
        message: "boom".into(),
        offset: Some(9), // é spans bytes 8..10
    };
    assert!(!sql.is_char_boundary(9));
    let rendered = inside_e_acute.render(sql);
    assert!(rendered.contains("boom"));

    let past_end = ParseError {
        message: "beyond".into(),
        offset: Some(sql.len() + 100),
    };
    let rendered = past_end.render(sql);
    assert!(rendered.lines().count() >= 2);

    let no_offset = ParseError {
        message: "nowhere".into(),
        offset: None,
    };
    assert_eq!(no_offset.render(sql), "nowhere");

    // Multi-line input: only the offending line is echoed.
    let multi = "SELECT string\nFROM ☃ TOKEN";
    let e = ParseError {
        message: "bad table".into(),
        offset: Some(multi.find('☃').unwrap()),
    };
    let rendered = e.render(multi);
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines[1], "FROM ☃ TOKEN");
    assert_eq!(lines[2].chars().count(), "FROM ".chars().count() + 1);
}
