//! Optimizer soundness and parser round-trip property suite.
//!
//! For random databases and random well-typed SQL queries (plus the paper's
//! queries 1–4 as text):
//!
//! * the optimized plan's `QueryResult` is *identical* to the naive plan's
//!   (same columns, same multiset of rows);
//! * the optimized plan constructs no more intermediate tuples than the
//!   naive plan ([`ExecStats::intermediate_tuples`]);
//! * the optimized plan drives a [`MaterializedView`] to the same answers
//!   as naive re-execution under random delta streams (the same text
//!   serves Algorithm 3 and Algorithm 1);
//! * `parse ∘ print` is a fixpoint of the SQL AST.

mod common;

use common::{random_db, random_delta, random_query, Rng};
use fgdb_relational::algebra::paper_queries;
use fgdb_relational::parser::{self, paper_sql};
use fgdb_relational::planner::{optimize, optimize_with_report};
use fgdb_relational::{execute, Database, MaterializedView};
use proptest::prelude::*;

/// The soundness check: identical results, no more intermediate tuples.
fn check_optimizer_soundness(sql: &str, db: &Database) {
    let naive = match parser::parse_plan(sql) {
        Ok(p) => p,
        Err(e) => panic!("generated SQL must parse: `{sql}`: {e}"),
    };
    // Generated queries are well-typed by construction.
    naive
        .output_columns(db)
        .unwrap_or_else(|e| panic!("generated SQL must validate: `{sql}`: {e}"));
    let (opt, _rep) = optimize_with_report(&naive, db).unwrap();
    let (naive_res, naive_stats) = execute(&naive, db).unwrap();
    let (opt_res, opt_stats) = execute(&opt, db).unwrap();
    assert_eq!(
        naive_res.columns, opt_res.columns,
        "columns changed for `{sql}`:\n  naive: {naive}\n  opt:   {opt}"
    );
    assert_eq!(
        naive_res.rows.sorted_entries(),
        opt_res.rows.sorted_entries(),
        "rows changed for `{sql}`:\n  naive: {naive}\n  opt:   {opt}"
    );
    assert!(
        opt_stats.intermediate_tuples <= naive_stats.intermediate_tuples,
        "optimizer built more intermediate tuples ({} > {}) for `{sql}`:\n  naive: {naive}\n  opt: {opt}",
        opt_stats.intermediate_tuples,
        naive_stats.intermediate_tuples
    );
}

proptest! {
    /// Random well-typed queries: optimizing never changes the answer and
    /// never constructs more intermediate tuples.
    #[test]
    fn optimized_plans_are_sound_and_no_more_expensive(seed in 0u64..1u64 << 48) {
        let db = random_db(seed);
        let mut rng = Rng(seed ^ 0xABCD);
        for _ in 0..4 {
            let sql = random_query(&mut rng);
            check_optimizer_soundness(&sql, &db);
        }
    }

    /// The paper's four queries as SQL text, over random databases: the
    /// optimized text query matches the hand-built plan exactly.
    #[test]
    fn paper_queries_as_text_match_hand_built_plans(seed in 0u64..1u64 << 48) {
        let db = random_db(seed);
        for (sql, hand) in [
            (paper_sql::query1("TOKEN"), paper_queries::query1("TOKEN")),
            (paper_sql::query2("TOKEN"), paper_queries::query2("TOKEN")),
            (paper_sql::query3("TOKEN"), paper_queries::query3("TOKEN")),
            (paper_sql::query4("TOKEN"), paper_queries::query4("TOKEN")),
        ] {
            check_optimizer_soundness(&sql, &db);
            let opt = optimize(&parser::parse_plan(&sql).unwrap(), &db).unwrap();
            let (text_res, _) = execute(&opt, &db).unwrap();
            let (hand_res, _) = execute(&hand, &db).unwrap();
            prop_assert_eq!(
                text_res.rows.sorted_entries(),
                hand_res.rows.sorted_entries(),
                "text vs hand-built diverged for `{}`", sql
            );
        }
    }

    /// The optimized plan drives incremental view maintenance to the same
    /// answers as naive re-execution under random delta streams — one text
    /// query serves both Algorithm 3 and Algorithm 1.
    #[test]
    fn optimized_views_track_deltas_identically(seed in 0u64..1u64 << 48) {
        let mut db = random_db(seed);
        let mut rng = Rng(seed ^ 0x5EED);
        let sql = random_query(&mut rng);
        let naive = parser::parse_plan(&sql).unwrap();
        let opt = optimize(&naive, &db).unwrap();
        let mut view = MaterializedView::new(&opt, &db).unwrap();
        for _ in 0..4 {
            let deltas = random_delta(&mut rng, &mut db);
            view.apply_delta(&deltas);
            let fresh = execute(&naive, &db).unwrap().0;
            prop_assert_eq!(
                view.result().sorted_entries(),
                fresh.rows.sorted_entries(),
                "optimized view diverged from naive re-execution for `{}`", sql
            );
        }
    }

    /// parse ∘ print is a fixpoint on random generated queries.
    #[test]
    fn parse_print_parse_is_a_fixpoint(seed in 0u64..1u64 << 48) {
        let mut rng = Rng(seed);
        for _ in 0..4 {
            let sql = random_query(&mut rng);
            let ast = parser::parse(&sql)
                .unwrap_or_else(|e| panic!("generated SQL must parse: `{sql}`: {e}"));
            let printed = ast.to_string();
            let reparsed = parser::parse(&printed)
                .unwrap_or_else(|e| panic!("printed SQL must re-parse: `{printed}`: {e}"));
            prop_assert_eq!(&ast, &reparsed, "fixpoint failed: `{}` vs `{}`", sql, printed);
            // And printing the reparsed AST is byte-stable.
            prop_assert_eq!(printed, reparsed.to_string());
        }
    }

    /// The parser never panics, whatever the input: mutate valid queries
    /// into garbage and feed raw junk.
    #[test]
    fn parser_never_panics_on_mutated_input(seed in 0u64..1u64 << 48) {
        let mut rng = Rng(seed);
        let base = random_query(&mut rng);
        // Truncations at every char boundary.
        let cut = rng.below(base.len().max(1));
        let prefix: String = base.chars().take(cut).collect();
        let _ = parser::parse(&prefix);
        // Random byte splice from a hostile alphabet.
        let alphabet = ['(', ')', '\'', '.', ',', '=', '<', 'S', '9', ' ', '*', '!', 'π'];
        let junk: String = (0..rng.below(30)).map(|_| *rng.pick(&alphabet)).collect();
        let _ = parser::parse(&junk);
        let spliced = format!("{prefix}{junk}");
        if let Ok(ast) = parser::parse(&spliced) {
            // Anything that parses must lower or error — never panic — and
            // anything that lowers must print round-trip.
            if let Ok(_plan) = ast.to_plan() {
                let _ = parser::parse(&ast.to_string()).unwrap();
            }
        }
    }
}
