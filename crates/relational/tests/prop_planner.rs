//! Optimizer soundness and parser round-trip property suite.
//!
//! For random databases and random well-typed SQL queries (plus the paper's
//! queries 1–4 as text):
//!
//! * the optimized plan's `QueryResult` is *identical* to the naive plan's
//!   (same columns, same multiset of rows);
//! * the optimized plan constructs no more intermediate tuples than the
//!   naive plan ([`ExecStats::intermediate_tuples`]);
//! * the optimized plan drives a [`MaterializedView`] to the same answers
//!   as naive re-execution under random delta streams (the same text
//!   serves Algorithm 3 and Algorithm 1);
//! * `parse ∘ print` is a fixpoint of the SQL AST.

use fgdb_relational::algebra::paper_queries;
use fgdb_relational::parser::{self, paper_sql};
use fgdb_relational::planner::{optimize, optimize_with_report};
use fgdb_relational::{
    execute, tuple, Database, DeltaSet, MaterializedView, Schema, Value, ValueType,
};
use proptest::prelude::*;
use std::sync::Arc;

// ------------------------------------------------------------ tiny PRNG --

/// Splitmix64 — deterministic, dependency-free stream for building random
/// databases and queries from one seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

const LABELS: &[&str] = &["O", "B-PER", "B-ORG", "B-LOC"];
const STRINGS: &[&str] = &["Boston", "Ann", "Bill", "IBM", "said", "hired"];
const TOPICS: &[&str] = &["sports", "business", "none"];

/// A random database: a TOKEN-shaped relation (so the paper queries run on
/// it too) plus a small DOC relation for cross-relation joins.
fn random_db(seed: u64) -> Database {
    let mut rng = Rng(seed);
    let mut db = Database::new();
    let token = Schema::from_pairs(&[
        ("tok_id", ValueType::Int),
        ("doc_id", ValueType::Int),
        ("string", ValueType::Str),
        ("label", ValueType::Str),
        ("truth", ValueType::Str),
        ("score", ValueType::Float),
    ])
    .unwrap()
    .with_primary_key("tok_id")
    .unwrap();
    db.create_relation("TOKEN", token).unwrap();
    let n_docs = 1 + rng.below(4);
    let n_tokens = rng.below(30);
    {
        let rel = db.relation_mut("TOKEN").unwrap();
        for i in 0..n_tokens {
            let score = if rng.chance(20) {
                Value::Null
            } else {
                Value::float(rng.below(8) as f64 / 2.0)
            };
            rel.insert(fgdb_relational::Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.below(n_docs) as i64),
                Value::str(*rng.pick(STRINGS)),
                Value::str(*rng.pick(LABELS)),
                Value::str(*rng.pick(LABELS)),
                score,
            ]))
            .unwrap();
        }
    }
    let doc = Schema::from_pairs(&[("doc", ValueType::Int), ("topic", ValueType::Str)]).unwrap();
    db.create_relation("DOC", doc).unwrap();
    {
        let rel = db.relation_mut("DOC").unwrap();
        for d in 0..n_docs {
            rel.insert(tuple![d as i64, *rng.pick(TOPICS)]).unwrap();
        }
    }
    db
}

/// Columns available for predicates, per FROM shape: (name, is_string).
type Cols = Vec<(&'static str, bool)>;

fn token_cols(prefix: &str) -> Cols {
    match prefix {
        "" => vec![
            ("tok_id", false),
            ("doc_id", false),
            ("string", true),
            ("label", true),
            ("truth", true),
        ],
        "T1" => vec![
            ("T1.tok_id", false),
            ("T1.doc_id", false),
            ("T1.string", true),
            ("T1.label", true),
            ("T1.truth", true),
        ],
        "T2" => vec![
            ("T2.tok_id", false),
            ("T2.doc_id", false),
            ("T2.string", true),
            ("T2.label", true),
            ("T2.truth", true),
        ],
        _ => unreachable!("known prefixes only"),
    }
}

/// One random conjunct over the available columns (SQL text).
fn random_conjunct(rng: &mut Rng, cols: &Cols) -> String {
    let ops = ["=", "<>", "<", "<=", ">", ">="];
    match rng.below(6) {
        // Column vs literal, type-matched.
        0..=2 => {
            let (c, is_str) = *rng.pick(cols);
            let op = *rng.pick(&ops);
            if is_str {
                let pool: Vec<&str> = STRINGS.iter().chain(LABELS.iter()).copied().collect();
                format!("{c} {op} '{}'", rng.pick(&pool))
            } else {
                format!("{c} {op} {}", rng.below(8))
            }
        }
        // Column vs column of the same type.
        3 => {
            let (a, ta) = *rng.pick(cols);
            let same: Vec<(&str, bool)> = cols.iter().copied().filter(|(_, t)| *t == ta).collect();
            let (b, _) = *rng.pick(&same);
            format!("{a} = {b}")
        }
        // NULL tests and constants (fodder for constant folding).
        4 => {
            let (c, _) = *rng.pick(cols);
            if rng.chance(50) {
                format!("{c} IS NOT NULL")
            } else {
                format!("{c} IS NULL")
            }
        }
        _ => (*rng.pick(&[
            "TRUE",
            "1 = 1",
            "1 = 2",
            "NULL = 3",
            "NOT FALSE",
            "'a' = 'a'",
            "2 > 1 AND TRUE",
        ]))
        .to_string(),
    }
}

fn random_where(rng: &mut Rng, cols: &Cols, extra: Option<String>) -> String {
    let mut conjuncts: Vec<String> = extra.into_iter().collect();
    for _ in 0..rng.below(3) {
        conjuncts.push(random_conjunct(rng, cols));
    }
    if conjuncts.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", conjuncts.join(" AND "))
    }
}

/// A random single SELECT statement (no set operations).
fn random_select(rng: &mut Rng) -> String {
    match rng.below(4) {
        // Single table, plain select or aggregate.
        0..=1 => {
            let cols = token_cols("");
            let where_sql = random_where(rng, &cols, None);
            if rng.chance(40) {
                // Aggregate query over doc_id groups (or global).
                let global = rng.chance(30);
                let group = if global { "" } else { " GROUP BY doc_id" };
                let mut items: Vec<String> = if global {
                    vec![]
                } else {
                    vec!["doc_id".into()]
                };
                let aggs = [
                    "COUNT(*)",
                    "COUNT(*) FILTER (WHERE label = 'B-PER')",
                    "SUM(tok_id)",
                    "MIN(tok_id)",
                    "MAX(string)",
                    "SUM(score)",
                ];
                let n_aggs = 1 + rng.below(2);
                for i in 0..n_aggs {
                    items.push(format!("{} AS a{i}", rng.pick(&aggs)));
                }
                let having = if rng.chance(40) {
                    " HAVING COUNT(*) FILTER (WHERE label = 'B-ORG') >= 1"
                } else {
                    ""
                };
                format!(
                    "SELECT {} FROM TOKEN{where_sql}{group}{having}",
                    items.join(", ")
                )
            } else {
                let distinct = if rng.chance(30) { "DISTINCT " } else { "" };
                let lists = ["string", "string, label", "doc_id, string", "*"];
                format!(
                    "SELECT {distinct}{} FROM TOKEN{where_sql}",
                    rng.pick(&lists)
                )
            }
        }
        // Self-join via comma FROM (the naive cross-product shape).
        2 => {
            let mut cols = token_cols("T1");
            cols.extend(token_cols("T2"));
            let equi = "T1.doc_id = T2.doc_id".to_string();
            let where_sql = random_where(rng, &cols, Some(equi));
            let lists = ["T2.string", "T1.string, T2.label", "T1.doc_id, T2.string"];
            format!(
                "SELECT {} FROM TOKEN T1, TOKEN T2{where_sql}",
                rng.pick(&lists)
            )
        }
        // Cross-relation JOIN ... ON.
        _ => {
            let mut cols = token_cols("T1");
            cols.push(("D.doc", false));
            cols.push(("D.topic", true));
            let where_sql = random_where(rng, &cols, None);
            format!(
                "SELECT T1.string, D.topic FROM TOKEN T1 JOIN DOC D ON T1.doc_id = D.doc{where_sql}"
            )
        }
    }
}

/// A random query: one select, or a set operation between two
/// single-column selects (guaranteed arity match).
fn random_query(rng: &mut Rng) -> String {
    if rng.chance(25) {
        let arm = |rng: &mut Rng| {
            let cols = token_cols("");
            let where_sql = random_where(rng, &cols, None);
            format!("SELECT string FROM TOKEN{where_sql}")
        };
        let op = *rng.pick(&["UNION", "UNION ALL", "EXCEPT", "EXCEPT ALL", "INTERSECT"]);
        format!("{} {op} {}", arm(rng), arm(rng))
    } else {
        random_select(rng)
    }
}

/// The soundness check: identical results, no more intermediate tuples.
fn check_optimizer_soundness(sql: &str, db: &Database) {
    let naive = match parser::parse_plan(sql) {
        Ok(p) => p,
        Err(e) => panic!("generated SQL must parse: `{sql}`: {e}"),
    };
    // Generated queries are well-typed by construction.
    naive
        .output_columns(db)
        .unwrap_or_else(|e| panic!("generated SQL must validate: `{sql}`: {e}"));
    let (opt, _rep) = optimize_with_report(&naive, db).unwrap();
    let (naive_res, naive_stats) = execute(&naive, db).unwrap();
    let (opt_res, opt_stats) = execute(&opt, db).unwrap();
    assert_eq!(
        naive_res.columns, opt_res.columns,
        "columns changed for `{sql}`:\n  naive: {naive}\n  opt:   {opt}"
    );
    assert_eq!(
        naive_res.rows.sorted_entries(),
        opt_res.rows.sorted_entries(),
        "rows changed for `{sql}`:\n  naive: {naive}\n  opt:   {opt}"
    );
    assert!(
        opt_stats.intermediate_tuples <= naive_stats.intermediate_tuples,
        "optimizer built more intermediate tuples ({} > {}) for `{sql}`:\n  naive: {naive}\n  opt: {opt}",
        opt_stats.intermediate_tuples,
        naive_stats.intermediate_tuples
    );
}

/// Applies a random relabeling delta batch to TOKEN, returning the deltas.
fn random_delta(rng: &mut Rng, db: &mut Database) -> DeltaSet {
    let mut deltas = DeltaSet::new();
    let rel = db.relation_mut("TOKEN").unwrap();
    let n = rel.len();
    if n == 0 {
        return deltas;
    }
    let label_col = rel.schema().index_of("label").unwrap();
    let ids: Vec<i64> = (0..n as i64).collect();
    for _ in 0..1 + rng.below(4) {
        let id = *rng.pick(&ids);
        let Some(rid) = rel.find_by_pk(&Value::Int(id)) else {
            continue;
        };
        let (old, new) = rel
            .update_field(rid, label_col, Value::str(*rng.pick(LABELS)))
            .unwrap();
        deltas.record_update(&Arc::from("TOKEN"), old, new);
    }
    deltas.compact();
    deltas
}

proptest! {
    /// Random well-typed queries: optimizing never changes the answer and
    /// never constructs more intermediate tuples.
    #[test]
    fn optimized_plans_are_sound_and_no_more_expensive(seed in 0u64..1u64 << 48) {
        let db = random_db(seed);
        let mut rng = Rng(seed ^ 0xABCD);
        for _ in 0..4 {
            let sql = random_query(&mut rng);
            check_optimizer_soundness(&sql, &db);
        }
    }

    /// The paper's four queries as SQL text, over random databases: the
    /// optimized text query matches the hand-built plan exactly.
    #[test]
    fn paper_queries_as_text_match_hand_built_plans(seed in 0u64..1u64 << 48) {
        let db = random_db(seed);
        for (sql, hand) in [
            (paper_sql::query1("TOKEN"), paper_queries::query1("TOKEN")),
            (paper_sql::query2("TOKEN"), paper_queries::query2("TOKEN")),
            (paper_sql::query3("TOKEN"), paper_queries::query3("TOKEN")),
            (paper_sql::query4("TOKEN"), paper_queries::query4("TOKEN")),
        ] {
            check_optimizer_soundness(&sql, &db);
            let opt = optimize(&parser::parse_plan(&sql).unwrap(), &db).unwrap();
            let (text_res, _) = execute(&opt, &db).unwrap();
            let (hand_res, _) = execute(&hand, &db).unwrap();
            prop_assert_eq!(
                text_res.rows.sorted_entries(),
                hand_res.rows.sorted_entries(),
                "text vs hand-built diverged for `{}`", sql
            );
        }
    }

    /// The optimized plan drives incremental view maintenance to the same
    /// answers as naive re-execution under random delta streams — one text
    /// query serves both Algorithm 3 and Algorithm 1.
    #[test]
    fn optimized_views_track_deltas_identically(seed in 0u64..1u64 << 48) {
        let mut db = random_db(seed);
        let mut rng = Rng(seed ^ 0x5EED);
        let sql = random_query(&mut rng);
        let naive = parser::parse_plan(&sql).unwrap();
        let opt = optimize(&naive, &db).unwrap();
        let mut view = MaterializedView::new(&opt, &db).unwrap();
        for _ in 0..4 {
            let deltas = random_delta(&mut rng, &mut db);
            view.apply_delta(&deltas);
            let fresh = execute(&naive, &db).unwrap().0;
            prop_assert_eq!(
                view.result().sorted_entries(),
                fresh.rows.sorted_entries(),
                "optimized view diverged from naive re-execution for `{}`", sql
            );
        }
    }

    /// parse ∘ print is a fixpoint on random generated queries.
    #[test]
    fn parse_print_parse_is_a_fixpoint(seed in 0u64..1u64 << 48) {
        let mut rng = Rng(seed);
        for _ in 0..4 {
            let sql = random_query(&mut rng);
            let ast = parser::parse(&sql)
                .unwrap_or_else(|e| panic!("generated SQL must parse: `{sql}`: {e}"));
            let printed = ast.to_string();
            let reparsed = parser::parse(&printed)
                .unwrap_or_else(|e| panic!("printed SQL must re-parse: `{printed}`: {e}"));
            prop_assert_eq!(&ast, &reparsed, "fixpoint failed: `{}` vs `{}`", sql, printed);
            // And printing the reparsed AST is byte-stable.
            prop_assert_eq!(printed, reparsed.to_string());
        }
    }

    /// The parser never panics, whatever the input: mutate valid queries
    /// into garbage and feed raw junk.
    #[test]
    fn parser_never_panics_on_mutated_input(seed in 0u64..1u64 << 48) {
        let mut rng = Rng(seed);
        let base = random_query(&mut rng);
        // Truncations at every char boundary.
        let cut = rng.below(base.len().max(1));
        let prefix: String = base.chars().take(cut).collect();
        let _ = parser::parse(&prefix);
        // Random byte splice from a hostile alphabet.
        let alphabet = ['(', ')', '\'', '.', ',', '=', '<', 'S', '9', ' ', '*', '!', 'π'];
        let junk: String = (0..rng.below(30)).map(|_| *rng.pick(&alphabet)).collect();
        let _ = parser::parse(&junk);
        let spliced = format!("{prefix}{junk}");
        if let Ok(ast) = parser::parse(&spliced) {
            // Anything that parses must lower or error — never panic — and
            // anything that lowers must print round-trip.
            if let Ok(_plan) = ast.to_plan() {
                let _ = parser::parse(&ast.to_string()).unwrap();
            }
        }
    }
}
