//! Stress and edge-case tests for the storage layer: slot reuse under heavy
//! insert/delete churn, index consistency across mixed workloads, and the
//! algebra-level validation of the set operators.

use fgdb_relational::{execute_simple, Database, Expr, Plan, Schema, Tuple, Value, ValueType};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::from_pairs(&[("id", ValueType::Int), ("s", ValueType::Str)])
        .unwrap()
        .with_primary_key("id")
        .unwrap()
}

proptest! {
    /// Random interleavings of insert/delete/update keep the relation, its
    /// primary-key index, and its secondary index mutually consistent.
    #[test]
    fn mixed_churn_keeps_indexes_consistent(
        ops in prop::collection::vec((0u8..3, 0i64..24, 0usize..4), 1..120),
    ) {
        const STRINGS: [&str; 4] = ["a", "b", "c", "d"];
        let mut db = Database::new();
        db.create_relation("T", schema()).unwrap();
        let rel = db.relation_mut("T").unwrap();
        rel.create_index("s").unwrap();
        let mut live: std::collections::HashMap<i64, usize> = Default::default();

        for (op, id, si) in ops {
            match op {
                0 => {
                    // Insert if absent.
                    if let std::collections::hash_map::Entry::Vacant(e) = live.entry(id) {
                        rel.insert(Tuple::new(vec![
                            Value::Int(id),
                            Value::str(STRINGS[si]),
                        ]))
                        .unwrap();
                        e.insert(si);
                    } else {
                        prop_assert!(rel
                            .insert(Tuple::new(vec![Value::Int(id), Value::str("x")]))
                            .is_err());
                    }
                }
                1 => {
                    // Delete if present.
                    if live.remove(&id).is_some() {
                        let rid = rel.find_by_pk(&Value::Int(id)).unwrap();
                        rel.delete(rid).unwrap();
                    } else {
                        prop_assert!(rel.find_by_pk(&Value::Int(id)).is_none());
                    }
                }
                _ => {
                    // Update string if present.
                    if let Some(cur) = live.get_mut(&id) {
                        let rid = rel.find_by_pk(&Value::Int(id)).unwrap();
                        rel.update_field(rid, 1, Value::str(STRINGS[si])).unwrap();
                        *cur = si;
                    }
                }
            }
            // Cross-check invariants after every operation.
            prop_assert_eq!(rel.len(), live.len());
        }
        // Secondary index agrees with a scan for every string value.
        for (i, s) in STRINGS.iter().enumerate() {
            let via_index: usize = rel
                .index_lookup(1, &Value::str(*s))
                .map(|r| r.len())
                .unwrap_or(0);
            let via_model = live.values().filter(|&&v| v == i).count();
            prop_assert_eq!(via_index, via_model, "index drift for {}", s);
        }
        // Every live row is reachable by primary key.
        for (&id, &si) in &live {
            let rid = rel.find_by_pk(&Value::Int(id)).unwrap();
            prop_assert_eq!(
                rel.get(rid).unwrap().get(1).as_str().unwrap(),
                STRINGS[si]
            );
        }
    }
}

#[test]
fn set_operation_arity_validation() {
    let mut db = Database::new();
    db.create_relation("T", schema()).unwrap();
    db.relation_mut("T")
        .unwrap()
        .insert(Tuple::new(vec![Value::Int(1), Value::str("x")]))
        .unwrap();
    // Compatible arity works…
    let ok = Plan::scan("T")
        .project(&["s"])
        .union(Plan::scan_as("T", "B").project(&["B.s"]));
    assert!(execute_simple(&ok, &db).is_ok());
    // …mismatched arity does not.
    let bad = Plan::scan("T")
        .project(&["s"])
        .union(Plan::scan_as("T", "B"));
    assert!(bad.output_columns(&db).is_err());
    assert!(execute_simple(&bad, &db).is_err());
}

#[test]
fn set_operation_display_and_base_relations() {
    let p = Plan::scan("A")
        .difference(Plan::scan("B"))
        .intersect(Plan::scan("C"));
    assert_eq!(p.to_string(), "((Scan(A) ∖ Scan(B)) ∩ Scan(C))");
    let rels: Vec<String> = p.base_relations().iter().map(|r| r.to_string()).collect();
    assert_eq!(rels, vec!["A", "B", "C"]);
}

#[test]
fn self_difference_is_empty_and_self_intersect_is_identity() {
    let mut db = Database::new();
    db.create_relation("T", schema()).unwrap();
    let rel = db.relation_mut("T").unwrap();
    for i in 0..10i64 {
        rel.insert(Tuple::new(vec![Value::Int(i), Value::str("dup")]))
            .unwrap();
    }
    let proj = Plan::scan("T").project(&["s"]); // multiset of 10 × ("dup")
    let diff = execute_simple(&proj.clone().difference(proj.clone()), &db).unwrap();
    assert!(diff.rows.is_empty());
    let inter = execute_simple(&proj.clone().intersect(proj.clone()), &db).unwrap();
    assert_eq!(inter.rows.count(&Tuple::new(vec![Value::str("dup")])), 10);
    let filtered = Plan::scan("T")
        .filter(Expr::col("id").lt(Expr::lit(3i64)))
        .project(&["s"]);
    let partial = execute_simple(&proj.intersect(filtered), &db).unwrap();
    assert_eq!(partial.rows.count(&Tuple::new(vec![Value::str("dup")])), 3);
}
