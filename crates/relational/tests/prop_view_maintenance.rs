//! Property tests for the paper's central systems invariant (Eq. 6):
//! an incrementally maintained view equals a from-scratch recomputation
//! after *any* stream of base-table updates, for plans covering every
//! operator (σ, π, ×, ⋈, γ with filtered aggregates, δ).

use fgdb_relational::algebra::{AggExpr, AggFunc};
use fgdb_relational::{
    execute_simple, Database, DeltaSet, Expr, MaterializedView, Plan, Schema, Tuple, Value,
    ValueType,
};
use proptest::prelude::*;
use std::sync::Arc;

const LABELS: [&str; 4] = ["O", "B-PER", "B-ORG", "B-LOC"];
const STRINGS: [&str; 5] = ["alpha", "beta", "gamma", "Boston", "delta"];

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("id", ValueType::Int),
        ("doc", ValueType::Int),
        ("s", ValueType::Str),
        ("label", ValueType::Str),
    ])
    .unwrap()
    .with_primary_key("id")
    .unwrap()
}

#[derive(Debug, Clone)]
struct Row {
    id: i64,
    doc: i64,
    s: usize,
    label: usize,
}

fn row_tuple(r: &Row) -> Tuple {
    Tuple::new(vec![
        Value::Int(r.id),
        Value::Int(r.doc),
        Value::str(STRINGS[r.s]),
        Value::str(LABELS[r.label]),
    ])
}

/// One mutation of the base table.
#[derive(Debug, Clone)]
enum Op {
    /// Relabel row at index (mod live rows).
    Relabel { row: usize, label: usize },
    /// Insert a fresh row into a document.
    Insert { doc: i64, s: usize, label: usize },
    /// Delete row at index (mod live rows).
    Delete { row: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64, 0usize..4).prop_map(|(row, label)| Op::Relabel { row, label }),
        (0i64..6, 0usize..5, 0usize..4).prop_map(|(doc, s, label)| Op::Insert { doc, s, label }),
        (0usize..64).prop_map(|row| Op::Delete { row }),
    ]
}

/// The plan zoo: one representative per operator combination.
fn plan(kind: u8) -> Plan {
    match kind % 10 {
        0 => Plan::scan("T")
            .filter(Expr::col("label").eq(Expr::lit("B-PER")))
            .project(&["s"]),
        1 => Plan::scan("T").aggregate(
            &[],
            vec![AggExpr::count_if(
                Expr::col("label").eq(Expr::lit("B-PER")),
                "n",
            )],
        ),
        2 => Plan::scan("T")
            .aggregate(
                &["doc"],
                vec![
                    AggExpr::count_if(Expr::col("label").eq(Expr::lit("B-PER")), "np"),
                    AggExpr::count_if(Expr::col("label").eq(Expr::lit("B-ORG")), "no"),
                ],
            )
            .filter(Expr::col("np").eq(Expr::col("no")))
            .project(&["doc"]),
        3 => {
            let t1 = Plan::scan_as("T", "A").filter(
                Expr::col("A.s")
                    .eq(Expr::lit("Boston"))
                    .and(Expr::col("A.label").eq(Expr::lit("B-ORG"))),
            );
            let t2 = Plan::scan_as("T", "B").filter(Expr::col("B.label").eq(Expr::lit("B-PER")));
            t1.join_on(t2, &[("A.doc", "B.doc")]).project(&["B.s"])
        }
        4 => Plan::scan("T")
            .filter(Expr::col("label").ne(Expr::lit("O")))
            .project(&["s"])
            .distinct(),
        5 => Plan::scan("T").aggregate(
            &["doc"],
            vec![
                AggExpr::new(AggFunc::Min(Arc::from("id")), "lo"),
                AggExpr::new(AggFunc::Max(Arc::from("id")), "hi"),
                AggExpr::new(AggFunc::Sum(Arc::from("id")), "sum"),
            ],
        ),
        6 => Plan::scan_as("T", "A")
            .filter(Expr::col("A.label").eq(Expr::lit("B-LOC")))
            .project(&["A.doc"])
            .product(
                Plan::scan_as("T", "B")
                    .filter(Expr::col("B.label").eq(Expr::lit("B-ORG")))
                    .project(&["B.s"]),
            ),
        7 => Plan::scan("T")
            .filter(Expr::col("label").eq(Expr::lit("B-PER")))
            .project(&["s"])
            .union(
                Plan::scan("T")
                    .filter(Expr::col("label").eq(Expr::lit("B-ORG")))
                    .project(&["s"]),
            ),
        8 => Plan::scan("T").project(&["s"]).difference(
            Plan::scan("T")
                .filter(Expr::col("label").eq(Expr::lit("O")))
                .project(&["s"]),
        ),
        _ => Plan::scan("T")
            .filter(Expr::col("label").ne(Expr::lit("O")))
            .project(&["s"])
            .intersect(
                Plan::scan("T")
                    .filter(Expr::col("doc").le(Expr::lit(2i64)))
                    .project(&["s"]),
            ),
    }
}

fn build_db(rows: &[Row]) -> Database {
    let mut db = Database::new();
    db.create_relation("T", schema()).unwrap();
    let rel = db.relation_mut("T").unwrap();
    for r in rows {
        rel.insert(row_tuple(r)).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Maintained view == recomputation after every update batch.
    #[test]
    fn view_equals_recomputation_under_any_update_stream(
        kind in 0u8..10,
        n_rows in 3usize..24,
        ops in prop::collection::vec(op_strategy(), 1..40),
        batch in 1usize..6,
    ) {
        // Deterministic initial table.
        let rows: Vec<Row> = (0..n_rows as i64)
            .map(|i| Row { id: i, doc: i % 4, s: (i as usize) % 5, label: (i as usize) % 4 })
            .collect();
        let mut db = build_db(&rows);
        let plan = plan(kind);
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        let mut next_id = n_rows as i64;
        let rel_name: Arc<str> = Arc::from("T");

        let mut deltas = DeltaSet::new();
        for (i, op) in ops.iter().enumerate() {
            let rel = db.relation_mut("T").unwrap();
            match op {
                Op::Relabel { row, label } => {
                    let live: Vec<_> = rel.iter().map(|(rid, _)| rid).collect();
                    if live.is_empty() { continue; }
                    let rid = live[row % live.len()];
                    let (old, new) = rel
                        .update_field(rid, 3, Value::str(LABELS[*label]))
                        .unwrap();
                    deltas.record_update(&rel_name, old, new);
                }
                Op::Insert { doc, s, label } => {
                    let r = Row { id: next_id, doc: *doc, s: *s, label: *label };
                    next_id += 1;
                    let t = row_tuple(&r);
                    rel.insert(t.clone()).unwrap();
                    deltas.record_insert(&rel_name, t);
                }
                Op::Delete { row } => {
                    let live: Vec<_> = rel.iter().map(|(rid, _)| rid).collect();
                    if live.is_empty() { continue; }
                    let rid = live[row % live.len()];
                    let gone = rel.delete(rid).unwrap();
                    deltas.record_delete(&rel_name, gone);
                }
            }
            // Apply in batches (like k MCMC steps between query evaluations).
            if (i + 1) % batch == 0 {
                view.apply_delta(&std::mem::take(&mut deltas));
                let fresh = execute_simple(&plan, &db).unwrap();
                prop_assert_eq!(
                    view.result().sorted_entries(),
                    fresh.rows.sorted_entries(),
                    "divergence after batch ending at op {}", i
                );
            }
        }
        // Flush the tail.
        view.apply_delta(&deltas);
        let fresh = execute_simple(&plan, &db).unwrap();
        prop_assert_eq!(view.result().sorted_entries(), fresh.rows.sorted_entries());
    }

    /// Delta compaction: an update stream that returns every field to its
    /// original value produces an empty DeltaSet and no view output delta.
    #[test]
    fn round_trip_updates_cancel(
        rows in 2usize..10,
        flips in prop::collection::vec((0usize..10, 1usize..4), 1..12),
    ) {
        let init: Vec<Row> = (0..rows as i64)
            .map(|i| Row { id: i, doc: 0, s: 0, label: 0 })
            .collect();
        let mut db = build_db(&init);
        let plan = plan(0);
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        let rel_name: Arc<str> = Arc::from("T");
        let mut deltas = DeltaSet::new();
        let rel = db.relation_mut("T").unwrap();
        // Flip labels away and back.
        for (row, label) in &flips {
            let live: Vec<_> = rel.iter().map(|(rid, _)| rid).collect();
            let rid = live[row % live.len()];
            let (old, new) = rel.update_field(rid, 3, Value::str(LABELS[*label])).unwrap();
            deltas.record_update(&rel_name, old, new);
            let (old, new) = rel.update_field(rid, 3, Value::str(LABELS[0])).unwrap();
            deltas.record_update(&rel_name, old, new);
        }
        prop_assert!(deltas.is_empty());
        let out = view.apply_delta(&deltas);
        prop_assert!(out.is_empty());
    }
}
