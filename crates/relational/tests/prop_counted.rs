//! Property tests for counted-multiset algebra — the foundation of the
//! multiset semantics the paper's §4.2 Remark requires under projection.

use fgdb_relational::{CountedSet, Tuple, Value};
use proptest::prelude::*;

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    (0i64..5, 0i64..3).prop_map(|(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)]))
}

fn entries_strategy() -> impl Strategy<Value = Vec<(Tuple, i64)>> {
    prop::collection::vec((tuple_strategy(), -4i64..5), 0..24)
}

fn build(entries: &[(Tuple, i64)]) -> CountedSet {
    let mut s = CountedSet::new();
    for (t, c) in entries {
        s.add(t.clone(), *c);
    }
    s
}

proptest! {
    /// No zero-multiplicity entries survive any construction.
    #[test]
    fn no_zero_entries(entries in entries_strategy()) {
        let s = build(&entries);
        for (_, c) in s.iter() {
            prop_assert_ne!(c, 0);
        }
    }

    /// `merge` behaves as pointwise addition of multiplicities.
    #[test]
    fn merge_is_pointwise_addition(a in entries_strategy(), b in entries_strategy()) {
        let sa = build(&a);
        let sb = build(&b);
        let mut merged = sa.clone();
        merged.merge(&sb);
        // Check over the union of supports.
        for (t, _) in sa.iter().chain(sb.iter()) {
            prop_assert_eq!(merged.count(t), sa.count(t) + sb.count(t));
        }
        prop_assert_eq!(merged.total(), sa.total() + sb.total());
    }

    /// Merge is commutative.
    #[test]
    fn merge_commutative(a in entries_strategy(), b in entries_strategy()) {
        let mut ab = build(&a);
        ab.merge(&build(&b));
        let mut ba = build(&b);
        ba.merge(&build(&a));
        prop_assert_eq!(ab.sorted_entries(), ba.sorted_entries());
    }

    /// `minus` then `merge` round-trips: (a − b) + b == a.
    #[test]
    fn minus_merge_round_trip(a in entries_strategy(), b in entries_strategy()) {
        let sa = build(&a);
        let sb = build(&b);
        let mut back = sa.minus(&sb);
        back.merge(&sb);
        prop_assert_eq!(back.sorted_entries(), sa.sorted_entries());
    }

    /// Double negation is identity; x + (−x) is empty.
    #[test]
    fn negation_laws(a in entries_strategy()) {
        let sa = build(&a);
        prop_assert_eq!(sa.negated().negated().sorted_entries(), sa.sorted_entries());
        let mut zero = sa.clone();
        zero.merge(&sa.negated());
        prop_assert!(zero.is_empty());
    }

    /// `merge_owned` agrees with `merge`.
    #[test]
    fn merge_owned_agrees(a in entries_strategy(), b in entries_strategy()) {
        let mut by_ref = build(&a);
        by_ref.merge(&build(&b));
        let mut by_val = build(&a);
        by_val.merge_owned(build(&b));
        prop_assert_eq!(by_ref.sorted_entries(), by_val.sorted_entries());
    }

    /// Support contains exactly the positive entries.
    #[test]
    fn support_is_positive_part(a in entries_strategy()) {
        let sa = build(&a);
        let support: Vec<Tuple> = sa.sorted_support();
        for t in &support {
            prop_assert!(sa.count(t) > 0);
        }
        let n_positive = sa.iter().filter(|(_, c)| *c > 0).count();
        prop_assert_eq!(support.len(), n_positive);
    }

    /// `from_tuples` counts duplicates.
    #[test]
    fn from_tuples_counts(ts in prop::collection::vec(tuple_strategy(), 0..30)) {
        let s = CountedSet::from_tuples(ts.clone());
        prop_assert_eq!(s.total(), ts.len() as i64);
        for t in &ts {
            let expected = ts.iter().filter(|u| *u == t).count() as i64;
            prop_assert_eq!(s.count(t), expected);
        }
        prop_assert!(s.check_is_state().is_none());
    }
}
