//! Shared generators for the relational property suites.
//!
//! One deterministic splitmix64 stream drives random databases, random
//! well-typed SQL, and random delta batches, so every suite shrinks to a
//! single reproducible seed. Extracted from `prop_planner.rs` once the
//! circuit suite needed the same machinery.

#![allow(dead_code)] // each test binary uses its own subset

use fgdb_relational::{tuple, Database, DeltaSet, Schema, Tuple, Value, ValueType};
use std::sync::Arc;

// ------------------------------------------------------------ tiny PRNG --

/// Splitmix64 — deterministic, dependency-free stream for building random
/// databases and queries from one seed.
pub struct Rng(pub u64);

impl Rng {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    pub fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

pub const LABELS: &[&str] = &["O", "B-PER", "B-ORG", "B-LOC"];
pub const STRINGS: &[&str] = &["Boston", "Ann", "Bill", "IBM", "said", "hired"];
pub const TOPICS: &[&str] = &["sports", "business", "none"];

/// A random database: a TOKEN-shaped relation (so the paper queries run on
/// it too) plus a small DOC relation for cross-relation joins.
pub fn random_db(seed: u64) -> Database {
    let mut rng = Rng(seed);
    let mut db = Database::new();
    let token = Schema::from_pairs(&[
        ("tok_id", ValueType::Int),
        ("doc_id", ValueType::Int),
        ("string", ValueType::Str),
        ("label", ValueType::Str),
        ("truth", ValueType::Str),
        ("score", ValueType::Float),
    ])
    .unwrap()
    .with_primary_key("tok_id")
    .unwrap();
    db.create_relation("TOKEN", token).unwrap();
    let n_docs = 1 + rng.below(4);
    let n_tokens = rng.below(30);
    {
        let rel = db.relation_mut("TOKEN").unwrap();
        for i in 0..n_tokens {
            let score = if rng.chance(20) {
                Value::Null
            } else {
                Value::float(rng.below(8) as f64 / 2.0)
            };
            rel.insert(Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.below(n_docs) as i64),
                Value::str(*rng.pick(STRINGS)),
                Value::str(*rng.pick(LABELS)),
                Value::str(*rng.pick(LABELS)),
                score,
            ]))
            .unwrap();
        }
    }
    let doc = Schema::from_pairs(&[("doc", ValueType::Int), ("topic", ValueType::Str)]).unwrap();
    db.create_relation("DOC", doc).unwrap();
    {
        let rel = db.relation_mut("DOC").unwrap();
        for d in 0..n_docs {
            rel.insert(tuple![d as i64, *rng.pick(TOPICS)]).unwrap();
        }
    }
    db
}

/// Columns available for predicates, per FROM shape: (name, is_string).
pub type Cols = Vec<(&'static str, bool)>;

pub fn token_cols(prefix: &str) -> Cols {
    match prefix {
        "" => vec![
            ("tok_id", false),
            ("doc_id", false),
            ("string", true),
            ("label", true),
            ("truth", true),
        ],
        "T1" => vec![
            ("T1.tok_id", false),
            ("T1.doc_id", false),
            ("T1.string", true),
            ("T1.label", true),
            ("T1.truth", true),
        ],
        "T2" => vec![
            ("T2.tok_id", false),
            ("T2.doc_id", false),
            ("T2.string", true),
            ("T2.label", true),
            ("T2.truth", true),
        ],
        _ => unreachable!("known prefixes only"),
    }
}

/// One random conjunct over the available columns (SQL text).
pub fn random_conjunct(rng: &mut Rng, cols: &Cols) -> String {
    let ops = ["=", "<>", "<", "<=", ">", ">="];
    match rng.below(6) {
        // Column vs literal, type-matched.
        0..=2 => {
            let (c, is_str) = *rng.pick(cols);
            let op = *rng.pick(&ops);
            if is_str {
                let pool: Vec<&str> = STRINGS.iter().chain(LABELS.iter()).copied().collect();
                format!("{c} {op} '{}'", rng.pick(&pool))
            } else {
                format!("{c} {op} {}", rng.below(8))
            }
        }
        // Column vs column of the same type.
        3 => {
            let (a, ta) = *rng.pick(cols);
            let same: Vec<(&str, bool)> = cols.iter().copied().filter(|(_, t)| *t == ta).collect();
            let (b, _) = *rng.pick(&same);
            format!("{a} = {b}")
        }
        // NULL tests and constants (fodder for constant folding).
        4 => {
            let (c, _) = *rng.pick(cols);
            if rng.chance(50) {
                format!("{c} IS NOT NULL")
            } else {
                format!("{c} IS NULL")
            }
        }
        _ => (*rng.pick(&[
            "TRUE",
            "1 = 1",
            "1 = 2",
            "NULL = 3",
            "NOT FALSE",
            "'a' = 'a'",
            "2 > 1 AND TRUE",
        ]))
        .to_string(),
    }
}

pub fn random_where(rng: &mut Rng, cols: &Cols, extra: Option<String>) -> String {
    let mut conjuncts: Vec<String> = extra.into_iter().collect();
    for _ in 0..rng.below(3) {
        conjuncts.push(random_conjunct(rng, cols));
    }
    if conjuncts.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", conjuncts.join(" AND "))
    }
}

/// A random single SELECT statement (no set operations).
pub fn random_select(rng: &mut Rng) -> String {
    match rng.below(4) {
        // Single table, plain select or aggregate.
        0..=1 => {
            let cols = token_cols("");
            let where_sql = random_where(rng, &cols, None);
            if rng.chance(40) {
                // Aggregate query over doc_id groups (or global).
                let global = rng.chance(30);
                let group = if global { "" } else { " GROUP BY doc_id" };
                let mut items: Vec<String> = if global {
                    vec![]
                } else {
                    vec!["doc_id".into()]
                };
                let aggs = [
                    "COUNT(*)",
                    "COUNT(*) FILTER (WHERE label = 'B-PER')",
                    "SUM(tok_id)",
                    "MIN(tok_id)",
                    "MAX(string)",
                    "SUM(score)",
                ];
                let n_aggs = 1 + rng.below(2);
                for i in 0..n_aggs {
                    items.push(format!("{} AS a{i}", rng.pick(&aggs)));
                }
                let having = if rng.chance(40) {
                    " HAVING COUNT(*) FILTER (WHERE label = 'B-ORG') >= 1"
                } else {
                    ""
                };
                format!(
                    "SELECT {} FROM TOKEN{where_sql}{group}{having}",
                    items.join(", ")
                )
            } else {
                let distinct = if rng.chance(30) { "DISTINCT " } else { "" };
                let lists = ["string", "string, label", "doc_id, string", "*"];
                format!(
                    "SELECT {distinct}{} FROM TOKEN{where_sql}",
                    rng.pick(&lists)
                )
            }
        }
        // Self-join via comma FROM (the naive cross-product shape).
        2 => {
            let mut cols = token_cols("T1");
            cols.extend(token_cols("T2"));
            let equi = "T1.doc_id = T2.doc_id".to_string();
            let where_sql = random_where(rng, &cols, Some(equi));
            let lists = ["T2.string", "T1.string, T2.label", "T1.doc_id, T2.string"];
            format!(
                "SELECT {} FROM TOKEN T1, TOKEN T2{where_sql}",
                rng.pick(&lists)
            )
        }
        // Cross-relation JOIN ... ON.
        _ => {
            let mut cols = token_cols("T1");
            cols.push(("D.doc", false));
            cols.push(("D.topic", true));
            let where_sql = random_where(rng, &cols, None);
            format!(
                "SELECT T1.string, D.topic FROM TOKEN T1 JOIN DOC D ON T1.doc_id = D.doc{where_sql}"
            )
        }
    }
}

/// A random query: one select, or a set operation between two
/// single-column selects (guaranteed arity match).
pub fn random_query(rng: &mut Rng) -> String {
    if rng.chance(25) {
        let arm = |rng: &mut Rng| {
            let cols = token_cols("");
            let where_sql = random_where(rng, &cols, None);
            format!("SELECT string FROM TOKEN{where_sql}")
        };
        let op = *rng.pick(&["UNION", "UNION ALL", "EXCEPT", "EXCEPT ALL", "INTERSECT"]);
        format!("{} {op} {}", arm(rng), arm(rng))
    } else {
        random_select(rng)
    }
}

/// Applies a random relabeling delta batch to TOKEN, returning the deltas.
pub fn random_delta(rng: &mut Rng, db: &mut Database) -> DeltaSet {
    let mut deltas = DeltaSet::new();
    let rel = db.relation_mut("TOKEN").unwrap();
    let n = rel.len();
    if n == 0 {
        return deltas;
    }
    let label_col = rel.schema().index_of("label").unwrap();
    let ids: Vec<i64> = (0..n as i64).collect();
    for _ in 0..1 + rng.below(4) {
        let id = *rng.pick(&ids);
        let Some(rid) = rel.find_by_pk(&Value::Int(id)) else {
            continue;
        };
        let (old, new) = rel
            .update_field(rid, label_col, Value::str(*rng.pick(LABELS)))
            .unwrap();
        deltas.record_update(&Arc::from("TOKEN"), old, new);
    }
    deltas.compact();
    deltas
}

// -------------------------------------------------- recursive workloads --

/// A random binary link graph: LINK(src, dst) over a small node domain, so
/// cycles and multi-hop chains are common.
pub fn random_link_db(seed: u64) -> Database {
    let mut rng = Rng(seed);
    let mut db = Database::new();
    let schema = Schema::from_pairs(&[("src", ValueType::Int), ("dst", ValueType::Int)]).unwrap();
    db.create_relation("LINK", schema).unwrap();
    let nodes = 2 + rng.below(7);
    let edges = rng.below(12);
    let rel = db.relation_mut("LINK").unwrap();
    for _ in 0..edges {
        let s = rng.below(nodes) as i64;
        let d = rng.below(nodes) as i64;
        let _ = rel.insert(tuple![s, d]);
    }
    db
}

/// A random edge insert/delete batch against LINK, returning the deltas.
/// `retract` enables deletions (retractions stress the circuit's
/// recompute-and-diff fixpoint path).
pub fn random_link_delta(rng: &mut Rng, db: &mut Database, retract: bool) -> DeltaSet {
    let mut deltas = DeltaSet::new();
    let name: Arc<str> = Arc::from("LINK");
    let rel = db.relation_mut("LINK").unwrap();
    for _ in 0..1 + rng.below(3) {
        let delete = retract && !rel.is_empty() && rng.chance(40);
        if delete {
            let victim = rng.below(rel.len());
            let (rid, t) = rel.iter().nth(victim).expect("victim in range");
            let t = t.clone();
            rel.delete(rid).unwrap();
            deltas.record_delete(&name, t);
        } else {
            let s = rng.below(8) as i64;
            let d = rng.below(8) as i64;
            if rel.insert(tuple![s, d]).is_ok() {
                deltas.record_insert(&name, tuple![s, d]);
            }
        }
    }
    deltas.compact();
    deltas
}

/// A random set-semantics `WITH RECURSIVE` query over LINK. Every shape
/// terminates on cyclic data (UNION, not UNION ALL) and is well-typed by
/// construction.
pub fn random_recursive_query(rng: &mut Rng) -> String {
    let step = *rng.pick(&[
        // Right-linear closure, aliased.
        "SELECT r.a, l.dst FROM R r JOIN LINK l ON r.b = l.src",
        // Right-linear closure, bare columns.
        "SELECT a, dst FROM R JOIN LINK ON b = src",
        // Left-linear closure.
        "SELECT l.src, r.b FROM LINK l JOIN R r ON l.dst = r.a",
        // Step-side filter.
        "SELECT r.a, l.dst FROM R r JOIN LINK l ON r.b = l.src WHERE l.dst <> 0",
        // Step-side projection twist (swap breaks monotone growth patterns).
        "SELECT b, a FROM R",
    ]);
    let base = *rng.pick(&[
        "SELECT src, dst FROM LINK",
        "SELECT src, dst FROM LINK WHERE src <> dst",
        "SELECT src, dst FROM LINK UNION SELECT dst, src FROM LINK",
    ]);
    let body = *rng.pick(&[
        "SELECT * FROM R",
        "SELECT a FROM R",
        "SELECT a, b FROM R WHERE a < 6",
        "SELECT a, COUNT(*) AS n FROM R GROUP BY a",
        "SELECT * FROM R UNION SELECT src, dst FROM LINK",
    ]);
    format!("WITH RECURSIVE R (a, b) AS ({base} UNION {step}) {body}")
}
