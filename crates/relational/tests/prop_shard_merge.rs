//! Multi-producer delta merging (the sharded-sampling merge point).
//!
//! Sharded sampling gives every shard its own `DeltaSet` producer over a
//! *disjoint* set of rows; `DeltaSet::merge_all` folds them into the one
//! interval delta the views consume. These properties pin the contract:
//! the merged delta is indistinguishable — through each of the four paper
//! queries' materialized views, and tuple-for-tuple in its Δ⁻/Δ⁺ sets —
//! from the delta one sequential recorder would have produced observing
//! the same interleaved mutations. Exact ± cancellation inside any single
//! producer stays invisible after the merge (the compact contract), and
//! no tuple is double counted when several producers touch one relation.

use fgdb_relational::algebra::paper_queries;
use fgdb_relational::{
    execute_simple, Database, DeltaSet, MaterializedView, Plan, RowId, Schema, Tuple, Value,
    ValueType, ViewBackend,
};
use proptest::prelude::*;
use std::sync::Arc;

const LABELS: [&str; 4] = ["O", "B-PER", "B-ORG", "B-LOC"];
const STRINGS: [&str; 5] = ["Bill", "said", "Boston", "Ann", "IBM"];

fn token_schema() -> Schema {
    Schema::from_pairs(&[
        ("tok_id", ValueType::Int),
        ("doc_id", ValueType::Int),
        ("string", ValueType::Str),
        ("label", ValueType::Str),
        ("truth", ValueType::Str),
    ])
    .unwrap()
    .with_primary_key("tok_id")
    .unwrap()
}

fn token_tuple(id: i64, doc: i64, s: usize, label: usize) -> Tuple {
    Tuple::new(vec![
        Value::Int(id),
        Value::Int(doc),
        Value::str(STRINGS[s % STRINGS.len()]),
        Value::str(LABELS[label % LABELS.len()]),
        Value::str(LABELS[label % LABELS.len()]),
    ])
}

/// One shard-local mutation. Indices are resolved against the shard's own
/// live-row list, so shards never touch each other's rows — the disjointness
/// the sharded sampler guarantees by construction.
#[derive(Debug, Clone)]
enum Step {
    Relabel { idx: usize, label: usize },
    Insert { doc: i64, s: usize, label: usize },
    Delete { idx: usize },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0usize..64, 0usize..4).prop_map(|(idx, label)| Step::Relabel { idx, label }),
        (0i64..4, 0usize..5, 0usize..4).prop_map(|(doc, s, label)| Step::Insert { doc, s, label }),
        (0usize..64).prop_map(|idx| Step::Delete { idx }),
    ]
}

/// One shard's mutable view of the database: the rows it owns and its
/// private tok_id namespace for inserts.
struct ShardState {
    rows: Vec<RowId>,
    next_id: i64,
}

fn apply_step(db: &mut Database, deltas: &mut DeltaSet, shard: &mut ShardState, step: &Step) {
    let rel_name: Arc<str> = Arc::from("TOKEN");
    let rel = db.relation_mut("TOKEN").unwrap();
    match step {
        Step::Relabel { idx, label } => {
            if shard.rows.is_empty() {
                return;
            }
            let rid = shard.rows[idx % shard.rows.len()];
            let (old, new) = rel
                .update_field(rid, 3, Value::str(LABELS[*label]))
                .unwrap();
            deltas.record_update(&rel_name, old, new);
        }
        Step::Insert { doc, s, label } => {
            let t = token_tuple(shard.next_id, *doc, *s, *label);
            shard.next_id += 1;
            shard.rows.push(rel.insert(t.clone()).unwrap());
            deltas.record_insert(&rel_name, t);
        }
        Step::Delete { idx } => {
            if shard.rows.is_empty() {
                return;
            }
            let rid = shard.rows.swap_remove(idx % shard.rows.len());
            let gone = rel.delete(rid).unwrap();
            deltas.record_delete(&rel_name, gone);
        }
    }
}

fn build_db(n_rows: usize) -> Database {
    let mut db = Database::new();
    db.create_relation("TOKEN", token_schema()).unwrap();
    let rel = db.relation_mut("TOKEN").unwrap();
    for i in 0..n_rows as i64 {
        rel.insert(token_tuple(i, i % 3, i as usize, i as usize))
            .unwrap();
    }
    db
}

/// Round-robin assignment of the seed rows to shards; each shard gets a
/// tok_id namespace far from the seed ids and from other shards.
fn shard_states(db: &Database, n_rows: usize, num_shards: usize) -> Vec<ShardState> {
    let rel = db.relation("TOKEN").unwrap();
    let rids: Vec<RowId> = rel.iter().map(|(rid, _)| rid).collect();
    assert_eq!(rids.len(), n_rows);
    (0..num_shards)
        .map(|s| ShardState {
            rows: rids
                .iter()
                .enumerate()
                .filter(|(i, _)| i % num_shards == s)
                .map(|(_, &rid)| rid)
                .collect(),
            next_id: (s as i64 + 1) * 10_000,
        })
        .collect()
}

/// One view per backend over the same plan and database: the merge-point
/// contract must hold for the legacy operator tree and the Z-set circuit
/// alike, and the two must agree with each other step for step.
fn both_views(plan: &Plan, db: &Database) -> Vec<(ViewBackend, MaterializedView)> {
    [ViewBackend::Legacy, ViewBackend::Circuit]
        .into_iter()
        .map(|b| (b, MaterializedView::with_backend(plan, db, b).unwrap()))
        .collect()
}

fn paper_plan(kind: u8) -> Plan {
    match kind % 4 {
        0 => paper_queries::query1("TOKEN"),
        1 => paper_queries::query2("TOKEN"),
        2 => paper_queries::query3("TOKEN"),
        _ => paper_queries::query4("TOKEN"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-shard delta producers merged with `merge_all` ≡ one sequential
    /// recorder observing the interleaved stream — through every paper
    /// query's materialized view and tuple-for-tuple in Δ⁻/Δ⁺.
    #[test]
    fn merged_shard_deltas_equal_a_sequential_recording(
        kind in 0u8..4,
        n_rows in 4usize..16,
        num_shards in 1usize..4,
        per_shard in prop::collection::vec(
            prop::collection::vec(step_strategy(), 0..16), 3),
    ) {
        let plan = paper_plan(kind);

        // Sequential reference: one recorder sees the shards' mutations
        // interleaved round-robin (any interleaving is equivalent — the
        // shards' row sets are disjoint).
        let mut db_seq = build_db(n_rows);
        let mut views_seq = both_views(&plan, &db_seq);
        let mut shards_seq = shard_states(&db_seq, n_rows, num_shards);
        let mut seq = DeltaSet::new();
        let longest = per_shard.iter().take(num_shards).map(Vec::len).max().unwrap_or(0);
        for round in 0..longest {
            for s in 0..num_shards {
                if let Some(step) = per_shard[s].get(round) {
                    apply_step(&mut db_seq, &mut seq, &mut shards_seq[s], step);
                }
            }
        }
        seq.compact();
        for (_, view) in &mut views_seq {
            view.apply_delta(&seq);
        }

        // Sharded run: each shard records into its own DeltaSet (shard-major
        // application order — cross-shard order cannot matter), then the
        // merge point folds the producers.
        let mut db_sh = build_db(n_rows);
        let mut views_sh = both_views(&plan, &db_sh);
        let mut shards_sh = shard_states(&db_sh, n_rows, num_shards);
        let mut producers = Vec::new();
        for s in 0..num_shards {
            let mut d = DeltaSet::new();
            for step in &per_shard[s] {
                apply_step(&mut db_sh, &mut d, &mut shards_sh[s], step);
            }
            producers.push(d);
        }
        let merged = DeltaSet::merge_all(producers);
        for (_, view) in &mut views_sh {
            view.apply_delta(&merged);
        }

        // Tuple-for-tuple: no double counting across producers, and
        // intra-producer cancellation stays invisible after the merge.
        prop_assert_eq!(merged.added("TOKEN"), seq.added("TOKEN"));
        prop_assert_eq!(merged.removed("TOKEN"), seq.removed("TOKEN"));
        prop_assert_eq!(merged.is_empty(), seq.is_empty());

        // Every backend's view agrees with a from-scratch recomputation on
        // the final database state, and sharded ≡ sequential per backend.
        let fresh = execute_simple(&plan, &db_seq).unwrap();
        for ((backend, view_seq), (_, view_sh)) in views_seq.iter().zip(&views_sh) {
            prop_assert_eq!(
                view_seq.result().sorted_entries(),
                fresh.rows.sorted_entries(),
                "{:?} sequential view diverged from recomputation", backend
            );
            prop_assert_eq!(
                view_sh.result().sorted_entries(),
                view_seq.result().sorted_entries(),
                "{:?} merged shard deltas diverged from the sequential recording", backend
            );
        }
        // And the two backends emitted identical final answers.
        prop_assert_eq!(
            views_seq[0].1.result().sorted_entries(),
            views_seq[1].1.result().sorted_entries(),
            "legacy and circuit diverged"
        );
    }

    /// A producer whose effects fully cancel (A→B→A on every touched row)
    /// contributes nothing observable to the merged delta.
    #[test]
    fn fully_cancelled_producers_vanish_in_the_merge(
        n_rows in 2usize..10,
        labels in prop::collection::vec(1usize..4, 1..6),
    ) {
        let mut db = build_db(n_rows);
        let rel_name: Arc<str> = Arc::from("TOKEN");
        let rids: Vec<RowId> = db
            .relation("TOKEN")
            .unwrap()
            .iter()
            .map(|(rid, _)| rid)
            .collect();

        // Producer 0 relabels rows away and back; producer 1 is empty.
        let mut d0 = DeltaSet::new();
        for (i, &label) in labels.iter().enumerate() {
            let rid = rids[i % rids.len()];
            let rel = db.relation_mut("TOKEN").unwrap();
            let (old, mid) = rel
                .update_field(rid, 3, Value::str(LABELS[label]))
                .unwrap();
            d0.record_update(&rel_name, old.clone(), mid.clone());
            let (_, back) = rel.update_field(rid, 3, old.get(3).clone()).unwrap();
            d0.record_update(&rel_name, mid, back);
        }
        let merged = DeltaSet::merge_all(vec![d0, DeltaSet::new()]);
        prop_assert!(merged.is_empty(), "cancelled producer leaked: {merged:?}");
        prop_assert_eq!(merged.relations().count(), 0);
    }
}
