//! Differential property suite for the Z-set circuit backend.
//!
//! Three independent implementations of every query must agree on every
//! database and every delta stream:
//!
//! * the **circuit** ([`ViewBackend::Circuit`]) maintaining incrementally,
//! * the **legacy** operator-tree view ([`ViewBackend::Legacy`]),
//! * **naive re-execution** of the unoptimized plan from scratch.
//!
//! Random well-typed SQL reuses the planner suite's generators; recursive
//! queries additionally check the semi-naive frontier iteration against the
//! executor's iterated-naive fixpoint and incremental maintenance against
//! from-scratch recompilation. Hostile recursion must surface typed
//! [`CircuitError`]s — never a panic, unbounded loop, or OOM.

mod common;

use common::{
    random_db, random_delta, random_link_db, random_link_delta, random_query,
    random_recursive_query, Rng,
};
use fgdb_relational::parser;
use fgdb_relational::planner::optimize;
use fgdb_relational::{
    execute, tuple, Circuit, CircuitError, Database, DeltaSet, MaterializedView, Schema, Value,
    ValueType, ViewBackend,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Drives one SQL query through both view backends and naive re-execution
/// under `rounds` random TOKEN delta batches, asserting three-way agreement
/// on every step — including the emitted per-batch deltas.
fn check_differential(sql: &str, mut db: Database, rng: &mut Rng, rounds: usize) {
    let naive = parser::parse_plan(sql).unwrap_or_else(|e| panic!("`{sql}`: {e}"));
    let opt = optimize(&naive, &db).unwrap();
    let mut legacy = MaterializedView::with_backend(&opt, &db, ViewBackend::Legacy)
        .unwrap_or_else(|e| panic!("legacy `{sql}`: {e}"));
    let mut circuit = MaterializedView::with_backend(&opt, &db, ViewBackend::Circuit)
        .unwrap_or_else(|e| panic!("circuit `{sql}`: {e}"));
    assert_eq!(legacy.columns(), circuit.columns(), "`{sql}`");
    for round in 0..rounds {
        let deltas = random_delta(rng, &mut db);
        let d_legacy = legacy.apply_delta(&deltas);
        let d_circuit = circuit
            .try_apply_delta(&deltas)
            .unwrap_or_else(|e| panic!("circuit apply `{sql}`: {e}"));
        assert_eq!(
            d_legacy.sorted_entries(),
            d_circuit.sorted_entries(),
            "emitted deltas diverged on round {round} for `{sql}`"
        );
        let fresh = execute(&naive, &db).unwrap().0;
        assert_eq!(
            circuit.result().sorted_entries(),
            fresh.rows.sorted_entries(),
            "circuit diverged from naive re-execution on round {round} for `{sql}`"
        );
        assert_eq!(
            legacy.result().sorted_entries(),
            circuit.result().sorted_entries(),
            "legacy and circuit results diverged on round {round} for `{sql}`"
        );
    }
}

/// A small database with a guaranteed cycle (for divergence tests).
fn cyclic_link_db() -> Database {
    let mut db = Database::new();
    let schema = Schema::from_pairs(&[("src", ValueType::Int), ("dst", ValueType::Int)]).unwrap();
    db.create_relation("LINK", schema).unwrap();
    let rel = db.relation_mut("LINK").unwrap();
    for (s, d) in [(0i64, 1i64), (1, 2), (2, 0)] {
        rel.insert(tuple![s, d]).unwrap();
    }
    db
}

proptest! {
    /// Circuit ≡ legacy ≡ naive re-execution on random non-recursive SQL —
    /// every operator (σ π × ⋈ γ δ ∪ ∖ ∩), random coalesced delta streams.
    #[test]
    fn circuit_matches_legacy_and_naive_on_random_sql(seed in 0u64..1u64 << 48) {
        let db = random_db(seed);
        let mut rng = Rng(seed ^ 0xC1C0);
        let sql = random_query(&mut rng);
        check_differential(&sql, db, &mut rng, 4);
    }

    /// The paper's four queries get the same treatment (these four back the
    /// committed bench baselines, so they deserve their own regression).
    #[test]
    fn circuit_matches_legacy_on_paper_queries(seed in 0u64..1u64 << 48) {
        use fgdb_relational::parser::paper_sql;
        let mut rng = Rng(seed ^ 0x9A9E);
        for sql in [
            paper_sql::query1("TOKEN"),
            paper_sql::query2("TOKEN"),
            paper_sql::query3("TOKEN"),
            paper_sql::query4("TOKEN"),
        ] {
            check_differential(&sql, random_db(seed), &mut rng, 3);
        }
    }

    /// Recursive closure under edge churn (inserts *and* retractions):
    /// incremental circuit maintenance ≡ naive re-execution ≡ compiling a
    /// fresh circuit from the mutated database.
    #[test]
    fn recursive_views_track_edge_churn(seed in 0u64..1u64 << 48) {
        let mut db = random_link_db(seed);
        let mut rng = Rng(seed ^ 0x4EC);
        let sql = random_recursive_query(&mut rng);
        let naive = parser::parse_plan(&sql).unwrap_or_else(|e| panic!("`{sql}`: {e}"));
        let opt = optimize(&naive, &db).unwrap();
        let mut view = MaterializedView::new(&opt, &db)
            .unwrap_or_else(|e| panic!("compile `{sql}`: {e}"));
        prop_assert_eq!(view.backend(), ViewBackend::Circuit, "recursive plans force the circuit");
        for round in 0..5 {
            let deltas = random_link_delta(&mut rng, &mut db, true);
            view.try_apply_delta(&deltas)
                .unwrap_or_else(|e| panic!("apply `{sql}`: {e}"));
            let fresh = execute(&naive, &db).unwrap().0;
            prop_assert_eq!(
                view.result().sorted_entries(),
                fresh.rows.sorted_entries(),
                "incremental diverged from re-execution on round {} for `{}`", round, sql
            );
            let scratch = Circuit::new(&opt, &db).unwrap();
            prop_assert_eq!(
                view.result().sorted_entries(),
                scratch.result().sorted_entries(),
                "incremental diverged from from-scratch circuit on round {} for `{}`", round, sql
            );
        }
    }

    /// Insert-only streams on monotone closures take the semi-naive frontier
    /// path (zero recomputes) and still match the executor's iterated-naive
    /// oracle exactly.
    #[test]
    fn semi_naive_matches_iterated_naive_on_insert_streams(seed in 0u64..1u64 << 48) {
        let mut db = random_link_db(seed);
        let mut rng = Rng(seed ^ 0x5EA1);
        let sql = "WITH RECURSIVE R (a, b) AS \
                   (SELECT src, dst FROM LINK \
                    UNION SELECT r.a, l.dst FROM R r JOIN LINK l ON r.b = l.src) \
                   SELECT * FROM R";
        let naive = parser::parse_plan(sql).unwrap();
        let opt = optimize(&naive, &db).unwrap();
        let mut view = MaterializedView::new(&opt, &db).unwrap();
        for _ in 0..5 {
            let deltas = random_link_delta(&mut rng, &mut db, false);
            view.try_apply_delta(&deltas).unwrap();
            let fresh = execute(&naive, &db).unwrap().0;
            prop_assert_eq!(
                view.result().sorted_entries(),
                fresh.rows.sorted_entries()
            );
        }
        let stats = view.circuit_stats().expect("circuit backend");
        prop_assert_eq!(
            stats.fixpoint_recomputes, 0,
            "insert-only monotone maintenance must stay semi-naive"
        );
    }

    /// Hostile recursive SQL — self-joins in the recursive term, non-linear
    /// recursion, unbounded bag closure on cycles, shadowed relations —
    /// surfaces typed errors; it never panics, spins, or exhausts memory.
    #[test]
    fn hostile_recursion_yields_typed_errors(seed in 0u64..1u64 << 48) {
        let db = cyclic_link_db();
        let mut rng = Rng(seed);

        // Non-linear: the step references R twice (a self-join on R).
        let non_linear = "WITH RECURSIVE R (a, b) AS \
            (SELECT src, dst FROM LINK \
             UNION SELECT r1.a, r2.b FROM R r1 JOIN R r2 ON r1.b = r2.a) \
            SELECT * FROM R";
        let plan = parser::parse_plan(non_linear).unwrap();
        match MaterializedView::new(&plan, &db).err() {
            Some(CircuitError::NonLinearRecursion { name }) => prop_assert_eq!(&*name, "R"),
            other => panic!("expected NonLinearRecursion, got {other:?}"),
        }

        // Unbounded bag accumulation on a cyclic graph hits the cap.
        let divergent = "WITH RECURSIVE R (a, b) AS \
            (SELECT src, dst FROM LINK \
             UNION ALL SELECT r.a, l.dst FROM R r JOIN LINK l ON r.b = l.src) \
            SELECT * FROM R";
        let plan = parser::parse_plan(divergent).unwrap().with_fixpoint_cap(64);
        match MaterializedView::new(&plan, &db).err() {
            Some(CircuitError::IterationLimit { cap }) => prop_assert_eq!(cap, 64),
            other => panic!("expected IterationLimit, got {other:?}"),
        }

        // A CTE shadowing a stored relation is rejected at compile time.
        let shadowed = "WITH RECURSIVE LINK (a, b) AS \
            (SELECT src, dst FROM LINK \
             UNION SELECT r.a, l.dst FROM LINK r JOIN LINK l ON r.b = l.src) \
            SELECT * FROM LINK";
        // The parser substitutes every LINK reference, so this either fails
        // at parse (base references the CTE) or downstream as a typed error;
        // nothing may panic.
        if let Ok(plan) = parser::parse_plan(shadowed) {
            prop_assert!(MaterializedView::new(&plan, &db).is_err());
        }

        // Set-semantics closure on the same cycle terminates fine and keeps
        // terminating under random insert churn near the cycle.
        let closure = "WITH RECURSIVE R (a, b) AS \
            (SELECT src, dst FROM LINK \
             UNION SELECT r.a, l.dst FROM R r JOIN LINK l ON r.b = l.src) \
            SELECT * FROM R";
        let plan = parser::parse_plan(closure).unwrap();
        let mut db = db;
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        for _ in 0..3 {
            let deltas = random_link_delta(&mut rng, &mut db, true);
            view.try_apply_delta(&deltas).unwrap();
        }
        prop_assert!(view.result().distinct_len() <= 9 * 9);
    }

    /// Mutation fuzz over the `WITH RECURSIVE` grammar: truncations and
    /// hostile splices of valid recursive queries never panic anywhere in
    /// parse → lower → optimize → compile → maintain.
    #[test]
    fn mutated_recursive_sql_never_panics(seed in 0u64..1u64 << 48) {
        let mut rng = Rng(seed);
        let base = random_recursive_query(&mut rng);
        let cut = rng.below(base.len().max(1));
        let prefix: String = base.chars().take(cut).collect();
        let alphabet = ['(', ')', '\'', ',', '=', 'R', 'S', '9', ' ', '*', 'W', 'I', 'T', 'H'];
        let junk: String = (0..rng.below(24)).map(|_| *rng.pick(&alphabet)).collect();
        for sql in [prefix.clone(), format!("{prefix}{junk}"), format!("{junk}{base}")] {
            let Ok(ast) = parser::parse(&sql) else { continue };
            let printed = ast.to_string();
            prop_assert_eq!(&ast, &parser::parse(&printed).unwrap(), "`{}`", printed);
            let Ok(plan) = ast.to_plan() else { continue };
            let mut db = random_link_db(seed ^ 1);
            let Ok(opt) = optimize(&plan, &db) else { continue };
            let Ok(mut view) = MaterializedView::new(&opt, &db) else { continue };
            let deltas = random_link_delta(&mut rng, &mut db, true);
            // Typed errors are fine; panics are not.
            let _ = view.try_apply_delta(&deltas);
        }
    }

    /// A retraction the view never saw inserted must surface as a typed
    /// inconsistency through δ/γ state — and poison the infallible path
    /// rather than corrupt it.
    #[test]
    fn phantom_retraction_is_a_typed_error(seed in 0u64..1u64 << 48) {
        let db = random_db(seed);
        let plan = parser::parse_plan("SELECT DISTINCT string FROM TOKEN").unwrap();
        let opt = optimize(&plan, &db).unwrap();
        let mut view = MaterializedView::with_backend(&opt, &db, ViewBackend::Circuit).unwrap();
        let mut deltas = DeltaSet::new();
        deltas.record_delete(
            &Arc::from("TOKEN"),
            tuple![99_999i64, 0i64, "ghost", "O", "O", Value::Null],
        );
        let err = view.try_apply_delta(&deltas).unwrap_err();
        prop_assert!(
            matches!(err, CircuitError::InconsistentDelta(_)),
            "got {:?}", err
        );
        // The infallible wrapper parks the same error instead of panicking.
        let mut view = MaterializedView::with_backend(&opt, &db, ViewBackend::Circuit).unwrap();
        let emitted = view.apply_delta(&deltas);
        prop_assert!(emitted.is_empty());
        prop_assert!(view.error().is_some());
    }
}
