//! Batching invariance for delta application (§4.2 of the paper).
//!
//! The MCMC bridge coalesces the net changes of a whole thinning interval
//! into one `DeltaSet` before the views consume it. These properties pin
//! down that this batching is *semantically free*: applying one coalesced
//! interval-end delta to each of the four paper queries' views yields
//! exactly the same answer as applying every per-step delta individually —
//! and both match a from-scratch recomputation.

use fgdb_relational::algebra::paper_queries;
use fgdb_relational::{
    execute_simple, Database, DeltaSet, MaterializedView, Plan, Schema, Tuple, Value, ValueType,
};
use proptest::prelude::*;
use std::sync::Arc;

const LABELS: [&str; 4] = ["O", "B-PER", "B-ORG", "B-LOC"];
const STRINGS: [&str; 5] = ["Bill", "said", "Boston", "Ann", "IBM"];

fn token_schema() -> Schema {
    Schema::from_pairs(&[
        ("tok_id", ValueType::Int),
        ("doc_id", ValueType::Int),
        ("string", ValueType::Str),
        ("label", ValueType::Str),
        ("truth", ValueType::Str),
    ])
    .unwrap()
    .with_primary_key("tok_id")
    .unwrap()
}

fn token_tuple(id: i64, doc: i64, s: usize, label: usize) -> Tuple {
    Tuple::new(vec![
        Value::Int(id),
        Value::Int(doc),
        Value::str(STRINGS[s % STRINGS.len()]),
        Value::str(LABELS[label % LABELS.len()]),
        Value::str(LABELS[label % LABELS.len()]),
    ])
}

fn build_db(n_rows: usize) -> Database {
    let mut db = Database::new();
    db.create_relation("TOKEN", token_schema()).unwrap();
    let rel = db.relation_mut("TOKEN").unwrap();
    for i in 0..n_rows as i64 {
        rel.insert(token_tuple(i, i % 3, i as usize, i as usize))
            .unwrap();
    }
    db
}

/// One simulated MCMC step's worth of base-table mutation.
#[derive(Debug, Clone)]
enum Step {
    Relabel { row: usize, label: usize },
    Insert { doc: i64, s: usize, label: usize },
    Delete { row: usize },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0usize..64, 0usize..4).prop_map(|(row, label)| Step::Relabel { row, label }),
        (0i64..4, 0usize..5, 0usize..4).prop_map(|(doc, s, label)| Step::Insert { doc, s, label }),
        (0usize..64).prop_map(|row| Step::Delete { row }),
    ]
}

/// Applies `step` to `db`, recording its delta into `deltas`.
fn apply_step(db: &mut Database, deltas: &mut DeltaSet, step: &Step, next_id: &mut i64) {
    let rel_name: Arc<str> = Arc::from("TOKEN");
    let rel = db.relation_mut("TOKEN").unwrap();
    match step {
        Step::Relabel { row, label } => {
            let live: Vec<_> = rel.iter().map(|(rid, _)| rid).collect();
            if live.is_empty() {
                return;
            }
            let rid = live[row % live.len()];
            let (old, new) = rel
                .update_field(rid, 3, Value::str(LABELS[*label]))
                .unwrap();
            deltas.record_update(&rel_name, old, new);
        }
        Step::Insert { doc, s, label } => {
            let t = token_tuple(*next_id, *doc, *s, *label);
            *next_id += 1;
            rel.insert(t.clone()).unwrap();
            deltas.record_insert(&rel_name, t);
        }
        Step::Delete { row } => {
            let live: Vec<_> = rel.iter().map(|(rid, _)| rid).collect();
            if live.is_empty() {
                return;
            }
            let rid = live[row % live.len()];
            let gone = rel.delete(rid).unwrap();
            deltas.record_delete(&rel_name, gone);
        }
    }
}

fn paper_plan(kind: u8) -> Plan {
    match kind % 4 {
        0 => paper_queries::query1("TOKEN"),
        1 => paper_queries::query2("TOKEN"),
        2 => paper_queries::query3("TOKEN"),
        _ => paper_queries::query4("TOKEN"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One coalesced interval-end delta ≡ the same steps applied one by one,
    /// for each of the four paper queries.
    #[test]
    fn batched_delta_equals_per_step_deltas(
        kind in 0u8..4,
        n_rows in 4usize..20,
        steps in prop::collection::vec(step_strategy(), 1..30),
    ) {
        let plan = paper_plan(kind);

        // Per-step evaluator: its view consumes one DeltaSet per step.
        let mut db_step = build_db(n_rows);
        let mut view_step = MaterializedView::new(&plan, &db_step).unwrap();
        // Batched evaluator: an identical database evolves identically, but
        // its view consumes one merged interval-end DeltaSet.
        let mut db_batch = build_db(n_rows);
        let mut view_batch = MaterializedView::new(&plan, &db_batch).unwrap();

        let mut interval = DeltaSet::new();
        let (mut id_a, mut id_b) = (n_rows as i64, n_rows as i64);
        for step in &steps {
            let mut d = DeltaSet::new();
            apply_step(&mut db_step, &mut d, step, &mut id_a);
            view_step.apply_delta(&d);

            let mut d2 = DeltaSet::new();
            apply_step(&mut db_batch, &mut d2, step, &mut id_b);
            interval.merge(&d2);
        }
        interval.compact();
        view_batch.apply_delta(&interval);

        let fresh = execute_simple(&plan, &db_step).unwrap();
        prop_assert_eq!(
            view_step.result().sorted_entries(),
            fresh.rows.sorted_entries(),
            "per-step view diverged from recomputation"
        );
        prop_assert_eq!(
            view_batch.result().sorted_entries(),
            view_step.result().sorted_entries(),
            "batched interval delta diverged from per-step application"
        );
    }

    /// Coalescing never inflates |Δ|: the merged interval delta is at most
    /// as large as the sum of the per-step deltas (cancellation only
    /// shrinks it), and record operations never require a compaction scan
    /// for correctness of any read accessor.
    #[test]
    fn coalesced_magnitude_is_bounded_by_per_step_sum(
        n_rows in 4usize..12,
        steps in prop::collection::vec(step_strategy(), 1..30),
    ) {
        let mut db = build_db(n_rows);
        let mut interval = DeltaSet::new();
        let mut per_step_total = 0usize;
        let mut next_id = n_rows as i64;
        for step in &steps {
            let mut d = DeltaSet::new();
            apply_step(&mut db, &mut d, step, &mut next_id);
            per_step_total += d.magnitude();
            interval.merge(&d);
        }
        prop_assert!(interval.magnitude() <= per_step_total);
        // Reads agree before and after the interval-boundary compaction.
        let before = interval.magnitude();
        let empty_before = interval.is_empty();
        interval.compact();
        prop_assert_eq!(interval.magnitude(), before);
        prop_assert_eq!(interval.is_empty(), empty_before);
    }
}
