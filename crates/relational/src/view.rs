//! Incrementally maintained materialized views — Algorithm 1's engine.
//!
//! §4.2 of the paper: rather than re-running the query over each sampled
//! world, the answer is maintained under the world deltas produced by MCMC,
//! following Blakeley et al.'s view maintenance with multiset (counted)
//! semantics:
//!
//! ```text
//! Q(w') = Q(w) − Q'(w, Δ⁻) ∪ Q'(w, Δ⁺)                 (Eq. 6)
//! σ(w')   ≡ σ(w) − σ(Δ⁻) ∪ σ(Δ⁺)
//! w'.R₁ × w'.R₂ ≡ w.R₁ × w.R₂ − w.R₁ × Δ⁻.R₂ ∪ w.R₁ × Δ⁺.R₂
//! ```
//!
//! A [`MaterializedView`] compiles a [`Plan`] into a tree of stateful
//! operator nodes. Feeding it a [`DeltaSet`] propagates *signed counted
//! deltas* bottom-up and returns the delta of the answer set; the cost is
//! proportional to |Δ| (and the fan-out of joins touched), never to |w|.
//!
//! Supported operators: σ, π (multiset), ×, equi-⋈, γ (COUNT / filtered
//! COUNT / SUM / MIN / MAX, grouped or global), δ (distinct), ∪ (bag
//! union), ∖ (monus difference), ∩ (bag intersection). This covers all four
//! evaluation queries of §5 — including the aggregate queries the paper
//! highlights as trivially handled by sampling evaluation — and the full
//! algebra beyond them.
//!
//! # Example
//!
//! ```
//! use fgdb_relational::{
//!     tuple, Database, DeltaSet, Expr, MaterializedView, Plan, Schema, Value, ValueType,
//! };
//! use std::sync::Arc;
//!
//! let mut db = Database::new();
//! let schema = Schema::from_pairs(&[("id", ValueType::Int), ("label", ValueType::Str)])
//!     .unwrap();
//! db.create_relation("TOKEN", schema).unwrap();
//! db.relation_mut("TOKEN").unwrap().insert(tuple![1i64, "B-PER"]).unwrap();
//!
//! // Materialize σ(label = 'B-PER') and maintain it under a delta.
//! let plan = Plan::scan("TOKEN").filter(Expr::col("label").eq(Expr::lit("B-PER")));
//! let mut view = MaterializedView::new(&plan, &db).unwrap();
//! assert_eq!(view.result().total(), 1);
//!
//! let rel: Arc<str> = Arc::from("TOKEN");
//! let mut delta = DeltaSet::new();
//! delta.record_update(&rel, tuple![1i64, "B-PER"], tuple![1i64, "O"]);
//! view.apply_delta(&delta); // Θ(|Δ|), not Θ(|w|)
//! assert_eq!(view.result().total(), 0);
//! ```

use crate::algebra::{Plan, PlanError};
use crate::circuit::{Circuit, CircuitError, CircuitStats};
use crate::counted::CountedSet;
use crate::database::Database;
use crate::delta::DeltaSet;
use crate::exec::{bind_aggs, join_key_indices, AggAcc, AggSpec, ExecError};
use crate::expr::{resolve_column, BoundExpr};
use crate::fasthash::TupleMap;
use crate::tuple::{fingerprint_values, Tuple};
use crate::value::Value;
use std::sync::Arc;

/// Work counters for view maintenance (the |Δ|-proportional analogue of
/// [`crate::exec::ExecStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Delta batches applied.
    pub deltas_applied: u64,
    /// Delta rows processed across all operator nodes.
    pub delta_rows_processed: u64,
    /// Base tuples read during initialization (one full evaluation).
    pub init_tuples_scanned: u64,
}

/// Which maintenance engine services a [`MaterializedView`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ViewBackend {
    /// The original per-node operator tree. Battle-tested, but cannot
    /// express recursive plans and silently absorbs inconsistent deltas.
    Legacy,
    /// The Z-set operator circuit ([`crate::circuit`]): same incremental
    /// contract, plus recursion ([`Plan::Fixpoint`]) and typed errors.
    #[default]
    Circuit,
}

impl ViewBackend {
    /// Backend selection from the environment: `FGDB_VIEW_BACKEND=legacy`
    /// opts out of circuits; anything else (or unset) selects the circuit
    /// backend. Recursive plans always use circuits regardless.
    pub fn from_env() -> ViewBackend {
        match std::env::var("FGDB_VIEW_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("legacy") => ViewBackend::Legacy,
            _ => ViewBackend::Circuit,
        }
    }
}

/// A query answer maintained incrementally under world deltas, serviced by
/// either maintenance engine behind one registration API (the transition
/// selector the circuit rollout ships behind).
pub struct MaterializedView {
    inner: ViewImpl,
    poisoned: Option<CircuitError>,
}

enum ViewImpl {
    Legacy(LegacyView),
    Circuit(Circuit),
}

impl MaterializedView {
    /// Compiles `plan` and runs the one-time full evaluation over the
    /// initial world `w₀` (Algorithm 1 line 2: "run full query to get
    /// initial results"). The backend comes from [`ViewBackend::from_env`];
    /// recursive plans force the circuit backend.
    pub fn new(plan: &Plan, db: &Database) -> Result<Self, CircuitError> {
        let backend = if plan.is_recursive() {
            ViewBackend::Circuit
        } else {
            ViewBackend::from_env()
        };
        Self::with_backend(plan, db, backend)
    }

    /// Compiles `plan` on an explicitly chosen backend. Selecting
    /// [`ViewBackend::Legacy`] for a recursive plan is a typed error.
    pub fn with_backend(
        plan: &Plan,
        db: &Database,
        backend: ViewBackend,
    ) -> Result<Self, CircuitError> {
        let inner = match backend {
            ViewBackend::Legacy => ViewImpl::Legacy(LegacyView::new(plan, db)?),
            ViewBackend::Circuit => ViewImpl::Circuit(Circuit::new(plan, db)?),
        };
        Ok(MaterializedView {
            inner,
            poisoned: None,
        })
    }

    /// The engine servicing this view.
    pub fn backend(&self) -> ViewBackend {
        match &self.inner {
            ViewImpl::Legacy(_) => ViewBackend::Legacy,
            ViewImpl::Circuit(_) => ViewBackend::Circuit,
        }
    }

    /// Applies a world delta, updating the maintained answer and returning
    /// the answer's own signed delta (what Algorithm 1 line 5 consumes).
    ///
    /// A delta disjoint from the view's source relations short-circuits at
    /// the root: no operator recursion, no per-node allocation. A circuit
    /// error (inconsistent stream, iteration cap) poisons the view — see
    /// [`MaterializedView::error`] — and yields an empty delta; callers
    /// that need the typed error use [`MaterializedView::try_apply_delta`].
    pub fn apply_delta(&mut self, deltas: &DeltaSet) -> CountedSet {
        match self.try_apply_delta(deltas) {
            Ok(out) => out,
            Err(e) => {
                self.poisoned = Some(e);
                CountedSet::new()
            }
        }
    }

    /// Fallible delta application: the circuit backend's typed errors
    /// propagate instead of poisoning the view silently. The legacy
    /// backend is infallible.
    pub fn try_apply_delta(&mut self, deltas: &DeltaSet) -> Result<CountedSet, CircuitError> {
        match &mut self.inner {
            ViewImpl::Legacy(v) => Ok(v.apply_delta(deltas)),
            ViewImpl::Circuit(c) => c.apply_delta(deltas),
        }
    }

    /// The first error that poisoned this view via
    /// [`MaterializedView::apply_delta`], if any. A poisoned view's answer
    /// is no longer trustworthy and should be rebuilt.
    pub fn error(&self) -> Option<&CircuitError> {
        self.poisoned.as_ref()
    }

    /// The current maintained answer multiset.
    pub fn result(&self) -> &CountedSet {
        match &self.inner {
            ViewImpl::Legacy(v) => &v.result,
            ViewImpl::Circuit(c) => c.result(),
        }
    }

    /// Output column names.
    pub fn columns(&self) -> &[Arc<str>] {
        match &self.inner {
            ViewImpl::Legacy(v) => &v.columns,
            ViewImpl::Circuit(c) => c.columns(),
        }
    }

    /// Base relations this view reads (sorted, deduplicated). Deltas
    /// disjoint from this set are guaranteed no-ops.
    pub fn source_relations(&self) -> &[Arc<str>] {
        match &self.inner {
            ViewImpl::Legacy(v) => &v.root.sources,
            ViewImpl::Circuit(c) => c.source_relations(),
        }
    }

    /// Work counters (backend-agnostic subset).
    pub fn stats(&self) -> ViewStats {
        match &self.inner {
            ViewImpl::Legacy(v) => v.stats,
            ViewImpl::Circuit(c) => {
                let s = c.stats();
                ViewStats {
                    deltas_applied: s.deltas_applied,
                    delta_rows_processed: s.delta_rows_processed,
                    init_tuples_scanned: s.init_tuples_scanned,
                }
            }
        }
    }

    /// Circuit-specific counters (recursion iterations, rebuilds) when the
    /// circuit backend services this view.
    pub fn circuit_stats(&self) -> Option<CircuitStats> {
        match &self.inner {
            ViewImpl::Legacy(_) => None,
            ViewImpl::Circuit(c) => Some(c.stats()),
        }
    }
}

/// The original operator-tree engine (see module docs).
struct LegacyView {
    root: Node,
    result: CountedSet,
    columns: Vec<Arc<str>>,
    stats: ViewStats,
}

impl LegacyView {
    fn new(plan: &Plan, db: &Database) -> Result<Self, CircuitError> {
        let columns = plan.output_columns(db)?;
        let mut root = compile(plan, db)?;
        let mut stats = ViewStats::default();
        let result = root.init(db, &mut stats).map_err(CircuitError::Exec)?;
        Ok(LegacyView {
            root,
            result,
            columns,
            stats,
        })
    }

    fn apply_delta(&mut self, deltas: &DeltaSet) -> CountedSet {
        self.stats.deltas_applied += 1;
        let out = self
            .root
            .apply(deltas, &mut self.stats.delta_rows_processed)
            .into_counted();
        self.result.merge(&out);
        out
    }
}

/// A stateful operator node: the operator itself plus the set of base
/// relations its subtree reads. The source set is what lets `apply`
/// short-circuit — a delta disjoint from a subtree's sources can touch
/// nothing below it, so the node returns an empty output delta without
/// recursing or allocating.
struct Node {
    op: Op,
    /// Sorted, deduplicated base relations read by this subtree.
    sources: Vec<Arc<str>>,
}

/// This node's output delta for one batch. `Borrowed` lets a `Scan` hand
/// the per-relation delta straight through without cloning it; `Empty`
/// is the zero-allocation result of a short-circuited subtree.
enum DeltaOut<'a> {
    Empty,
    Borrowed(&'a CountedSet),
    Owned(CountedSet),
}

impl<'a> DeltaOut<'a> {
    fn as_set(&self) -> Option<&CountedSet> {
        match self {
            DeltaOut::Empty => None,
            DeltaOut::Borrowed(s) => Some(s),
            DeltaOut::Owned(s) => Some(s),
        }
    }

    fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.as_set().map(CountedSet::iter).into_iter().flatten()
    }

    fn count(&self, t: &Tuple) -> i64 {
        self.as_set().map_or(0, |s| s.count(t))
    }

    fn distinct_len(&self) -> usize {
        self.as_set().map_or(0, CountedSet::distinct_len)
    }

    fn into_counted(self) -> CountedSet {
        match self {
            DeltaOut::Empty => CountedSet::new(),
            DeltaOut::Borrowed(s) => s.clone(),
            DeltaOut::Owned(s) => s,
        }
    }
}

/// The operator kinds.
#[allow(clippy::enum_variant_names)] // `SetOp` is the standard algebra term
enum Op {
    Scan {
        relation: Arc<str>,
    },
    Select {
        child: Box<Node>,
        pred: BoundExpr,
    },
    Project {
        child: Box<Node>,
        indices: Vec<usize>,
    },
    Product {
        left: Box<Node>,
        right: Box<Node>,
        left_state: CountedSet,
        right_state: CountedSet,
    },
    Join {
        left: Box<Node>,
        right: Box<Node>,
        lk: Vec<usize>,
        rk: Vec<usize>,
        /// Join key → multiset of tuples with that key, addressed by the
        /// key's fingerprint so per-row probes allocate nothing.
        left_state: TupleMap<CountedSet>,
        right_state: TupleMap<CountedSet>,
        /// Reusable key-projection buffer.
        scratch: Vec<Value>,
    },
    Aggregate {
        child: Box<Node>,
        group_idx: Vec<usize>,
        specs: Vec<AggSpec>,
        groups: TupleMap<GroupState>,
        /// Reusable group-key projection buffer.
        scratch: Vec<Value>,
        /// Reusable per-batch map of touched groups → pre-batch output.
        touched: TupleMap<Option<Tuple>>,
        /// Reusable output-row assembly buffer.
        row_buf: Vec<Value>,
    },
    Distinct {
        child: Box<Node>,
        state: CountedSet,
    },
    /// UNION ALL: multiplicities add — linear, stateless.
    Union {
        left: Box<Node>,
        right: Box<Node>,
    },
    /// Bag difference/intersection are *not* linear (monus/min), so both
    /// input multisets are retained and touched tuples re-derived.
    SetOp {
        left: Box<Node>,
        right: Box<Node>,
        kind: SetOpKind,
        left_state: CountedSet,
        right_state: CountedSet,
    },
}

#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum SetOpKind {
    Difference,
    Intersect,
}

impl SetOpKind {
    /// Output multiplicity of a tuple given its input multiplicities.
    pub(crate) fn out_count(self, l: i64, r: i64) -> i64 {
        match self {
            SetOpKind::Difference => (l - r).max(0),
            SetOpKind::Intersect => l.min(r).max(0),
        }
    }
}

pub(crate) struct GroupState {
    /// Total input multiplicity in the group (existence test: n > 0, except
    /// the global group which always exists).
    pub(crate) n: i64,
    pub(crate) accs: Vec<AggAcc>,
}

impl GroupState {
    pub(crate) fn new(specs: &[AggSpec]) -> Self {
        GroupState {
            n: 0,
            accs: specs.iter().map(AggAcc::new).collect(),
        }
    }

    /// Assembles the group's output row through a reusable buffer: one
    /// tuple allocation, no intermediate `Vec` per call.
    pub(crate) fn output(&self, key: &[Value], buf: &mut Vec<Value>) -> Tuple {
        buf.clear();
        buf.extend_from_slice(key);
        buf.extend(self.accs.iter().map(AggAcc::finish));
        Tuple::from_slice(buf)
    }
}

fn compile(plan: &Plan, db: &Database) -> Result<Node, CircuitError> {
    let op = match plan {
        Plan::Scan { relation, .. } => {
            // Verify the relation exists up front.
            db.relation(relation)
                .map_err(|_| PlanError::UnknownRelation(relation.to_string()))?;
            Op::Scan {
                relation: Arc::clone(relation),
            }
        }
        Plan::Select { input, predicate } => {
            let cols = input.output_columns(db)?;
            let pred = predicate
                .bind(&cols)
                .map_err(|c| ExecError::Plan(PlanError::UnknownColumn(c)))?;
            Op::Select {
                child: Box::new(compile(input, db)?),
                pred,
            }
        }
        Plan::Project { input, columns } => {
            let cols = input.output_columns(db)?;
            let indices = columns
                .iter()
                .map(|c| {
                    resolve_column(&cols, c)
                        .ok_or_else(|| ExecError::Plan(PlanError::UnknownColumn(c.to_string())))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Op::Project {
                child: Box::new(compile(input, db)?),
                indices,
            }
        }
        Plan::Product { left, right } => Op::Product {
            left: Box::new(compile(left, db)?),
            right: Box::new(compile(right, db)?),
            left_state: CountedSet::new(),
            right_state: CountedSet::new(),
        },
        Plan::Join { left, right, on } => {
            let l_cols = left.output_columns(db)?;
            let r_cols = right.output_columns(db)?;
            let (lk, rk) = join_key_indices(on, &l_cols, &r_cols)?;
            Op::Join {
                left: Box::new(compile(left, db)?),
                right: Box::new(compile(right, db)?),
                lk,
                rk,
                left_state: TupleMap::new(),
                right_state: TupleMap::new(),
                scratch: Vec::new(),
            }
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let cols = input.output_columns(db)?;
            let group_idx = group_by
                .iter()
                .map(|c| {
                    resolve_column(&cols, c)
                        .ok_or_else(|| ExecError::Plan(PlanError::UnknownColumn(c.to_string())))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let specs = bind_aggs(aggs, &cols)?;
            Op::Aggregate {
                child: Box::new(compile(input, db)?),
                group_idx,
                specs,
                groups: TupleMap::new(),
                scratch: Vec::new(),
                touched: TupleMap::new(),
                row_buf: Vec::new(),
            }
        }
        Plan::Distinct { input } => Op::Distinct {
            child: Box::new(compile(input, db)?),
            state: CountedSet::new(),
        },
        Plan::Union { left, right } => {
            // Validate arity agreement up front.
            plan.output_columns(db)?;
            Op::Union {
                left: Box::new(compile(left, db)?),
                right: Box::new(compile(right, db)?),
            }
        }
        Plan::Difference { left, right } => {
            plan.output_columns(db)?;
            Op::SetOp {
                left: Box::new(compile(left, db)?),
                right: Box::new(compile(right, db)?),
                kind: SetOpKind::Difference,
                left_state: CountedSet::new(),
                right_state: CountedSet::new(),
            }
        }
        Plan::Intersect { left, right } => {
            plan.output_columns(db)?;
            Op::SetOp {
                left: Box::new(compile(left, db)?),
                right: Box::new(compile(right, db)?),
                kind: SetOpKind::Intersect,
                left_state: CountedSet::new(),
                right_state: CountedSet::new(),
            }
        }
        Plan::Fixpoint { .. } | Plan::Rec { .. } => {
            return Err(CircuitError::Unsupported(
                "recursive plans require the circuit backend".into(),
            ))
        }
    };
    Ok(Node {
        op,
        sources: plan.base_relations(),
    })
}

impl Node {
    /// True when the delta batch touches any base relation of this subtree.
    fn touches(&self, deltas: &DeltaSet) -> bool {
        self.sources
            .iter()
            .any(|r| deltas.for_relation(r).is_some())
    }

    /// Full evaluation over the current database, populating operator state.
    fn init(&mut self, db: &Database, stats: &mut ViewStats) -> Result<CountedSet, ExecError> {
        Ok(match &mut self.op {
            Op::Scan { relation } => {
                let rel = db
                    .relation(relation)
                    .map_err(|_| PlanError::UnknownRelation(relation.to_string()))?;
                stats.init_tuples_scanned += rel.len() as u64;
                CountedSet::from_tuples(rel.tuples().cloned())
            }
            Op::Select { child, pred } => {
                let rows = child.init(db, stats)?;
                let mut out = CountedSet::new();
                for (t, c) in rows.iter() {
                    if pred.matches(t) {
                        out.add(t.clone(), c);
                    }
                }
                out
            }
            Op::Project { child, indices } => {
                let rows = child.init(db, stats)?;
                let mut out = CountedSet::new();
                for (t, c) in rows.iter() {
                    out.add(t.project(indices), c);
                }
                out
            }
            Op::Product {
                left,
                right,
                left_state,
                right_state,
            } => {
                *left_state = left.init(db, stats)?;
                *right_state = right.init(db, stats)?;
                let mut out = CountedSet::new();
                for (lt, lc) in left_state.iter() {
                    for (rt, rc) in right_state.iter() {
                        out.add(lt.concat(rt), lc * rc);
                    }
                }
                out
            }
            Op::Join {
                left,
                right,
                lk,
                rk,
                left_state,
                right_state,
                scratch,
            } => {
                let l = left.init(db, stats)?;
                let r = right.init(db, stats)?;
                left_state.clear();
                right_state.clear();
                for (t, c) in l.iter() {
                    insert_keyed_projecting(left_state, lk, t, c, scratch);
                }
                for (t, c) in r.iter() {
                    insert_keyed_projecting(right_state, rk, t, c, scratch);
                }
                let mut out = CountedSet::new();
                for (key, lts) in left_state.iter() {
                    if let Some(rts) = right_state.get_tuple(key) {
                        for (lt, lc) in lts.iter() {
                            for (rt, rc) in rts.iter() {
                                out.add(lt.concat(rt), lc * rc);
                            }
                        }
                    }
                }
                out
            }
            Op::Aggregate {
                child,
                group_idx,
                specs,
                groups,
                scratch,
                row_buf,
                ..
            } => {
                let rows = child.init(db, stats)?;
                groups.clear();
                for (t, c) in rows.iter() {
                    t.project_into(group_idx, scratch);
                    let fp = fingerprint_values(scratch);
                    let g = groups.get_or_insert_with(fp, scratch, || GroupState::new(specs));
                    g.n += c;
                    for (acc, spec) in g.accs.iter_mut().zip(specs.iter()) {
                        acc.update(spec, t, c);
                    }
                }
                // The global group always exists, even over an empty input.
                if group_idx.is_empty() && groups.is_empty() {
                    groups.get_or_insert_with(fingerprint_values(&[]), &[], || {
                        GroupState::new(specs)
                    });
                }
                let mut out = CountedSet::new();
                for (key, g) in groups.iter() {
                    out.add(g.output(key.values(), row_buf), 1);
                }
                out
            }
            Op::Distinct { child, state } => {
                *state = child.init(db, stats)?;
                let mut out = CountedSet::new();
                for t in state.support() {
                    out.add(t.clone(), 1);
                }
                out
            }
            Op::Union { left, right } => {
                let mut l = left.init(db, stats)?;
                l.merge_owned(right.init(db, stats)?);
                l
            }
            Op::SetOp {
                left,
                right,
                kind,
                left_state,
                right_state,
            } => {
                *left_state = left.init(db, stats)?;
                *right_state = right.init(db, stats)?;
                let mut out = CountedSet::new();
                for (t, lc) in left_state.iter() {
                    out.add(t.clone(), kind.out_count(lc, right_state.count(t)));
                }
                out
            }
        })
    }

    /// Propagates a base-relation delta batch, returning this node's output
    /// delta and updating internal state.
    ///
    /// When the batch is disjoint from this subtree's source relations the
    /// node returns [`DeltaOut::Empty`] immediately — no recursion into
    /// children, no `CountedSet` allocation, no work counted.
    fn apply<'d>(&mut self, deltas: &'d DeltaSet, work: &mut u64) -> DeltaOut<'d> {
        if !self.touches(deltas) {
            return DeltaOut::Empty;
        }
        match &mut self.op {
            Op::Scan { relation } => match deltas.for_relation(relation) {
                Some(set) => {
                    *work += set.distinct_len() as u64;
                    DeltaOut::Borrowed(set)
                }
                None => DeltaOut::Empty,
            },
            Op::Select { child, pred } => {
                let d = child.apply(deltas, work);
                // Lazy allocation: a selective predicate often passes nothing,
                // in which case no output set is ever allocated.
                let mut out = CountedSet::new();
                for (t, c) in d.iter() {
                    *work += 1;
                    if pred.matches(t) {
                        out.add(t.clone(), c);
                    }
                }
                DeltaOut::Owned(out)
            }
            Op::Project { child, indices } => {
                let d = child.apply(deltas, work);
                let mut out = CountedSet::with_capacity(d.distinct_len());
                for (t, c) in d.iter() {
                    *work += 1;
                    out.add(t.project(indices), c);
                }
                DeltaOut::Owned(out)
            }
            Op::Product {
                left,
                right,
                left_state,
                right_state,
            } => {
                let dl = left.apply(deltas, work);
                let dr = right.apply(deltas, work);
                let mut out = CountedSet::new();
                // ΔL × R_old
                for (lt, lc) in dl.iter() {
                    for (rt, rc) in right_state.iter() {
                        *work += 1;
                        out.add(lt.concat(rt), lc * rc);
                    }
                }
                if let Some(s) = dl.as_set() {
                    left_state.merge(s); // left is now L_new
                }
                // L_new × ΔR = (L_old + ΔL) × ΔR — supplies both remaining terms.
                for (rt, rc) in dr.iter() {
                    for (lt, lc) in left_state.iter() {
                        *work += 1;
                        out.add(lt.concat(rt), lc * rc);
                    }
                }
                if let Some(s) = dr.as_set() {
                    right_state.merge(s);
                }
                DeltaOut::Owned(out)
            }
            Op::Join {
                left,
                right,
                lk,
                rk,
                left_state,
                right_state,
                scratch,
            } => {
                let dl = left.apply(deltas, work);
                let dr = right.apply(deltas, work);
                let mut out = CountedSet::new();
                // ΔL ⋈ R_old, folding ΔL into the left state as we go — the
                // probe (into right_state) and the insert (into left_state)
                // share one key projection through the reusable scratch
                // buffer and one fingerprint: no per-row allocation. R_old is
                // intact throughout because ΔR only lands after this loop.
                for (lt, lc) in dl.iter() {
                    *work += 1;
                    lt.project_into(lk, scratch);
                    if scratch.iter().any(Value::is_null) {
                        continue;
                    }
                    let fp = fingerprint_values(scratch);
                    if let Some(rts) = right_state.get(fp, scratch) {
                        for (rt, rc) in rts.iter() {
                            *work += 1;
                            out.add(lt.concat(rt), lc * rc);
                        }
                    }
                    insert_keyed(left_state, fp, scratch, lt, lc);
                }
                // L_new ⋈ ΔR (left state already includes ΔL — this supplies
                // both the L_old × ΔR and ΔL × ΔR terms), folding ΔR in.
                for (rt, rc) in dr.iter() {
                    *work += 1;
                    rt.project_into(rk, scratch);
                    if scratch.iter().any(Value::is_null) {
                        continue;
                    }
                    let fp = fingerprint_values(scratch);
                    if let Some(lts) = left_state.get(fp, scratch) {
                        for (lt, lc) in lts.iter() {
                            *work += 1;
                            out.add(lt.concat(rt), lc * rc);
                        }
                    }
                    insert_keyed(right_state, fp, scratch, rt, rc);
                }
                DeltaOut::Owned(out)
            }
            Op::Aggregate {
                child,
                group_idx,
                specs,
                groups,
                scratch,
                touched,
                row_buf,
            } => {
                let d = child.apply(deltas, work);
                let global = group_idx.is_empty();
                // Single pass: snapshot the pre-batch output of each group at
                // first touch, then fold the update in. Group keys project
                // into the reusable scratch buffer; an owned key tuple is
                // built only once per *touched group*, not per row, and the
                // touched-map allocation itself is reused across batches.
                touched.clear();
                for (t, c) in d.iter() {
                    *work += 1;
                    t.project_into(group_idx, scratch);
                    let fp = fingerprint_values(scratch);
                    if touched.get(fp, scratch).is_none() {
                        let old = match groups.get(fp, scratch) {
                            Some(g) => Some(g.output(scratch, row_buf)),
                            // The global group exists implicitly with zero state.
                            None => global.then(|| GroupState::new(specs).output(scratch, row_buf)),
                        };
                        touched.get_or_insert_with(fp, scratch, || old);
                    }
                    let g = groups.get_or_insert_with(fp, scratch, || GroupState::new(specs));
                    g.n += c;
                    for (acc, spec) in g.accs.iter_mut().zip(specs.iter()) {
                        acc.update(spec, t, c);
                    }
                }
                // Diff old vs new output per touched group. A group whose
                // aggregate values ended up unchanged (e.g. an update moving
                // a row between two states no aggregate observes) is detected
                // by comparing the finished accumulators against the old
                // snapshot *before* allocating a new output row.
                let mut out = CountedSet::new();
                for (key, old) in touched.iter() {
                    let fp = key.fingerprint();
                    let alive = match groups.get(fp, key.values()) {
                        Some(g) if g.n > 0 || global => {
                            let unchanged = old.as_ref().is_some_and(|o| {
                                let vals = &o.values()[key.arity()..];
                                g.accs
                                    .iter()
                                    .zip(vals)
                                    .all(|(acc, prev)| acc.finish() == *prev)
                            });
                            if !unchanged {
                                let n = g.output(key.values(), row_buf);
                                if let Some(o) = old {
                                    out.add(o.clone(), -1);
                                }
                                out.add(n, 1);
                            }
                            true
                        }
                        _ => {
                            if let Some(o) = old {
                                out.add(o.clone(), -1);
                            }
                            false
                        }
                    };
                    // Drop groups whose support vanished (non-global only).
                    if !alive && !global && groups.get(fp, key.values()).is_some() {
                        groups.remove(fp, key.values());
                    }
                }
                DeltaOut::Owned(out)
            }
            Op::Distinct { child, state } => {
                let d = child.apply(deltas, work);
                let mut out = CountedSet::new();
                for (t, c) in d.iter() {
                    *work += 1;
                    let old = state.count(t);
                    let new = state.add(t.clone(), c);
                    if old <= 0 && new > 0 {
                        out.add(t.clone(), 1);
                    } else if old > 0 && new <= 0 {
                        out.add(t.clone(), -1);
                    }
                }
                DeltaOut::Owned(out)
            }
            Op::Union { left, right } => {
                let dl = left.apply(deltas, work);
                let dr = right.apply(deltas, work);
                *work += dr.distinct_len() as u64;
                let mut l = dl.into_counted();
                l.merge_owned(dr.into_counted());
                DeltaOut::Owned(l)
            }
            Op::SetOp {
                left,
                right,
                kind,
                left_state,
                right_state,
            } => {
                let dl = left.apply(deltas, work);
                let dr = right.apply(deltas, work);
                let mut out = CountedSet::new();
                // Re-derive the output count of every touched tuple.
                for t in dl.iter().map(|(t, _)| t).chain(dr.iter().map(|(t, _)| t)) {
                    *work += 1;
                    if out.count(t) != 0 {
                        continue; // handled from the other delta already
                    }
                    let old = kind.out_count(left_state.count(t), right_state.count(t));
                    let new = kind.out_count(
                        left_state.count(t) + dl.count(t),
                        right_state.count(t) + dr.count(t),
                    );
                    out.add(t.clone(), new - old);
                }
                if let Some(s) = dl.as_set() {
                    left_state.merge(s);
                }
                if let Some(s) = dr.as_set() {
                    right_state.merge(s);
                }
                DeltaOut::Owned(out)
            }
        }
    }
}

/// Adds `t` with multiplicity `c` to a keyed join state under an
/// already-projected, already-fingerprinted key (the caller owns the
/// projection so probe and insert share it). Key entries whose multiset
/// empties are removed. NULL keys must be filtered by the caller.
fn insert_keyed(state: &mut TupleMap<CountedSet>, fp: u64, key: &[Value], t: &Tuple, c: i64) {
    let set = state.get_or_insert_with(fp, key, CountedSet::new);
    set.add(t.clone(), c);
    if set.is_empty() {
        state.remove(fp, key);
    }
}

/// Projection + NULL-filter + fingerprint wrapper over [`insert_keyed`] for
/// the one-time full evaluation, where probe and insert are separate.
fn insert_keyed_projecting(
    state: &mut TupleMap<CountedSet>,
    keys: &[usize],
    t: &Tuple,
    c: i64,
    scratch: &mut Vec<Value>,
) {
    t.project_into(keys, scratch);
    if scratch.iter().any(Value::is_null) {
        return; // NULL keys never participate in equi-joins
    }
    let fp = fingerprint_values(scratch);
    insert_keyed(state, fp, scratch, t, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{paper_queries, AggExpr, AggFunc};
    use crate::exec::execute_simple;
    use crate::expr::Expr;
    use crate::schema::Schema;
    use crate::storage::RowId;
    use crate::tuple;
    use crate::value::ValueType;

    fn token_schema() -> Schema {
        Schema::from_pairs(&[
            ("tok_id", ValueType::Int),
            ("doc_id", ValueType::Int),
            ("string", ValueType::Str),
            ("label", ValueType::Str),
            ("truth", ValueType::Str),
        ])
        .unwrap()
        .with_primary_key("tok_id")
        .unwrap()
    }

    fn token_db() -> Database {
        let mut db = Database::new();
        db.create_relation("TOKEN", token_schema()).unwrap();
        let rows = vec![
            (1, 1, "Bill", "B-PER"),
            (2, 1, "said", "O"),
            (3, 1, "Boston", "B-ORG"),
            (4, 2, "Boston", "B-LOC"),
            (5, 2, "hired", "O"),
            (6, 2, "Ann", "B-PER"),
            (7, 3, "IBM", "B-ORG"),
            (8, 3, "Ann", "B-PER"),
        ];
        let rel = db.relation_mut("TOKEN").unwrap();
        for (id, doc, s, l) in rows {
            rel.insert(tuple![id as i64, doc as i64, s, l, l]).unwrap();
        }
        db
    }

    /// Updates the label of `tok_id`, recording the delta.
    fn relabel(db: &mut Database, deltas: &mut DeltaSet, tok_id: i64, label: &str) {
        let rel = db.relation_mut("TOKEN").unwrap();
        let rid = rel.find_by_pk(&Value::Int(tok_id)).unwrap();
        let col = rel.schema().index_of("label").unwrap();
        let (old, new) = rel.update_field(rid, col, Value::str(label)).unwrap();
        let name = Arc::clone(rel.name());
        deltas.record_update(&name, old, new);
    }

    /// The central invariant: after any delta stream, the maintained view
    /// equals a from-scratch execution (Eq. 6 of the paper).
    fn assert_view_matches_exec(view: &MaterializedView, plan: &Plan, db: &Database) {
        let fresh = execute_simple(plan, db).unwrap();
        assert_eq!(
            view.result().sorted_entries(),
            fresh.rows.sorted_entries(),
            "maintained view diverged from recomputation"
        );
    }

    #[test]
    fn query1_view_tracks_relabels() {
        let mut db = token_db();
        let plan = paper_queries::query1("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_view_matches_exec(&view, &plan, &db);
        assert_eq!(view.result().count(&tuple!["Ann"]), 2);

        // Relabel "said" → B-PER, "Ann"(6) → O, within one batch.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 2, "B-PER");
        relabel(&mut db, &mut d, 6, "O");
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple!["said"]), 1);
        assert_eq!(out.count(&tuple!["Ann"]), -1);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn cancelled_delta_produces_no_output() {
        let mut db = token_db();
        let plan = paper_queries::query1("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 2, "B-PER");
        relabel(&mut db, &mut d, 2, "O"); // restore
        assert!(d.is_empty());
        let out = view.apply_delta(&d);
        assert!(out.is_empty());
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn global_aggregate_view_query2() {
        let mut db = token_db();
        let plan = paper_queries::query2("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_eq!(view.result().sorted_support(), vec![tuple![3i64]]);

        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 2, "B-PER");
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple![3i64]), -1);
        assert_eq!(out.count(&tuple![4i64]), 1);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn global_aggregate_survives_reaching_zero() {
        let mut db = token_db();
        let plan = paper_queries::query2("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        let mut d = DeltaSet::new();
        for tok in [1, 6, 8] {
            relabel(&mut db, &mut d, tok, "O");
        }
        view.apply_delta(&d);
        // COUNT drops to 0 but the row persists (global groups always exist).
        assert_eq!(view.result().sorted_support(), vec![tuple![0i64]]);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn grouped_aggregate_view_query3() {
        let mut db = token_db();
        let plan = paper_queries::query3("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_eq!(
            view.result().sorted_support(),
            vec![tuple![1i64], tuple![3i64]]
        );

        // Make doc 2 balanced by labelling "Boston"(4) B-ORG.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 4, "B-ORG");
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple![2i64]), 1);
        assert_view_matches_exec(&view, &plan, &db);

        // Unbalance doc 1 by adding another person.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 2, "B-PER");
        view.apply_delta(&d);
        assert!(!view.result().contains(&tuple![1i64]));
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn join_view_query4() {
        let mut db = token_db();
        let plan = paper_queries::query4("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_eq!(view.result().sorted_support(), vec![tuple!["Bill"]]);

        // Relabel doc-2 "Boston"(4) to B-ORG → Ann co-occurs.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 4, "B-ORG");
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple!["Ann"]), 1);
        assert_view_matches_exec(&view, &plan, &db);

        // Remove doc-1 Boston's ORG label → Bill leaves the answer.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 3, "B-LOC");
        view.apply_delta(&d);
        assert!(!view.result().contains(&tuple!["Bill"]));
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn distinct_view_tracks_support_crossings() {
        let mut db = token_db();
        let plan = paper_queries::query1("TOKEN").distinct();
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_eq!(view.result().count(&tuple!["Ann"]), 1);

        // Remove one of the two Ann mentions: distinct count unchanged.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 6, "O");
        let out = view.apply_delta(&d);
        assert!(out.is_empty());
        // Remove the second: Ann leaves.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 8, "O");
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple!["Ann"]), -1);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn product_view_maintenance() {
        let mut db = token_db();
        let plan = Plan::scan_as("TOKEN", "A")
            .filter(Expr::col("A.label").eq(Expr::lit("B-ORG")))
            .project(&["A.string"])
            .product(
                Plan::scan_as("TOKEN", "B")
                    .filter(Expr::col("B.label").eq(Expr::lit("B-LOC")))
                    .project(&["B.string"]),
            );
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_view_matches_exec(&view, &plan, &db);

        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 4, "B-ORG"); // moves a tuple across both sides
        view.apply_delta(&d);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn insert_and_delete_tuples_through_view() {
        let mut db = token_db();
        let plan = paper_queries::query1("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();

        let mut d = DeltaSet::new();
        let t = tuple![9i64, 3i64, "Grace", "B-PER", "B-PER"];
        db.relation_mut("TOKEN").unwrap().insert(t.clone()).unwrap();
        d.record_insert(&Arc::from("TOKEN"), t);
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple!["Grace"]), 1);
        assert_view_matches_exec(&view, &plan, &db);

        let mut d = DeltaSet::new();
        let rel = db.relation_mut("TOKEN").unwrap();
        let rid = rel.find_by_pk(&Value::Int(9)).unwrap();
        let gone = rel.delete(rid).unwrap();
        d.record_delete(&Arc::from("TOKEN"), gone);
        view.apply_delta(&d);
        assert!(!view.result().contains(&tuple!["Grace"]));
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn min_max_aggregates_survive_deletion_of_extremum() {
        let mut db = token_db();
        let plan = Plan::scan("TOKEN").aggregate(
            &["doc_id"],
            vec![
                AggExpr::new(AggFunc::Min(Arc::from("tok_id")), "lo"),
                AggExpr::new(AggFunc::Max(Arc::from("tok_id")), "hi"),
            ],
        );
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert!(view.result().contains(&tuple![1i64, 1i64, 3i64]));

        // Delete tok 3 (the max of doc 1); view must fall back to tok 2.
        let mut d = DeltaSet::new();
        let rel = db.relation_mut("TOKEN").unwrap();
        let rid = rel.find_by_pk(&Value::Int(3)).unwrap();
        let gone = rel.delete(rid).unwrap();
        d.record_delete(&Arc::from("TOKEN"), gone);
        view.apply_delta(&d);
        assert!(view.result().contains(&tuple![1i64, 1i64, 2i64]));
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn group_disappears_when_last_row_leaves() {
        let mut db = token_db();
        let plan = Plan::scan("TOKEN")
            .filter(Expr::col("label").eq(Expr::lit("B-PER")))
            .aggregate(&["doc_id"], vec![AggExpr::new(AggFunc::Count, "n")]);
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert!(view.result().contains(&tuple![2i64, 1i64]));

        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 6, "O");
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple![2i64, 1i64]), -1);
        assert!(!view.result().contains(&tuple![2i64, 1i64]));
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn disjoint_relation_delta_does_no_work() {
        // A delta touching only relation OTHER must not advance
        // delta_rows_processed in a view reading only TOKEN — the root
        // short-circuits before any operator-tree recursion.
        let mut db = token_db();
        db.create_relation("OTHER", token_schema()).unwrap();
        for plan in [
            paper_queries::query1("TOKEN"),
            paper_queries::query2("TOKEN"),
            paper_queries::query3("TOKEN"),
            paper_queries::query4("TOKEN"),
        ] {
            let mut view = MaterializedView::new(&plan, &db).unwrap();
            assert_eq!(
                view.source_relations()
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>(),
                vec!["TOKEN"]
            );
            let before = view.stats();
            let mut d = DeltaSet::new();
            d.record_insert(
                &Arc::from("OTHER"),
                tuple![99i64, 9i64, "X", "B-PER", "B-PER"],
            );
            let out = view.apply_delta(&d);
            assert!(out.is_empty());
            let after = view.stats();
            assert_eq!(after.delta_rows_processed, before.delta_rows_processed);
            assert_eq!(after.deltas_applied, before.deltas_applied + 1);
            assert_view_matches_exec(&view, &plan, &db);
        }
    }

    #[test]
    fn uncompacted_cancelled_delta_short_circuits() {
        // Deferred compaction may leave an *empty* per-relation entry in the
        // DeltaSet; the view must treat it as untouched.
        let db = token_db();
        let plan = paper_queries::query1("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        let mut d = DeltaSet::new();
        let t = tuple![50i64, 9i64, "Zed", "B-PER", "B-PER"];
        d.record_insert(&Arc::from("TOKEN"), t.clone());
        d.record_delete(&Arc::from("TOKEN"), t);
        // No compact() call — the empty TOKEN entry is still allocated.
        let before = view.stats().delta_rows_processed;
        let out = view.apply_delta(&d);
        assert!(out.is_empty());
        assert_eq!(view.stats().delta_rows_processed, before);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn empty_delta_is_cheap_noop() {
        let db = token_db();
        let plan = paper_queries::query4("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        let before = view.stats();
        let out = view.apply_delta(&DeltaSet::new());
        assert!(out.is_empty());
        let after = view.stats();
        assert_eq!(after.delta_rows_processed, before.delta_rows_processed);
        assert_eq!(after.deltas_applied, before.deltas_applied + 1);
    }

    #[test]
    fn delta_work_is_independent_of_db_size() {
        // The heart of Fig. 4(a): delta application work must not scale with
        // the relation size for selection/projection queries.
        let mut work_small = 0;
        let mut work_large = 0;
        for (n, work) in [(50usize, &mut work_small), (5000usize, &mut work_large)] {
            let mut db = Database::new();
            db.create_relation("TOKEN", token_schema()).unwrap();
            {
                let rel = db.relation_mut("TOKEN").unwrap();
                for i in 0..n {
                    rel.insert(tuple![i as i64, (i / 10) as i64, format!("w{i}"), "O", "O"])
                        .unwrap();
                }
            }
            let plan = paper_queries::query1("TOKEN");
            let mut view = MaterializedView::new(&plan, &db).unwrap();
            let mut d = DeltaSet::new();
            let rel = db.relation_mut("TOKEN").unwrap();
            let rid = rel.find_by_pk(&Value::Int(7)).unwrap();
            let col = rel.schema().index_of("label").unwrap();
            let (old, new) = rel.update_field(rid, col, Value::str("B-PER")).unwrap();
            d.record_update(&Arc::from("TOKEN"), old, new);
            view.apply_delta(&d);
            *work = view.stats().delta_rows_processed;
        }
        assert_eq!(work_small, work_large);
    }

    #[test]
    fn compile_rejects_unknown_relation() {
        let db = token_db();
        let plan = Plan::scan("MISSING");
        assert!(MaterializedView::new(&plan, &db).is_err());
    }

    #[test]
    fn row_id_type_is_reexported_in_tests() {
        // RowId participates in the relabel helper path; keep it referenced.
        let _ = RowId(0);
    }

    #[test]
    fn union_view_adds_multiplicities() {
        let mut db = token_db();
        let plan = paper_queries::query1("TOKEN").union(
            Plan::scan("TOKEN")
                .filter(Expr::col("label").eq(Expr::lit("B-ORG")))
                .project(&["string"]),
        );
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_view_matches_exec(&view, &plan, &db);
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 2, "B-ORG"); // "said" enters via the right arm
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple!["said"]), 1);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn difference_view_monus_semantics() {
        let mut db = token_db();
        // Strings of non-O tokens minus strings of B-PER tokens.
        let plan = Plan::scan("TOKEN")
            .filter(Expr::col("label").ne(Expr::lit("O")))
            .project(&["string"])
            .difference(paper_queries::query1("TOKEN"));
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_view_matches_exec(&view, &plan, &db);
        // "Ann"(6) flips to O: leaves the left side AND the subtrahend.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 6, "O");
        view.apply_delta(&d);
        assert_view_matches_exec(&view, &plan, &db);
        // Flip "Boston"(4) to B-PER: both sides change for one tuple.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 4, "B-PER");
        view.apply_delta(&d);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn intersect_view_min_semantics() {
        let mut db = token_db();
        let plan = Plan::scan("TOKEN")
            .filter(Expr::col("label").ne(Expr::lit("O")))
            .project(&["string"])
            .intersect(
                Plan::scan("TOKEN")
                    .filter(Expr::col("doc_id").le(Expr::lit(2i64)))
                    .project(&["string"]),
            );
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_view_matches_exec(&view, &plan, &db);
        for (tok, label) in [(7, "O"), (1, "O"), (5, "B-LOC")] {
            let mut d = DeltaSet::new();
            relabel(&mut db, &mut d, tok, label);
            view.apply_delta(&d);
            assert_view_matches_exec(&view, &plan, &db);
        }
    }

    #[test]
    fn set_op_arity_mismatch_rejected() {
        let db = token_db();
        let plan = Plan::scan("TOKEN")
            .project(&["string"])
            .union(Plan::scan_as("TOKEN", "B").project(&["B.string", "B.doc_id"]));
        assert!(MaterializedView::new(&plan, &db).is_err());
    }
}
