//! Incrementally maintained materialized views — Algorithm 1's engine.
//!
//! §4.2 of the paper: rather than re-running the query over each sampled
//! world, the answer is maintained under the world deltas produced by MCMC,
//! following Blakeley et al.'s view maintenance with multiset (counted)
//! semantics:
//!
//! ```text
//! Q(w') = Q(w) − Q'(w, Δ⁻) ∪ Q'(w, Δ⁺)                 (Eq. 6)
//! σ(w')   ≡ σ(w) − σ(Δ⁻) ∪ σ(Δ⁺)
//! w'.R₁ × w'.R₂ ≡ w.R₁ × w.R₂ − w.R₁ × Δ⁻.R₂ ∪ w.R₁ × Δ⁺.R₂
//! ```
//!
//! A [`MaterializedView`] compiles a [`Plan`] into a tree of stateful
//! operator nodes. Feeding it a [`DeltaSet`] propagates *signed counted
//! deltas* bottom-up and returns the delta of the answer set; the cost is
//! proportional to |Δ| (and the fan-out of joins touched), never to |w|.
//!
//! Supported operators: σ, π (multiset), ×, equi-⋈, γ (COUNT / filtered
//! COUNT / SUM / MIN / MAX, grouped or global), δ (distinct), ∪ (bag
//! union), ∖ (monus difference), ∩ (bag intersection). This covers all four
//! evaluation queries of §5 — including the aggregate queries the paper
//! highlights as trivially handled by sampling evaluation — and the full
//! algebra beyond them.

use crate::algebra::{Plan, PlanError};
use crate::counted::CountedSet;
use crate::database::Database;
use crate::delta::DeltaSet;
use crate::exec::{bind_aggs, join_key_indices, AggAcc, AggSpec, ExecError};
use crate::expr::{resolve_column, BoundExpr};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Work counters for view maintenance (the |Δ|-proportional analogue of
/// [`crate::exec::ExecStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Delta batches applied.
    pub deltas_applied: u64,
    /// Delta rows processed across all operator nodes.
    pub delta_rows_processed: u64,
    /// Base tuples read during initialization (one full evaluation).
    pub init_tuples_scanned: u64,
}

/// A query answer maintained incrementally under world deltas.
pub struct MaterializedView {
    root: Node,
    result: CountedSet,
    columns: Vec<Arc<str>>,
    stats: ViewStats,
}

impl MaterializedView {
    /// Compiles `plan` and runs the one-time full evaluation over the
    /// initial world `w₀` (Algorithm 1 line 2: "run full query to get
    /// initial results").
    pub fn new(plan: &Plan, db: &Database) -> Result<Self, ExecError> {
        let columns = plan.output_columns(db)?;
        let mut root = compile(plan, db)?;
        let mut stats = ViewStats::default();
        let result = root.init(db, &mut stats)?;
        Ok(MaterializedView {
            root,
            result,
            columns,
            stats,
        })
    }

    /// Applies a world delta, updating the maintained answer and returning
    /// the answer's own signed delta (what Algorithm 1 line 5 consumes).
    pub fn apply_delta(&mut self, deltas: &DeltaSet) -> CountedSet {
        self.stats.deltas_applied += 1;
        let out = self
            .root
            .apply(deltas, &mut self.stats.delta_rows_processed);
        self.result.merge(&out);
        out
    }

    /// The current maintained answer multiset.
    pub fn result(&self) -> &CountedSet {
        &self.result
    }

    /// Output column names.
    pub fn columns(&self) -> &[Arc<str>] {
        &self.columns
    }

    /// Work counters.
    pub fn stats(&self) -> ViewStats {
        self.stats
    }
}

/// Stateful operator node.
enum Node {
    Scan {
        relation: Arc<str>,
    },
    Select {
        child: Box<Node>,
        pred: BoundExpr,
    },
    Project {
        child: Box<Node>,
        indices: Vec<usize>,
    },
    Product {
        left: Box<Node>,
        right: Box<Node>,
        left_state: CountedSet,
        right_state: CountedSet,
    },
    Join {
        left: Box<Node>,
        right: Box<Node>,
        lk: Vec<usize>,
        rk: Vec<usize>,
        /// Join key → multiset of left tuples with that key.
        left_state: HashMap<Tuple, CountedSet>,
        right_state: HashMap<Tuple, CountedSet>,
    },
    Aggregate {
        child: Box<Node>,
        group_idx: Vec<usize>,
        specs: Vec<AggSpec>,
        groups: HashMap<Tuple, GroupState>,
    },
    Distinct {
        child: Box<Node>,
        state: CountedSet,
    },
    /// UNION ALL: multiplicities add — linear, stateless.
    Union {
        left: Box<Node>,
        right: Box<Node>,
    },
    /// Bag difference/intersection are *not* linear (monus/min), so both
    /// input multisets are retained and touched tuples re-derived.
    SetOp {
        left: Box<Node>,
        right: Box<Node>,
        kind: SetOpKind,
        left_state: CountedSet,
        right_state: CountedSet,
    },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SetOpKind {
    Difference,
    Intersect,
}

impl SetOpKind {
    /// Output multiplicity of a tuple given its input multiplicities.
    fn out_count(self, l: i64, r: i64) -> i64 {
        match self {
            SetOpKind::Difference => (l - r).max(0),
            SetOpKind::Intersect => l.min(r).max(0),
        }
    }
}

struct GroupState {
    /// Total input multiplicity in the group (existence test: n > 0, except
    /// the global group which always exists).
    n: i64,
    accs: Vec<AggAcc>,
}

impl GroupState {
    fn new(specs: &[AggSpec]) -> Self {
        GroupState {
            n: 0,
            accs: specs.iter().map(AggAcc::new).collect(),
        }
    }

    fn output(&self, key: &Tuple) -> Tuple {
        let mut vals: Vec<Value> = key.values().to_vec();
        vals.extend(self.accs.iter().map(AggAcc::finish));
        Tuple::new(vals)
    }
}

fn compile(plan: &Plan, db: &Database) -> Result<Node, ExecError> {
    Ok(match plan {
        Plan::Scan { relation, .. } => {
            // Verify the relation exists up front.
            db.relation(relation)
                .map_err(|_| PlanError::UnknownRelation(relation.to_string()))?;
            Node::Scan {
                relation: Arc::clone(relation),
            }
        }
        Plan::Select { input, predicate } => {
            let cols = input.output_columns(db)?;
            let pred = predicate
                .bind(&cols)
                .map_err(|c| ExecError::Plan(PlanError::UnknownColumn(c)))?;
            Node::Select {
                child: Box::new(compile(input, db)?),
                pred,
            }
        }
        Plan::Project { input, columns } => {
            let cols = input.output_columns(db)?;
            let indices = columns
                .iter()
                .map(|c| {
                    resolve_column(&cols, c)
                        .ok_or_else(|| ExecError::Plan(PlanError::UnknownColumn(c.to_string())))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Node::Project {
                child: Box::new(compile(input, db)?),
                indices,
            }
        }
        Plan::Product { left, right } => Node::Product {
            left: Box::new(compile(left, db)?),
            right: Box::new(compile(right, db)?),
            left_state: CountedSet::new(),
            right_state: CountedSet::new(),
        },
        Plan::Join { left, right, on } => {
            let l_cols = left.output_columns(db)?;
            let r_cols = right.output_columns(db)?;
            let (lk, rk) = join_key_indices(on, &l_cols, &r_cols)?;
            Node::Join {
                left: Box::new(compile(left, db)?),
                right: Box::new(compile(right, db)?),
                lk,
                rk,
                left_state: HashMap::new(),
                right_state: HashMap::new(),
            }
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let cols = input.output_columns(db)?;
            let group_idx = group_by
                .iter()
                .map(|c| {
                    resolve_column(&cols, c)
                        .ok_or_else(|| ExecError::Plan(PlanError::UnknownColumn(c.to_string())))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let specs = bind_aggs(aggs, &cols)?;
            Node::Aggregate {
                child: Box::new(compile(input, db)?),
                group_idx,
                specs,
                groups: HashMap::new(),
            }
        }
        Plan::Distinct { input } => Node::Distinct {
            child: Box::new(compile(input, db)?),
            state: CountedSet::new(),
        },
        Plan::Union { left, right } => {
            // Validate arity agreement up front.
            plan.output_columns(db)?;
            Node::Union {
                left: Box::new(compile(left, db)?),
                right: Box::new(compile(right, db)?),
            }
        }
        Plan::Difference { left, right } => {
            plan.output_columns(db)?;
            Node::SetOp {
                left: Box::new(compile(left, db)?),
                right: Box::new(compile(right, db)?),
                kind: SetOpKind::Difference,
                left_state: CountedSet::new(),
                right_state: CountedSet::new(),
            }
        }
        Plan::Intersect { left, right } => {
            plan.output_columns(db)?;
            Node::SetOp {
                left: Box::new(compile(left, db)?),
                right: Box::new(compile(right, db)?),
                kind: SetOpKind::Intersect,
                left_state: CountedSet::new(),
                right_state: CountedSet::new(),
            }
        }
    })
}

impl Node {
    /// Full evaluation over the current database, populating operator state.
    fn init(&mut self, db: &Database, stats: &mut ViewStats) -> Result<CountedSet, ExecError> {
        Ok(match self {
            Node::Scan { relation } => {
                let rel = db
                    .relation(relation)
                    .map_err(|_| PlanError::UnknownRelation(relation.to_string()))?;
                stats.init_tuples_scanned += rel.len() as u64;
                CountedSet::from_tuples(rel.iter().map(|(_, t)| t.clone()))
            }
            Node::Select { child, pred } => {
                let rows = child.init(db, stats)?;
                let mut out = CountedSet::new();
                for (t, c) in rows.iter() {
                    if pred.matches(t) {
                        out.add(t.clone(), c);
                    }
                }
                out
            }
            Node::Project { child, indices } => {
                let rows = child.init(db, stats)?;
                let mut out = CountedSet::new();
                for (t, c) in rows.iter() {
                    out.add(t.project(indices), c);
                }
                out
            }
            Node::Product {
                left,
                right,
                left_state,
                right_state,
            } => {
                *left_state = left.init(db, stats)?;
                *right_state = right.init(db, stats)?;
                let mut out = CountedSet::new();
                for (lt, lc) in left_state.iter() {
                    for (rt, rc) in right_state.iter() {
                        out.add(lt.concat(rt), lc * rc);
                    }
                }
                out
            }
            Node::Join {
                left,
                right,
                lk,
                rk,
                left_state,
                right_state,
            } => {
                let l = left.init(db, stats)?;
                let r = right.init(db, stats)?;
                left_state.clear();
                right_state.clear();
                for (t, c) in l.iter() {
                    insert_keyed(left_state, lk, t, c);
                }
                for (t, c) in r.iter() {
                    insert_keyed(right_state, rk, t, c);
                }
                let mut out = CountedSet::new();
                for (key, lts) in left_state.iter() {
                    if let Some(rts) = right_state.get(key) {
                        for (lt, lc) in lts.iter() {
                            for (rt, rc) in rts.iter() {
                                out.add(lt.concat(rt), lc * rc);
                            }
                        }
                    }
                }
                out
            }
            Node::Aggregate {
                child,
                group_idx,
                specs,
                groups,
            } => {
                let rows = child.init(db, stats)?;
                groups.clear();
                for (t, c) in rows.iter() {
                    let key = t.project(group_idx);
                    let g = groups.entry(key).or_insert_with(|| GroupState::new(specs));
                    g.n += c;
                    for (acc, spec) in g.accs.iter_mut().zip(specs.iter()) {
                        acc.update(spec, t, c);
                    }
                }
                // The global group always exists, even over an empty input.
                if group_idx.is_empty() && groups.is_empty() {
                    groups.insert(Tuple::new(vec![]), GroupState::new(specs));
                }
                let mut out = CountedSet::new();
                for (key, g) in groups.iter() {
                    out.add(g.output(key), 1);
                }
                out
            }
            Node::Distinct { child, state } => {
                *state = child.init(db, stats)?;
                let mut out = CountedSet::new();
                for t in state.support() {
                    out.add(t.clone(), 1);
                }
                out
            }
            Node::Union { left, right } => {
                let mut l = left.init(db, stats)?;
                l.merge_owned(right.init(db, stats)?);
                l
            }
            Node::SetOp {
                left,
                right,
                kind,
                left_state,
                right_state,
            } => {
                *left_state = left.init(db, stats)?;
                *right_state = right.init(db, stats)?;
                let mut out = CountedSet::new();
                for (t, lc) in left_state.iter() {
                    out.add(t.clone(), kind.out_count(lc, right_state.count(t)));
                }
                out
            }
        })
    }

    /// Propagates a base-relation delta batch, returning this node's output
    /// delta and updating internal state.
    fn apply(&mut self, deltas: &DeltaSet, work: &mut u64) -> CountedSet {
        match self {
            Node::Scan { relation } => match deltas.for_relation(relation) {
                Some(set) => {
                    *work += set.distinct_len() as u64;
                    set.clone()
                }
                None => CountedSet::new(),
            },
            Node::Select { child, pred } => {
                let d = child.apply(deltas, work);
                let mut out = CountedSet::new();
                for (t, c) in d.iter() {
                    *work += 1;
                    if pred.matches(t) {
                        out.add(t.clone(), c);
                    }
                }
                out
            }
            Node::Project { child, indices } => {
                let d = child.apply(deltas, work);
                let mut out = CountedSet::new();
                for (t, c) in d.iter() {
                    *work += 1;
                    out.add(t.project(indices), c);
                }
                out
            }
            Node::Product {
                left,
                right,
                left_state,
                right_state,
            } => {
                let dl = left.apply(deltas, work);
                let dr = right.apply(deltas, work);
                let mut out = CountedSet::new();
                // ΔL × R_old
                for (lt, lc) in dl.iter() {
                    for (rt, rc) in right_state.iter() {
                        *work += 1;
                        out.add(lt.concat(rt), lc * rc);
                    }
                }
                left_state.merge(&dl); // left is now L_new
                                       // L_new × ΔR = (L_old + ΔL) × ΔR — supplies both remaining terms.
                for (rt, rc) in dr.iter() {
                    for (lt, lc) in left_state.iter() {
                        *work += 1;
                        out.add(lt.concat(rt), lc * rc);
                    }
                }
                right_state.merge(&dr);
                out
            }
            Node::Join {
                left,
                right,
                lk,
                rk,
                left_state,
                right_state,
            } => {
                let dl = left.apply(deltas, work);
                let dr = right.apply(deltas, work);
                let mut out = CountedSet::new();
                // ΔL ⋈ R_old
                for (lt, lc) in dl.iter() {
                    *work += 1;
                    let key = lt.project(lk);
                    if key.values().iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(rts) = right_state.get(&key) {
                        for (rt, rc) in rts.iter() {
                            *work += 1;
                            out.add(lt.concat(rt), lc * rc);
                        }
                    }
                }
                // Fold ΔL into the left state, then join L_new ⋈ ΔR.
                for (lt, lc) in dl.iter() {
                    insert_keyed(left_state, lk, lt, lc);
                }
                for (rt, rc) in dr.iter() {
                    *work += 1;
                    let key = rt.project(rk);
                    if key.values().iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(lts) = left_state.get(&key) {
                        for (lt, lc) in lts.iter() {
                            *work += 1;
                            out.add(lt.concat(rt), lc * rc);
                        }
                    }
                }
                for (rt, rc) in dr.iter() {
                    insert_keyed(right_state, rk, rt, rc);
                }
                out
            }
            Node::Aggregate {
                child,
                group_idx,
                specs,
                groups,
            } => {
                let d = child.apply(deltas, work);
                let global = group_idx.is_empty();
                // Phase 1: snapshot the pre-batch output of every touched group.
                let mut touched: HashMap<Tuple, Option<Tuple>> = HashMap::new();
                for (t, _) in d.iter() {
                    let key = t.project(group_idx);
                    touched.entry(key.clone()).or_insert_with(|| {
                        groups.get(&key).map(|g| g.output(&key)).or_else(|| {
                            // The global group exists implicitly with zero state.
                            global.then(|| GroupState::new(specs).output(&key))
                        })
                    });
                }
                // Phase 2: apply all updates.
                for (t, c) in d.iter() {
                    *work += 1;
                    let key = t.project(group_idx);
                    let g = groups.entry(key).or_insert_with(|| GroupState::new(specs));
                    g.n += c;
                    for (acc, spec) in g.accs.iter_mut().zip(specs.iter()) {
                        acc.update(spec, t, c);
                    }
                }
                // Phase 3: diff old vs new output per touched group.
                let mut out = CountedSet::new();
                for (key, old) in touched {
                    let new = match groups.get(&key) {
                        Some(g) if g.n > 0 || global => Some(g.output(&key)),
                        _ => None,
                    };
                    // Drop groups whose support vanished (non-global only).
                    if groups.get(&key).is_some_and(|g| g.n <= 0) && !global {
                        groups.remove(&key);
                    }
                    match (old, new) {
                        (Some(o), Some(n)) if o == n => {}
                        (o, n) => {
                            if let Some(o) = o {
                                out.add(o, -1);
                            }
                            if let Some(n) = n {
                                out.add(n, 1);
                            }
                        }
                    }
                }
                out
            }
            Node::Distinct { child, state } => {
                let d = child.apply(deltas, work);
                let mut out = CountedSet::new();
                for (t, c) in d.iter() {
                    *work += 1;
                    let old = state.count(t);
                    let new = state.add(t.clone(), c);
                    if old <= 0 && new > 0 {
                        out.add(t.clone(), 1);
                    } else if old > 0 && new <= 0 {
                        out.add(t.clone(), -1);
                    }
                }
                out
            }
            Node::Union { left, right } => {
                let mut dl = left.apply(deltas, work);
                let dr = right.apply(deltas, work);
                *work += dr.distinct_len() as u64;
                dl.merge_owned(dr);
                dl
            }
            Node::SetOp {
                left,
                right,
                kind,
                left_state,
                right_state,
            } => {
                let dl = left.apply(deltas, work);
                let dr = right.apply(deltas, work);
                let mut out = CountedSet::new();
                // Re-derive the output count of every touched tuple.
                for t in dl.iter().map(|(t, _)| t).chain(dr.iter().map(|(t, _)| t)) {
                    *work += 1;
                    if out.count(t) != 0 {
                        continue; // handled from the other delta already
                    }
                    let old = kind.out_count(left_state.count(t), right_state.count(t));
                    let new = kind.out_count(
                        left_state.count(t) + dl.count(t),
                        right_state.count(t) + dr.count(t),
                    );
                    out.add(t.clone(), new - old);
                }
                left_state.merge(&dl);
                right_state.merge(&dr);
                out
            }
        }
    }
}

fn insert_keyed(state: &mut HashMap<Tuple, CountedSet>, keys: &[usize], t: &Tuple, c: i64) {
    let key = t.project(keys);
    if key.values().iter().any(Value::is_null) {
        return; // NULL keys never participate in equi-joins
    }
    let set = state.entry(key.clone()).or_default();
    set.add(t.clone(), c);
    if set.is_empty() {
        state.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{paper_queries, AggExpr, AggFunc};
    use crate::exec::execute_simple;
    use crate::expr::Expr;
    use crate::schema::Schema;
    use crate::storage::RowId;
    use crate::tuple;
    use crate::value::ValueType;

    fn token_schema() -> Schema {
        Schema::from_pairs(&[
            ("tok_id", ValueType::Int),
            ("doc_id", ValueType::Int),
            ("string", ValueType::Str),
            ("label", ValueType::Str),
            ("truth", ValueType::Str),
        ])
        .unwrap()
        .with_primary_key("tok_id")
        .unwrap()
    }

    fn token_db() -> Database {
        let mut db = Database::new();
        db.create_relation("TOKEN", token_schema()).unwrap();
        let rows = vec![
            (1, 1, "Bill", "B-PER"),
            (2, 1, "said", "O"),
            (3, 1, "Boston", "B-ORG"),
            (4, 2, "Boston", "B-LOC"),
            (5, 2, "hired", "O"),
            (6, 2, "Ann", "B-PER"),
            (7, 3, "IBM", "B-ORG"),
            (8, 3, "Ann", "B-PER"),
        ];
        let rel = db.relation_mut("TOKEN").unwrap();
        for (id, doc, s, l) in rows {
            rel.insert(tuple![id as i64, doc as i64, s, l, l]).unwrap();
        }
        db
    }

    /// Updates the label of `tok_id`, recording the delta.
    fn relabel(db: &mut Database, deltas: &mut DeltaSet, tok_id: i64, label: &str) {
        let rel = db.relation_mut("TOKEN").unwrap();
        let rid = rel.find_by_pk(&Value::Int(tok_id)).unwrap();
        let col = rel.schema().index_of("label").unwrap();
        let (old, new) = rel.update_field(rid, col, Value::str(label)).unwrap();
        let name = Arc::clone(rel.name());
        deltas.record_update(&name, old, new);
    }

    /// The central invariant: after any delta stream, the maintained view
    /// equals a from-scratch execution (Eq. 6 of the paper).
    fn assert_view_matches_exec(view: &MaterializedView, plan: &Plan, db: &Database) {
        let fresh = execute_simple(plan, db).unwrap();
        assert_eq!(
            view.result().sorted_entries(),
            fresh.rows.sorted_entries(),
            "maintained view diverged from recomputation"
        );
    }

    #[test]
    fn query1_view_tracks_relabels() {
        let mut db = token_db();
        let plan = paper_queries::query1("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_view_matches_exec(&view, &plan, &db);
        assert_eq!(view.result().count(&tuple!["Ann"]), 2);

        // Relabel "said" → B-PER, "Ann"(6) → O, within one batch.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 2, "B-PER");
        relabel(&mut db, &mut d, 6, "O");
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple!["said"]), 1);
        assert_eq!(out.count(&tuple!["Ann"]), -1);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn cancelled_delta_produces_no_output() {
        let mut db = token_db();
        let plan = paper_queries::query1("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 2, "B-PER");
        relabel(&mut db, &mut d, 2, "O"); // restore
        assert!(d.is_empty());
        let out = view.apply_delta(&d);
        assert!(out.is_empty());
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn global_aggregate_view_query2() {
        let mut db = token_db();
        let plan = paper_queries::query2("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_eq!(view.result().sorted_support(), vec![tuple![3i64]]);

        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 2, "B-PER");
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple![3i64]), -1);
        assert_eq!(out.count(&tuple![4i64]), 1);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn global_aggregate_survives_reaching_zero() {
        let mut db = token_db();
        let plan = paper_queries::query2("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        let mut d = DeltaSet::new();
        for tok in [1, 6, 8] {
            relabel(&mut db, &mut d, tok, "O");
        }
        view.apply_delta(&d);
        // COUNT drops to 0 but the row persists (global groups always exist).
        assert_eq!(view.result().sorted_support(), vec![tuple![0i64]]);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn grouped_aggregate_view_query3() {
        let mut db = token_db();
        let plan = paper_queries::query3("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_eq!(
            view.result().sorted_support(),
            vec![tuple![1i64], tuple![3i64]]
        );

        // Make doc 2 balanced by labelling "Boston"(4) B-ORG.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 4, "B-ORG");
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple![2i64]), 1);
        assert_view_matches_exec(&view, &plan, &db);

        // Unbalance doc 1 by adding another person.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 2, "B-PER");
        view.apply_delta(&d);
        assert!(!view.result().contains(&tuple![1i64]));
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn join_view_query4() {
        let mut db = token_db();
        let plan = paper_queries::query4("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_eq!(view.result().sorted_support(), vec![tuple!["Bill"]]);

        // Relabel doc-2 "Boston"(4) to B-ORG → Ann co-occurs.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 4, "B-ORG");
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple!["Ann"]), 1);
        assert_view_matches_exec(&view, &plan, &db);

        // Remove doc-1 Boston's ORG label → Bill leaves the answer.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 3, "B-LOC");
        view.apply_delta(&d);
        assert!(!view.result().contains(&tuple!["Bill"]));
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn distinct_view_tracks_support_crossings() {
        let mut db = token_db();
        let plan = paper_queries::query1("TOKEN").distinct();
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_eq!(view.result().count(&tuple!["Ann"]), 1);

        // Remove one of the two Ann mentions: distinct count unchanged.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 6, "O");
        let out = view.apply_delta(&d);
        assert!(out.is_empty());
        // Remove the second: Ann leaves.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 8, "O");
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple!["Ann"]), -1);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn product_view_maintenance() {
        let mut db = token_db();
        let plan = Plan::scan_as("TOKEN", "A")
            .filter(Expr::col("A.label").eq(Expr::lit("B-ORG")))
            .project(&["A.string"])
            .product(
                Plan::scan_as("TOKEN", "B")
                    .filter(Expr::col("B.label").eq(Expr::lit("B-LOC")))
                    .project(&["B.string"]),
            );
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_view_matches_exec(&view, &plan, &db);

        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 4, "B-ORG"); // moves a tuple across both sides
        view.apply_delta(&d);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn insert_and_delete_tuples_through_view() {
        let mut db = token_db();
        let plan = paper_queries::query1("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();

        let mut d = DeltaSet::new();
        let t = tuple![9i64, 3i64, "Grace", "B-PER", "B-PER"];
        db.relation_mut("TOKEN").unwrap().insert(t.clone()).unwrap();
        d.record_insert(&Arc::from("TOKEN"), t);
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple!["Grace"]), 1);
        assert_view_matches_exec(&view, &plan, &db);

        let mut d = DeltaSet::new();
        let rel = db.relation_mut("TOKEN").unwrap();
        let rid = rel.find_by_pk(&Value::Int(9)).unwrap();
        let gone = rel.delete(rid).unwrap();
        d.record_delete(&Arc::from("TOKEN"), gone);
        view.apply_delta(&d);
        assert!(!view.result().contains(&tuple!["Grace"]));
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn min_max_aggregates_survive_deletion_of_extremum() {
        let mut db = token_db();
        let plan = Plan::scan("TOKEN").aggregate(
            &["doc_id"],
            vec![
                AggExpr::new(AggFunc::Min(Arc::from("tok_id")), "lo"),
                AggExpr::new(AggFunc::Max(Arc::from("tok_id")), "hi"),
            ],
        );
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert!(view.result().contains(&tuple![1i64, 1i64, 3i64]));

        // Delete tok 3 (the max of doc 1); view must fall back to tok 2.
        let mut d = DeltaSet::new();
        let rel = db.relation_mut("TOKEN").unwrap();
        let rid = rel.find_by_pk(&Value::Int(3)).unwrap();
        let gone = rel.delete(rid).unwrap();
        d.record_delete(&Arc::from("TOKEN"), gone);
        view.apply_delta(&d);
        assert!(view.result().contains(&tuple![1i64, 1i64, 2i64]));
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn group_disappears_when_last_row_leaves() {
        let mut db = token_db();
        let plan = Plan::scan("TOKEN")
            .filter(Expr::col("label").eq(Expr::lit("B-PER")))
            .aggregate(&["doc_id"], vec![AggExpr::new(AggFunc::Count, "n")]);
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert!(view.result().contains(&tuple![2i64, 1i64]));

        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 6, "O");
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple![2i64, 1i64]), -1);
        assert!(!view.result().contains(&tuple![2i64, 1i64]));
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn empty_delta_is_cheap_noop() {
        let db = token_db();
        let plan = paper_queries::query4("TOKEN");
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        let before = view.stats();
        let out = view.apply_delta(&DeltaSet::new());
        assert!(out.is_empty());
        let after = view.stats();
        assert_eq!(after.delta_rows_processed, before.delta_rows_processed);
        assert_eq!(after.deltas_applied, before.deltas_applied + 1);
    }

    #[test]
    fn delta_work_is_independent_of_db_size() {
        // The heart of Fig. 4(a): delta application work must not scale with
        // the relation size for selection/projection queries.
        let mut work_small = 0;
        let mut work_large = 0;
        for (n, work) in [(50usize, &mut work_small), (5000usize, &mut work_large)] {
            let mut db = Database::new();
            db.create_relation("TOKEN", token_schema()).unwrap();
            {
                let rel = db.relation_mut("TOKEN").unwrap();
                for i in 0..n {
                    rel.insert(tuple![i as i64, (i / 10) as i64, format!("w{i}"), "O", "O"])
                        .unwrap();
                }
            }
            let plan = paper_queries::query1("TOKEN");
            let mut view = MaterializedView::new(&plan, &db).unwrap();
            let mut d = DeltaSet::new();
            let rel = db.relation_mut("TOKEN").unwrap();
            let rid = rel.find_by_pk(&Value::Int(7)).unwrap();
            let col = rel.schema().index_of("label").unwrap();
            let (old, new) = rel.update_field(rid, col, Value::str("B-PER")).unwrap();
            d.record_update(&Arc::from("TOKEN"), old, new);
            view.apply_delta(&d);
            *work = view.stats().delta_rows_processed;
        }
        assert_eq!(work_small, work_large);
    }

    #[test]
    fn compile_rejects_unknown_relation() {
        let db = token_db();
        let plan = Plan::scan("MISSING");
        assert!(MaterializedView::new(&plan, &db).is_err());
    }

    #[test]
    fn row_id_type_is_reexported_in_tests() {
        // RowId participates in the relabel helper path; keep it referenced.
        let _ = RowId(0);
    }

    #[test]
    fn union_view_adds_multiplicities() {
        let mut db = token_db();
        let plan = paper_queries::query1("TOKEN").union(
            Plan::scan("TOKEN")
                .filter(Expr::col("label").eq(Expr::lit("B-ORG")))
                .project(&["string"]),
        );
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_view_matches_exec(&view, &plan, &db);
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 2, "B-ORG"); // "said" enters via the right arm
        let out = view.apply_delta(&d);
        assert_eq!(out.count(&tuple!["said"]), 1);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn difference_view_monus_semantics() {
        let mut db = token_db();
        // Strings of non-O tokens minus strings of B-PER tokens.
        let plan = Plan::scan("TOKEN")
            .filter(Expr::col("label").ne(Expr::lit("O")))
            .project(&["string"])
            .difference(paper_queries::query1("TOKEN"));
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_view_matches_exec(&view, &plan, &db);
        // "Ann"(6) flips to O: leaves the left side AND the subtrahend.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 6, "O");
        view.apply_delta(&d);
        assert_view_matches_exec(&view, &plan, &db);
        // Flip "Boston"(4) to B-PER: both sides change for one tuple.
        let mut d = DeltaSet::new();
        relabel(&mut db, &mut d, 4, "B-PER");
        view.apply_delta(&d);
        assert_view_matches_exec(&view, &plan, &db);
    }

    #[test]
    fn intersect_view_min_semantics() {
        let mut db = token_db();
        let plan = Plan::scan("TOKEN")
            .filter(Expr::col("label").ne(Expr::lit("O")))
            .project(&["string"])
            .intersect(
                Plan::scan("TOKEN")
                    .filter(Expr::col("doc_id").le(Expr::lit(2i64)))
                    .project(&["string"]),
            );
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        assert_view_matches_exec(&view, &plan, &db);
        for (tok, label) in [(7, "O"), (1, "O"), (5, "B-LOC")] {
            let mut d = DeltaSet::new();
            relabel(&mut db, &mut d, tok, label);
            view.apply_delta(&d);
            assert_view_matches_exec(&view, &plan, &db);
        }
    }

    #[test]
    fn set_op_arity_mismatch_rejected() {
        let db = token_db();
        let plan = Plan::scan("TOKEN")
            .project(&["string"])
            .union(Plan::scan_as("TOKEN", "B").project(&["B.string", "B.doc_id"]));
        assert!(MaterializedView::new(&plan, &db).is_err());
    }
}
