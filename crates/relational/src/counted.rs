//! Counted multisets of tuples.
//!
//! §4.2 of the paper remarks that in the presence of projections the set
//! difference/union of Eq. 6 "actually requires multiset semantics, because
//! counters need to be maintained" (Blakeley et al.). [`CountedSet`] is that
//! structure: a map from tuple to signed multiplicity. Deltas are represented
//! as counted sets with negative entries for removals, which makes delta
//! propagation through the operator tree a sequence of signed merges.

use crate::fasthash::FxHashMap;
use crate::tuple::Tuple;
use std::collections::hash_map;

/// A multiset of tuples with signed multiplicities.
///
/// Invariant: no entry has multiplicity zero (entries cancel out on merge).
/// A *relation state* has only positive multiplicities; a *delta* may have
/// entries of either sign.
///
/// Backed by an [`FxHashMap`] keyed on the tuples' cached fingerprints:
/// adding a tuple hashes one `u64`, not the row contents. An empty set
/// performs no heap allocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountedSet {
    counts: FxHashMap<Tuple, i64>,
}

impl CountedSet {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty multiset with capacity.
    pub fn with_capacity(n: usize) -> Self {
        CountedSet {
            counts: FxHashMap::with_capacity_and_hasher(n, Default::default()),
        }
    }

    /// Builds a state from tuples, each with multiplicity one per occurrence.
    pub fn from_tuples<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut s = CountedSet::new();
        for t in iter {
            s.add(t, 1);
        }
        s
    }

    /// Adds `delta` to the multiplicity of `tuple`, removing the entry when
    /// it cancels to zero. Returns the new multiplicity.
    pub fn add(&mut self, tuple: Tuple, delta: i64) -> i64 {
        if delta == 0 {
            return self.count(&tuple);
        }
        match self.counts.entry(tuple) {
            hash_map::Entry::Occupied(mut e) => {
                let c = e.get_mut();
                *c += delta;
                if *c == 0 {
                    e.remove();
                    0
                } else {
                    *c
                }
            }
            hash_map::Entry::Vacant(e) => {
                e.insert(delta);
                delta
            }
        }
    }

    /// Multiplicity of a tuple (zero when absent).
    pub fn count(&self, tuple: &Tuple) -> i64 {
        self.counts.get(tuple).copied().unwrap_or(0)
    }

    /// True when the tuple has positive multiplicity ("in the answer set").
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.count(tuple) > 0
    }

    /// Number of distinct tuples with nonzero multiplicity.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Sum of all multiplicities (may be negative for deltas).
    pub fn total(&self) -> i64 {
        self.counts.values().sum()
    }

    /// True when no entries remain.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(tuple, multiplicity)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.counts.iter().map(|(t, &c)| (t, c))
    }

    /// Iterates only tuples with positive multiplicity — the answer-set view
    /// used when reporting marginals (the paper's `count(mᵢ) > 0` test).
    pub fn support(&self) -> impl Iterator<Item = &Tuple> {
        self.counts.iter().filter(|(_, &c)| c > 0).map(|(t, _)| t)
    }

    /// Merges another counted set into this one (signed union).
    pub fn merge(&mut self, other: &CountedSet) {
        for (t, c) in other.iter() {
            self.add(t.clone(), c);
        }
    }

    /// Merges, consuming the other set (avoids tuple clones).
    pub fn merge_owned(&mut self, other: CountedSet) {
        if self.counts.is_empty() {
            self.counts = other.counts;
            return;
        }
        for (t, c) in other.counts {
            self.add(t, c);
        }
    }

    /// Returns `self - other` as a new counted set.
    pub fn minus(&self, other: &CountedSet) -> CountedSet {
        let mut out = self.clone();
        for (t, c) in other.iter() {
            out.add(t.clone(), -c);
        }
        out
    }

    /// Negates every multiplicity (turns Δ⁺ into Δ⁻ and vice versa).
    pub fn negated(&self) -> CountedSet {
        CountedSet {
            counts: self.counts.iter().map(|(t, c)| (t.clone(), -c)).collect(),
        }
    }

    /// Sorted snapshot of the positive support (deterministic, for tests and
    /// experiment output).
    pub fn sorted_support(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.support().cloned().collect();
        v.sort();
        v
    }

    /// Sorted `(tuple, count)` snapshot of all entries.
    pub fn sorted_entries(&self) -> Vec<(Tuple, i64)> {
        let mut v: Vec<(Tuple, i64)> = self.iter().map(|(t, c)| (t.clone(), c)).collect();
        v.sort();
        v
    }

    /// Asserts the state invariant: all multiplicities strictly positive.
    /// Returns the first offending entry, if any.
    pub fn check_is_state(&self) -> Option<(&Tuple, i64)> {
        self.counts
            .iter()
            .find(|(_, &c)| c <= 0)
            .map(|(t, &c)| (t, c))
    }
}

impl FromIterator<Tuple> for CountedSet {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        CountedSet::from_tuples(iter)
    }
}

impl<'a> IntoIterator for &'a CountedSet {
    type Item = (&'a Tuple, &'a i64);
    type IntoIter = hash_map::Iter<'a, Tuple, i64>;
    fn into_iter(self) -> Self::IntoIter {
        self.counts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn add_and_cancel() {
        let mut s = CountedSet::new();
        assert_eq!(s.add(tuple!["a"], 2), 2);
        assert_eq!(s.add(tuple!["a"], -2), 0);
        assert!(s.is_empty());
        assert_eq!(s.count(&tuple!["a"]), 0);
    }

    #[test]
    fn zero_delta_is_noop() {
        let mut s = CountedSet::new();
        s.add(tuple!["a"], 0);
        assert!(s.is_empty());
    }

    #[test]
    fn contains_requires_positive() {
        let mut s = CountedSet::new();
        s.add(tuple!["a"], -1);
        assert!(!s.contains(&tuple!["a"]));
        assert_eq!(s.distinct_len(), 1);
        s.add(tuple!["a"], 2);
        assert!(s.contains(&tuple!["a"]));
    }

    #[test]
    fn from_tuples_counts_duplicates() {
        let s = CountedSet::from_tuples(vec![tuple!["x"], tuple!["x"], tuple!["y"]]);
        assert_eq!(s.count(&tuple!["x"]), 2);
        assert_eq!(s.count(&tuple!["y"]), 1);
        assert_eq!(s.total(), 3);
        assert!(s.check_is_state().is_none());
    }

    #[test]
    fn merge_cancels() {
        let mut a = CountedSet::from_tuples(vec![tuple!["x"], tuple!["y"]]);
        let mut d = CountedSet::new();
        d.add(tuple!["x"], -1);
        d.add(tuple!["z"], 1);
        a.merge(&d);
        assert_eq!(a.count(&tuple!["x"]), 0);
        assert_eq!(a.count(&tuple!["y"]), 1);
        assert_eq!(a.count(&tuple!["z"]), 1);
    }

    #[test]
    fn merge_owned_fast_path() {
        let mut a = CountedSet::new();
        let b = CountedSet::from_tuples(vec![tuple!["x"]]);
        a.merge_owned(b);
        assert_eq!(a.count(&tuple!["x"]), 1);
        let c = CountedSet::from_tuples(vec![tuple!["x"]]);
        a.merge_owned(c);
        assert_eq!(a.count(&tuple!["x"]), 2);
    }

    #[test]
    fn minus_and_negated() {
        let a = CountedSet::from_tuples(vec![tuple!["x"], tuple!["x"]]);
        let b = CountedSet::from_tuples(vec![tuple!["x"], tuple!["y"]]);
        let d = a.minus(&b);
        assert_eq!(d.count(&tuple!["x"]), 1);
        assert_eq!(d.count(&tuple!["y"]), -1);
        let n = d.negated();
        assert_eq!(n.count(&tuple!["x"]), -1);
        assert_eq!(n.count(&tuple!["y"]), 1);
        assert!(n.check_is_state().is_some());
    }

    #[test]
    fn support_excludes_negative() {
        let mut s = CountedSet::new();
        s.add(tuple!["pos"], 1);
        s.add(tuple!["neg"], -1);
        let sup: Vec<_> = s.sorted_support();
        assert_eq!(sup, vec![tuple!["pos"]]);
    }

    #[test]
    fn sorted_entries_deterministic() {
        let mut s = CountedSet::new();
        s.add(tuple!["b"], 1);
        s.add(tuple!["a"], 2);
        assert_eq!(s.sorted_entries(), vec![(tuple!["a"], 2), (tuple!["b"], 1)]);
    }
}
