//! The database: a catalog of named relations.
//!
//! Per §3 of the paper, "the underlying relational database always stores a
//! single possible world". [`Database`] is that world. MCMC mutates it in
//! place through [`Database::relation_mut`]; query evaluators read it.

use crate::schema::Schema;
use crate::storage::{Relation, StorageError};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors raised by catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// No relation with this name.
    UnknownRelation(String),
    /// Underlying storage failure.
    Storage(StorageError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateRelation(n) => write!(f, "relation `{n}` already exists"),
            CatalogError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            CatalogError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<StorageError> for CatalogError {
    fn from(e: StorageError) -> Self {
        CatalogError::Storage(e)
    }
}

/// A deterministic database instance: one possible world.
///
/// Cloning deep-snapshots every relation (see [`Relation::snapshot`]) — the
/// replication primitive behind §5.4's parallel query evaluation, where each
/// chain mutates its own "identical copy of the initial world".
#[derive(Clone, Default)]
pub struct Database {
    relations: BTreeMap<Arc<str>, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a relation with the given schema.
    pub fn create_relation(
        &mut self,
        name: impl Into<Arc<str>>,
        schema: Schema,
    ) -> Result<&mut Relation, CatalogError> {
        let name = name.into();
        if self.relations.contains_key(&name) {
            return Err(CatalogError::DuplicateRelation(name.to_string()));
        }
        let rel = Relation::new(Arc::clone(&name), schema);
        Ok(self.relations.entry(name).or_insert(rel))
    }

    /// Drops a relation, returning it.
    pub fn drop_relation(&mut self, name: &str) -> Result<Relation, CatalogError> {
        self.relations
            .remove(name)
            .ok_or_else(|| CatalogError::UnknownRelation(name.to_string()))
    }

    /// Immutable access to a relation.
    pub fn relation(&self, name: &str) -> Result<&Relation, CatalogError> {
        self.relations
            .get(name)
            .ok_or_else(|| CatalogError::UnknownRelation(name.to_string()))
    }

    /// Mutable access to a relation (the MCMC write path).
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation, CatalogError> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| CatalogError::UnknownRelation(name.to_string()))
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> impl Iterator<Item = &Arc<str>> {
        self.relations.keys()
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Total live tuples across relations (the "#tuples" axis of Fig. 4a).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Deep snapshot: an independent copy of the whole stored world, row ids
    /// and indexes included. Named alias of `Clone` marking intent.
    pub fn snapshot(&self) -> Database {
        self.clone()
    }

    /// Installs an already-built relation under its own name — the
    /// deserialization path, where relations are rebuilt slot-for-slot via
    /// [`Relation::from_raw_parts`] rather than grown through
    /// [`Database::create_relation`].
    pub fn adopt_relation(&mut self, rel: Relation) -> Result<(), CatalogError> {
        if self.relations.contains_key(rel.name()) {
            return Err(CatalogError::DuplicateRelation(rel.name().to_string()));
        }
        self.relations.insert(Arc::clone(rel.name()), rel);
        Ok(())
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Database");
        for (n, r) in &self.relations {
            d.field(n, &r.len());
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", ValueType::Int), ("s", ValueType::Str)])
            .unwrap()
            .with_primary_key("id")
            .unwrap()
    }

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_relation("T", schema()).unwrap();
        assert!(db.relation("T").is_ok());
        assert!(matches!(
            db.relation("U"),
            Err(CatalogError::UnknownRelation(_))
        ));
        assert_eq!(db.relation_count(), 1);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = Database::new();
        db.create_relation("T", schema()).unwrap();
        assert!(matches!(
            db.create_relation("T", schema()),
            Err(CatalogError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn total_tuples_spans_relations() {
        let mut db = Database::new();
        db.create_relation("A", schema()).unwrap();
        db.create_relation("B", schema()).unwrap();
        db.relation_mut("A")
            .unwrap()
            .insert(tuple![1i64, "x"])
            .unwrap();
        db.relation_mut("B")
            .unwrap()
            .insert(tuple![1i64, "y"])
            .unwrap();
        db.relation_mut("B")
            .unwrap()
            .insert(tuple![2i64, "z"])
            .unwrap();
        assert_eq!(db.total_tuples(), 3);
    }

    #[test]
    fn snapshot_isolates_worlds() {
        let mut db = Database::new();
        db.create_relation("T", schema()).unwrap();
        let rid = db
            .relation_mut("T")
            .unwrap()
            .insert(tuple![1i64, "x"])
            .unwrap();

        let mut snap = db.snapshot();
        snap.relation_mut("T")
            .unwrap()
            .update_field(rid, 1, crate::value::Value::str("y"))
            .unwrap();
        snap.create_relation("U", schema()).unwrap();

        // Original world is untouched by replica writes and DDL.
        assert_eq!(
            db.relation("T").unwrap().get(rid).unwrap().get(1).as_str(),
            Some("x")
        );
        assert!(db.relation("U").is_err());
        assert_eq!(
            snap.relation("T")
                .unwrap()
                .get(rid)
                .unwrap()
                .get(1)
                .as_str(),
            Some("y")
        );
    }

    #[test]
    fn adopt_relation_installs_and_rejects_duplicates() {
        let mut db = Database::new();
        let mut r = Relation::new("T", schema());
        r.insert(tuple![1i64, "x"]).unwrap();
        db.adopt_relation(r).unwrap();
        assert_eq!(db.relation("T").unwrap().len(), 1);
        assert!(matches!(
            db.adopt_relation(Relation::new("T", schema())),
            Err(CatalogError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn drop_relation() {
        let mut db = Database::new();
        db.create_relation("T", schema()).unwrap();
        let r = db.drop_relation("T").unwrap();
        assert_eq!(&**r.name(), "T");
        assert!(db.drop_relation("T").is_err());
    }

    #[test]
    fn relation_names_sorted() {
        let mut db = Database::new();
        db.create_relation("B", schema()).unwrap();
        db.create_relation("A", schema()).unwrap();
        let names: Vec<_> = db.relation_names().map(|n| n.to_string()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }
}
