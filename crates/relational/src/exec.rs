//! Full (from-scratch) query execution.
//!
//! This is the executor the *naive* sampling evaluator of Algorithm 3 calls
//! on every sampled world: it recomputes `Q(w)` by scanning base relations.
//! Its cost is Θ(|w|) per evaluation, which is exactly the cost the
//! view-maintenance evaluator (Algorithm 1 / [`crate::view`]) amortizes away.
//!
//! The executor reports [`ExecStats`] — tuples scanned and rows processed —
//! so experiments can compare *work* as well as wall-clock time between the
//! two evaluators, independent of machine speed.

use crate::algebra::{AggExpr, AggFunc, Plan, PlanError};
use crate::counted::CountedSet;
use crate::database::Database;
use crate::expr::{resolve_column, BoundExpr, Expr};
use crate::fasthash::FxHashMap;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Work counters for one query execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Base tuples read from storage (scan or index probe results).
    pub tuples_scanned: u64,
    /// Intermediate rows processed by operators above the scans.
    pub rows_processed: u64,
    /// Distinct tuples *constructed* into intermediate results by
    /// tuple-building operators (π, ×, ⋈, γ, δ, ∪, ∖, ∩). Scans and
    /// selections pass existing tuples through and do not count. This is
    /// the metric the [`crate::planner`] optimizer provably never
    /// increases: pushing a selection below a tuple-building operator can
    /// only shrink that operator's output.
    pub intermediate_tuples: u64,
}

impl ExecStats {
    /// Accumulates another stats record.
    pub fn absorb(&mut self, other: ExecStats) {
        self.tuples_scanned += other.tuples_scanned;
        self.rows_processed += other.rows_processed;
        self.intermediate_tuples += other.intermediate_tuples;
    }
}

/// A fully evaluated query answer: named columns and a counted multiset of
/// rows (multiset semantics per §4.2 of the paper).
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<Arc<str>>,
    /// Multiset of answer rows.
    pub rows: CountedSet,
}

impl QueryResult {
    /// Distinct answer tuples, sorted (deterministic reporting order).
    pub fn sorted_support(&self) -> Vec<Tuple> {
        self.rows.sorted_support()
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<_> = self.columns.iter().map(|c| c.to_string()).collect();
        writeln!(f, "{}", names.join(" | "))?;
        for t in self.rows.sorted_support() {
            let c = self.rows.count(&t);
            if c == 1 {
                writeln!(f, "{t}")?;
            } else {
                writeln!(f, "{t} ×{c}")?;
            }
        }
        Ok(())
    }
}

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Plan failed validation or binding.
    Plan(PlanError),
    /// A [`Plan::Fixpoint`] failed to converge within its iteration cap
    /// (divergent recursion — e.g. `UNION ALL` over a cyclic graph, or a
    /// non-monotone recursive term).
    FixpointLimit {
        /// The configured iteration cap that was exceeded.
        cap: usize,
    },
    /// A [`Plan::Rec`] leaf appeared outside any enclosing fixpoint binding
    /// its name.
    UnboundRecursion(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Plan(p) => write!(f, "plan error: {p}"),
            ExecError::FixpointLimit { cap } => {
                write!(f, "recursive query exceeded the iteration cap ({cap})")
            }
            ExecError::UnboundRecursion(name) => {
                write!(f, "recursive reference `{name}` outside its fixpoint")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<PlanError> for ExecError {
    fn from(p: PlanError) -> Self {
        ExecError::Plan(p)
    }
}

/// Executes a plan against the database, returning the answer multiset and
/// work statistics.
pub fn execute(plan: &Plan, db: &Database) -> Result<(QueryResult, ExecStats), ExecError> {
    let mut stats = ExecStats::default();
    let columns = plan.output_columns(db)?;
    let rows = eval(plan, db, None, &mut stats)?;
    Ok((QueryResult { columns, rows }, stats))
}

/// Executes a plan, discarding stats (convenience for tests and examples).
pub fn execute_simple(plan: &Plan, db: &Database) -> Result<QueryResult, ExecError> {
    execute(plan, db).map(|(r, _)| r)
}

/// One frame of the recursion environment: inside a fixpoint's step, the
/// recursive relation name is bound to the tuples accumulated so far.
/// Frames form a borrow-stack so nested fixpoints shadow correctly.
struct RecFrame<'a> {
    parent: Option<&'a RecFrame<'a>>,
    name: &'a str,
    rows: &'a CountedSet,
}

fn rec_lookup<'a>(env: Option<&'a RecFrame<'a>>, name: &str) -> Option<&'a CountedSet> {
    let mut cur = env;
    while let Some(frame) = cur {
        if frame.name == name {
            return Some(frame.rows);
        }
        cur = frame.parent;
    }
    None
}

fn eval(
    plan: &Plan,
    db: &Database,
    env: Option<&RecFrame<'_>>,
    stats: &mut ExecStats,
) -> Result<CountedSet, ExecError> {
    match plan {
        Plan::Scan { relation, .. } => {
            let rel = db
                .relation(relation)
                .map_err(|_| PlanError::UnknownRelation(relation.to_string()))?;
            stats.tuples_scanned += rel.len() as u64;
            Ok(CountedSet::from_tuples(rel.tuples().cloned()))
        }
        Plan::Select { input, predicate } => {
            // Index fast path: σ_{col = lit} directly over a scan probes the
            // secondary index when one exists (the paper's experiments run
            // without an index on STRING, so Query 1 takes the scan path).
            if let Plan::Scan { relation, .. } = &**input {
                if let Some(set) = try_index_probe(relation, predicate, input, db, stats)? {
                    return Ok(set);
                }
            }
            let in_cols = input.output_columns(db)?;
            let bound = bind(predicate, &in_cols)?;
            let rows = eval(input, db, env, stats)?;
            let mut out = CountedSet::new();
            for (t, c) in rows.iter() {
                stats.rows_processed += 1;
                if bound.matches(t) {
                    out.add(t.clone(), c);
                }
            }
            Ok(out)
        }
        Plan::Project { input, columns } => {
            let in_cols = input.output_columns(db)?;
            let indices = resolve_all(columns, &in_cols)?;
            let rows = eval(input, db, env, stats)?;
            let mut out = CountedSet::new();
            for (t, c) in rows.iter() {
                stats.rows_processed += 1;
                out.add(t.project(&indices), c);
            }
            stats.intermediate_tuples += out.distinct_len() as u64;
            Ok(out)
        }
        Plan::Product { left, right } => {
            let l = eval(left, db, env, stats)?;
            let r = eval(right, db, env, stats)?;
            let mut out = CountedSet::new();
            for (lt, lc) in l.iter() {
                for (rt, rc) in r.iter() {
                    stats.rows_processed += 1;
                    out.add(lt.concat(rt), lc * rc);
                }
            }
            stats.intermediate_tuples += out.distinct_len() as u64;
            Ok(out)
        }
        Plan::Join { left, right, on } => {
            let l_cols = left.output_columns(db)?;
            let r_cols = right.output_columns(db)?;
            let (lk, rk) = join_key_indices(on, &l_cols, &r_cols)?;
            let l = eval(left, db, env, stats)?;
            let r = eval(right, db, env, stats)?;
            // Hash join: build on the right, probe with the left. The table
            // keys hash via the tuples' cached fingerprints (see fasthash).
            let mut table: FxHashMap<Tuple, Vec<(&Tuple, i64)>> = FxHashMap::default();
            for (rt, rc) in r.iter() {
                table.entry(rt.project(&rk)).or_default().push((rt, rc));
            }
            let mut out = CountedSet::new();
            for (lt, lc) in l.iter() {
                stats.rows_processed += 1;
                let key = lt.project(&lk);
                if key.values().iter().any(Value::is_null) {
                    continue; // NULL never joins
                }
                if let Some(matches) = table.get(&key) {
                    for (rt, rc) in matches {
                        stats.rows_processed += 1;
                        out.add(lt.concat(rt), lc * rc);
                    }
                }
            }
            stats.intermediate_tuples += out.distinct_len() as u64;
            Ok(out)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let in_cols = input.output_columns(db)?;
            let group_idx = resolve_all(group_by, &in_cols)?;
            let specs = bind_aggs(aggs, &in_cols)?;
            let rows = eval(input, db, env, stats)?;
            let mut groups: FxHashMap<Tuple, Vec<AggAcc>> = FxHashMap::default();
            for (t, c) in rows.iter() {
                stats.rows_processed += 1;
                let key = t.project(&group_idx);
                let accs = groups
                    .entry(key)
                    .or_insert_with(|| specs.iter().map(AggAcc::new).collect());
                for (acc, spec) in accs.iter_mut().zip(&specs) {
                    acc.update(spec, t, c);
                }
            }
            // A global aggregate over an empty input still emits one row.
            if group_idx.is_empty() && groups.is_empty() {
                groups.insert(Tuple::new(vec![]), specs.iter().map(AggAcc::new).collect());
            }
            let mut out = CountedSet::new();
            for (key, accs) in groups {
                let mut vals: Vec<Value> = key.values().to_vec();
                vals.extend(accs.iter().map(AggAcc::finish));
                out.add(Tuple::new(vals), 1);
            }
            stats.intermediate_tuples += out.distinct_len() as u64;
            Ok(out)
        }
        Plan::Distinct { input } => {
            let rows = eval(input, db, env, stats)?;
            let mut out = CountedSet::new();
            for t in rows.support() {
                stats.rows_processed += 1;
                out.add(t.clone(), 1);
            }
            stats.intermediate_tuples += out.distinct_len() as u64;
            Ok(out)
        }
        Plan::Union { left, right } => {
            let mut l = eval(left, db, env, stats)?;
            let r = eval(right, db, env, stats)?;
            stats.rows_processed += r.distinct_len() as u64;
            l.merge_owned(r);
            stats.intermediate_tuples += l.distinct_len() as u64;
            Ok(l)
        }
        Plan::Difference { left, right } => {
            let l = eval(left, db, env, stats)?;
            let r = eval(right, db, env, stats)?;
            let mut out = CountedSet::new();
            for (t, lc) in l.iter() {
                stats.rows_processed += 1;
                let c = (lc - r.count(t)).max(0);
                out.add(t.clone(), c);
            }
            stats.intermediate_tuples += out.distinct_len() as u64;
            Ok(out)
        }
        Plan::Intersect { left, right } => {
            let l = eval(left, db, env, stats)?;
            let r = eval(right, db, env, stats)?;
            let mut out = CountedSet::new();
            for (t, lc) in l.iter() {
                stats.rows_processed += 1;
                let c = lc.min(r.count(t)).max(0);
                out.add(t.clone(), c);
            }
            stats.intermediate_tuples += out.distinct_len() as u64;
            Ok(out)
        }
        Plan::Fixpoint {
            base,
            step,
            rec,
            all,
            cap,
            ..
        } => {
            let base_rows = eval(base, db, env, stats)?;
            let rows = if *all {
                // Bag semantics (UNION ALL): working-table iteration. The
                // answer is the sum of every step application; on cyclic
                // data the working table never empties and the cap fires.
                let mut acc = base_rows.clone();
                let mut working = base_rows;
                let mut iters = 0usize;
                while !working.is_empty() {
                    iters += 1;
                    if iters > *cap {
                        return Err(ExecError::FixpointLimit { cap: *cap });
                    }
                    let produced = {
                        let frame = RecFrame {
                            parent: env,
                            name: rec,
                            rows: &working,
                        };
                        eval(step, db, Some(&frame), stats)?
                    };
                    acc.merge(&produced);
                    working = produced;
                }
                acc
            } else {
                // Set semantics (UNION): iterated naive fixpoint, the
                // differential oracle for the circuit's semi-naive variant.
                // Rᵢ₊₁ = δ(base ∪ step(Rᵢ)); stop when nothing new appears.
                let mut acc = CountedSet::new();
                for t in base_rows.support() {
                    acc.add(t.clone(), 1);
                }
                let mut iters = 0usize;
                loop {
                    iters += 1;
                    if iters > *cap {
                        return Err(ExecError::FixpointLimit { cap: *cap });
                    }
                    let produced = {
                        let frame = RecFrame {
                            parent: env,
                            name: rec,
                            rows: &acc,
                        };
                        eval(step, db, Some(&frame), stats)?
                    };
                    let mut grew = false;
                    for t in produced.support() {
                        if !acc.contains(t) {
                            acc.add(t.clone(), 1);
                            grew = true;
                        }
                    }
                    if !grew {
                        break;
                    }
                }
                acc
            };
            stats.intermediate_tuples += rows.distinct_len() as u64;
            Ok(rows)
        }
        Plan::Rec { name, .. } => match rec_lookup(env, name) {
            Some(rows) => {
                stats.rows_processed += rows.distinct_len() as u64;
                Ok(rows.clone())
            }
            None => Err(ExecError::UnboundRecursion(name.to_string())),
        },
    }
}

fn bind(expr: &Expr, cols: &[Arc<str>]) -> Result<BoundExpr, ExecError> {
    expr.bind(cols)
        .map_err(|c| ExecError::Plan(PlanError::UnknownColumn(c)))
}

fn resolve_all(names: &[Arc<str>], cols: &[Arc<str>]) -> Result<Vec<usize>, ExecError> {
    names
        .iter()
        .map(|n| {
            resolve_column(cols, n)
                .ok_or_else(|| ExecError::Plan(PlanError::UnknownColumn(n.to_string())))
        })
        .collect()
}

/// Resolved join keys `(left positions, right positions)`.
pub(crate) fn join_key_indices(
    on: &[(Arc<str>, Arc<str>)],
    l_cols: &[Arc<str>],
    r_cols: &[Arc<str>],
) -> Result<(Vec<usize>, Vec<usize>), ExecError> {
    let mut lk = Vec::with_capacity(on.len());
    let mut rk = Vec::with_capacity(on.len());
    for (l, r) in on {
        lk.push(
            resolve_column(l_cols, l)
                .ok_or_else(|| ExecError::Plan(PlanError::UnknownColumn(l.to_string())))?,
        );
        rk.push(
            resolve_column(r_cols, r)
                .ok_or_else(|| ExecError::Plan(PlanError::UnknownColumn(r.to_string())))?,
        );
    }
    Ok((lk, rk))
}

/// Bound aggregate specification shared by the executor and the view layer.
#[derive(Clone, Debug)]
pub(crate) struct AggSpec {
    pub kind: AggKind,
    pub filter: Option<BoundExpr>,
}

#[derive(Clone, Debug)]
pub(crate) enum AggKind {
    Count,
    Sum(usize),
    Min(usize),
    Max(usize),
}

pub(crate) fn bind_aggs(aggs: &[AggExpr], cols: &[Arc<str>]) -> Result<Vec<AggSpec>, ExecError> {
    aggs.iter()
        .map(|a| {
            let kind = match &a.func {
                AggFunc::Count => AggKind::Count,
                AggFunc::Sum(c) => AggKind::Sum(
                    resolve_column(cols, c)
                        .ok_or_else(|| ExecError::Plan(PlanError::UnknownColumn(c.to_string())))?,
                ),
                AggFunc::Min(c) => AggKind::Min(
                    resolve_column(cols, c)
                        .ok_or_else(|| ExecError::Plan(PlanError::UnknownColumn(c.to_string())))?,
                ),
                AggFunc::Max(c) => AggKind::Max(
                    resolve_column(cols, c)
                        .ok_or_else(|| ExecError::Plan(PlanError::UnknownColumn(c.to_string())))?,
                ),
            };
            let filter = match &a.filter {
                Some(f) => Some(
                    f.bind(cols)
                        .map_err(|c| ExecError::Plan(PlanError::UnknownColumn(c)))?,
                ),
                None => None,
            };
            Ok(AggSpec { kind, filter })
        })
        .collect()
}

/// Incremental aggregate accumulator (also used by the view layer, where
/// updates arrive with negative multiplicities on deletion).
#[derive(Clone, Debug)]
pub(crate) enum AggAcc {
    Count(i64),
    /// SUM keeps an exact `i128` accumulator for integer inputs (a delta
    /// stream can push partial sums far past 2⁵³, where an `f64` would
    /// silently round) and a separate float accumulator for float inputs.
    Sum {
        int: i128,
        float: f64,
        n: i64,
        saw_float: bool,
    },
    /// Min/Max keep a multiset of values so deletions can be undone.
    /// Retractions of never-seen values (Δ⁻ arriving before its Δ⁺ inside
    /// one view-maintenance batch) legitimately drive entries negative;
    /// such entries are bookkeeping only and must never win `finish`.
    Extremum {
        values: std::collections::BTreeMap<Value, i64>,
        max: bool,
    },
}

impl AggAcc {
    pub fn new(spec: &AggSpec) -> AggAcc {
        match spec.kind {
            AggKind::Count => AggAcc::Count(0),
            AggKind::Sum(_) => AggAcc::Sum {
                int: 0,
                float: 0.0,
                n: 0,
                saw_float: false,
            },
            AggKind::Min(_) => AggAcc::Extremum {
                values: Default::default(),
                max: false,
            },
            AggKind::Max(_) => AggAcc::Extremum {
                values: Default::default(),
                max: true,
            },
        }
    }

    /// Applies one input row with signed multiplicity `mult`.
    pub fn update(&mut self, spec: &AggSpec, row: &Tuple, mult: i64) {
        if let Some(f) = &spec.filter {
            if !f.matches(row) {
                return;
            }
        }
        match (self, &spec.kind) {
            (AggAcc::Count(n), AggKind::Count) => *n += mult,
            (
                AggAcc::Sum {
                    int,
                    float,
                    n,
                    saw_float,
                },
                AggKind::Sum(col),
            ) => match row.get(*col) {
                Value::Int(v) => {
                    *int += *v as i128 * mult as i128;
                    *n += mult;
                }
                Value::Float(f) => {
                    *float += f.get() * mult as f64;
                    *saw_float = true;
                    *n += mult;
                }
                // NULLs and non-numeric values are skipped, as before.
                _ => {}
            },
            (AggAcc::Extremum { values, .. }, AggKind::Min(col) | AggKind::Max(col)) => {
                let v = row.get(*col);
                if !v.is_null() {
                    let e = values.entry(v.clone()).or_insert(0);
                    *e += mult;
                    if *e == 0 {
                        values.remove(v);
                    }
                }
            }
            _ => unreachable!("accumulator/spec mismatch"),
        }
    }

    /// Current aggregate value.
    pub fn finish(&self) -> Value {
        match self {
            AggAcc::Count(n) => Value::Int(*n),
            AggAcc::Sum {
                int,
                float,
                n,
                saw_float,
            } => {
                if *n == 0 {
                    Value::Null
                } else if *saw_float {
                    // Mixed or float column: float semantics.
                    Value::float(*int as f64 + *float)
                } else {
                    // Pure integer column: exact. Only a sum that genuinely
                    // overflows i64 falls back to an approximate float.
                    match i64::try_from(*int) {
                        Ok(v) => Value::Int(v),
                        Err(_) => Value::float(*int as f64),
                    }
                }
            }
            AggAcc::Extremum { values, max } => {
                // Only entries with positive multiplicity are real members
                // of the group; negative entries are pending retractions of
                // values whose matching insertion has not been seen yet.
                let mut live = values.iter().filter(|(_, c)| **c > 0);
                let pick = if *max { live.next_back() } else { live.next() };
                match pick {
                    Some((v, _)) => v.clone(),
                    None => Value::Null,
                }
            }
        }
    }
}

/// Attempts an index probe for `σ_{col = lit}(Scan)`. Returns `Ok(None)` when
/// no usable index exists.
fn try_index_probe(
    relation: &Arc<str>,
    predicate: &Expr,
    scan: &Plan,
    db: &Database,
    stats: &mut ExecStats,
) -> Result<Option<CountedSet>, ExecError> {
    let rel = db
        .relation(relation)
        .map_err(|_| PlanError::UnknownRelation(relation.to_string()))?;
    // Only a single top-level `col = literal` comparison qualifies.
    let (col_name, lit) = match predicate {
        Expr::Cmp(crate::expr::CmpOp::Eq, a, b) => match (&**a, &**b) {
            (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => {
                (Arc::clone(c), v.clone())
            }
            _ => return Ok(None),
        },
        _ => return Ok(None),
    };
    let cols = scan.output_columns(db)?;
    let Some(idx) = resolve_column(&cols, &col_name) else {
        return Err(ExecError::Plan(PlanError::UnknownColumn(
            col_name.to_string(),
        )));
    };
    let Some(rows) = rel.index_lookup(idx, &lit) else {
        return Ok(None);
    };
    let mut out = CountedSet::new();
    for rid in rows {
        if let Some(t) = rel.get(*rid) {
            stats.tuples_scanned += 1;
            out.add(t.clone(), 1);
        }
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::paper_queries;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType;

    /// Small TOKEN world used across executor tests:
    /// doc 1: "Bill"(B-PER) "said"(O) "Boston"(B-ORG)
    /// doc 2: "Boston"(B-LOC) "hired"(O) "Ann"(B-PER)
    /// doc 3: "IBM"(B-ORG) "Ann"(B-PER)
    fn token_db() -> Database {
        let mut db = Database::new();
        let schema = Schema::from_pairs(&[
            ("tok_id", ValueType::Int),
            ("doc_id", ValueType::Int),
            ("string", ValueType::Str),
            ("label", ValueType::Str),
            ("truth", ValueType::Str),
        ])
        .unwrap()
        .with_primary_key("tok_id")
        .unwrap();
        db.create_relation("TOKEN", schema).unwrap();
        let rows = vec![
            (1, 1, "Bill", "B-PER"),
            (2, 1, "said", "O"),
            (3, 1, "Boston", "B-ORG"),
            (4, 2, "Boston", "B-LOC"),
            (5, 2, "hired", "O"),
            (6, 2, "Ann", "B-PER"),
            (7, 3, "IBM", "B-ORG"),
            (8, 3, "Ann", "B-PER"),
        ];
        let rel = db.relation_mut("TOKEN").unwrap();
        for (id, doc, s, l) in rows {
            rel.insert(tuple![id as i64, doc as i64, s, l, l]).unwrap();
        }
        db
    }

    #[test]
    fn query1_selects_person_strings() {
        let db = token_db();
        let (res, stats) = execute(&paper_queries::query1("TOKEN"), &db).unwrap();
        // Multiset: Ann appears twice.
        assert_eq!(res.rows.count(&tuple!["Ann"]), 2);
        assert_eq!(res.rows.count(&tuple!["Bill"]), 1);
        assert_eq!(res.rows.distinct_len(), 2);
        assert_eq!(stats.tuples_scanned, 8);
    }

    #[test]
    fn query2_counts_persons() {
        let db = token_db();
        let res = execute_simple(&paper_queries::query2("TOKEN"), &db).unwrap();
        assert_eq!(res.rows.sorted_support(), vec![tuple![3i64]]);
    }

    #[test]
    fn query2_on_empty_database_yields_zero_row() {
        let mut db = Database::new();
        let schema = Schema::from_pairs(&[
            ("tok_id", ValueType::Int),
            ("doc_id", ValueType::Int),
            ("string", ValueType::Str),
            ("label", ValueType::Str),
            ("truth", ValueType::Str),
        ])
        .unwrap();
        db.create_relation("TOKEN", schema).unwrap();
        let res = execute_simple(&paper_queries::query2("TOKEN"), &db).unwrap();
        assert_eq!(res.rows.sorted_support(), vec![tuple![0i64]]);
    }

    #[test]
    fn query3_doc_counts_balance() {
        let db = token_db();
        // doc 1: 1 PER, 1 ORG → balanced. doc 2: 1 PER, 0 ORG → no.
        // doc 3: 1 PER, 1 ORG → balanced.
        let res = execute_simple(&paper_queries::query3("TOKEN"), &db).unwrap();
        assert_eq!(res.rows.sorted_support(), vec![tuple![1i64], tuple![3i64]]);
    }

    #[test]
    fn query4_join_finds_cooccurring_persons() {
        let db = token_db();
        // Only doc 1 has Boston/B-ORG; its person is Bill.
        let res = execute_simple(&paper_queries::query4("TOKEN"), &db).unwrap();
        assert_eq!(res.rows.sorted_support(), vec![tuple!["Bill"]]);
    }

    #[test]
    fn product_multiplies_multiplicities() {
        let db = token_db();
        let p = Plan::scan_as("TOKEN", "A")
            .filter(Expr::col("A.label").eq(Expr::lit("B-PER")))
            .project(&["A.label"]) // 3 rows, 1 distinct
            .product(
                Plan::scan_as("TOKEN", "B")
                    .filter(Expr::col("B.label").eq(Expr::lit("B-ORG")))
                    .project(&["B.label"]), // 2 rows, 1 distinct
            );
        let res = execute_simple(&p, &db).unwrap();
        assert_eq!(res.rows.count(&tuple!["B-PER", "B-ORG"]), 6);
    }

    #[test]
    fn distinct_collapses_duplicates() {
        let db = token_db();
        let p = paper_queries::query1("TOKEN").distinct();
        let res = execute_simple(&p, &db).unwrap();
        assert_eq!(res.rows.count(&tuple!["Ann"]), 1);
        assert_eq!(res.rows.count(&tuple!["Bill"]), 1);
    }

    #[test]
    fn aggregate_min_max_sum() {
        let db = token_db();
        let p = Plan::scan("TOKEN").aggregate(
            &["doc_id"],
            vec![
                AggExpr::new(AggFunc::Min(Arc::from("tok_id")), "lo"),
                AggExpr::new(AggFunc::Max(Arc::from("tok_id")), "hi"),
                AggExpr::new(AggFunc::Sum(Arc::from("tok_id")), "s"),
            ],
        );
        let res = execute_simple(&p, &db).unwrap();
        // SUM over an INT column is exact and integer-typed.
        assert!(res.rows.contains(&tuple![1i64, 1i64, 3i64, 6i64]));
        assert!(res.rows.contains(&tuple![3i64, 7i64, 8i64, 15i64]));
    }

    #[test]
    fn integer_sum_is_exact_past_f64_precision() {
        // Two values of 2⁵³ + 1: the f64 path would round each to 2⁵³ and
        // report 2⁵⁴; the exact path reports 2⁵⁴ + 2.
        let mut db = Database::new();
        let schema = Schema::from_pairs(&[("g", ValueType::Int), ("v", ValueType::Int)]).unwrap();
        db.create_relation("BIG", schema).unwrap();
        let big = (1i64 << 53) + 1;
        let rel = db.relation_mut("BIG").unwrap();
        rel.insert(tuple![1i64, big]).unwrap();
        rel.insert(tuple![1i64, big]).unwrap();
        let p = Plan::scan("BIG").aggregate(
            &["g"],
            vec![AggExpr::new(AggFunc::Sum(Arc::from("v")), "s")],
        );
        let res = execute_simple(&p, &db).unwrap();
        assert_eq!(
            res.rows.sorted_support(),
            vec![tuple![1i64, (1i64 << 54) + 2]],
            "integer SUM must not round through f64"
        );
    }

    #[test]
    fn float_sum_stays_float_and_empty_sum_is_null() {
        let mut db = Database::new();
        let schema = Schema::from_pairs(&[("g", ValueType::Int), ("v", ValueType::Float)]).unwrap();
        db.create_relation("F", schema).unwrap();
        let rel = db.relation_mut("F").unwrap();
        rel.insert(tuple![1i64, 0.5f64]).unwrap();
        rel.insert(tuple![1i64, 0.25f64]).unwrap();
        rel.insert(Tuple::new(vec![Value::Int(2), Value::Null]))
            .unwrap();
        let p = Plan::scan("F").aggregate(
            &["g"],
            vec![AggExpr::new(AggFunc::Sum(Arc::from("v")), "s")],
        );
        let res = execute_simple(&p, &db).unwrap();
        assert!(res.rows.contains(&tuple![1i64, 0.75f64]));
        // Group 2 has only a NULL input: SUM is NULL.
        assert!(res
            .rows
            .contains(&Tuple::new(vec![Value::Int(2), Value::Null])));
    }

    #[test]
    fn extremum_retraction_of_unseen_value_is_never_a_candidate() {
        // Regression: a Δ⁻ arriving before its Δ⁺ (legal inside one view
        // maintenance batch) drives a never-seen value to count −1. finish()
        // must ignore it rather than report a MIN/MAX outside the group.
        let cols: Vec<Arc<str>> = vec![Arc::from("v")];
        let specs = bind_aggs(&[AggExpr::new(AggFunc::Min(Arc::from("v")), "lo")], &cols).unwrap();
        let mut acc = AggAcc::new(&specs[0]);
        acc.update(&specs[0], &tuple![7i64], 1);
        // Retract value 3, which was never inserted.
        acc.update(&specs[0], &tuple![3i64], -1);
        assert_eq!(acc.finish(), Value::Int(7), "phantom MIN candidate");
        // The matching Δ⁺ arrives later in the batch: 3 becomes real.
        acc.update(&specs[0], &tuple![3i64], 2);
        assert_eq!(acc.finish(), Value::Int(3));
        // All positives retracted → NULL, even with negative entries left.
        acc.update(&specs[0], &tuple![3i64], -1);
        acc.update(&specs[0], &tuple![7i64], -1);
        acc.update(&specs[0], &tuple![99i64], -1);
        assert_eq!(acc.finish(), Value::Null);
    }

    #[test]
    fn index_probe_short_circuits_scan() {
        let mut db = token_db();
        db.relation_mut("TOKEN")
            .unwrap()
            .create_index("string")
            .unwrap();
        let p = Plan::scan("TOKEN").filter(Expr::col("string").eq(Expr::lit("Ann")));
        let (res, stats) = execute(&p, &db).unwrap();
        assert_eq!(res.rows.total(), 2);
        // Only the two matching tuples were read, not all 8.
        assert_eq!(stats.tuples_scanned, 2);
    }

    #[test]
    fn join_skips_null_keys() {
        let mut db = Database::new();
        let schema = Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Str)]).unwrap();
        db.create_relation("L", schema.clone()).unwrap();
        db.create_relation("R", schema).unwrap();
        db.relation_mut("L")
            .unwrap()
            .insert(Tuple::new(vec![Value::Null, Value::str("l")]))
            .unwrap();
        db.relation_mut("R")
            .unwrap()
            .insert(Tuple::new(vec![Value::Null, Value::str("r")]))
            .unwrap();
        let p = Plan::scan_as("L", "a").join_on(Plan::scan_as("R", "b"), &[("a.k", "b.k")]);
        let res = execute_simple(&p, &db).unwrap();
        assert!(res.rows.is_empty());
    }

    #[test]
    fn union_difference_intersect_exec() {
        let db = token_db();
        let persons = paper_queries::query1("TOKEN");
        let orgs = Plan::scan("TOKEN")
            .filter(Expr::col("label").eq(Expr::lit("B-ORG")))
            .project(&["string"]);

        let u = execute_simple(&persons.clone().union(orgs.clone()), &db).unwrap();
        // Ann ×2, Bill, Boston, IBM.
        assert_eq!(u.rows.total(), 5);
        assert_eq!(u.rows.count(&tuple!["Ann"]), 2);
        assert_eq!(u.rows.count(&tuple!["IBM"]), 1);

        // non-O strings minus persons: Boston ×2, IBM (Ann and Bill removed).
        let non_o = Plan::scan("TOKEN")
            .filter(Expr::col("label").ne(Expr::lit("O")))
            .project(&["string"]);
        let d = execute_simple(&non_o.clone().difference(persons.clone()), &db).unwrap();
        assert_eq!(d.rows.count(&tuple!["Boston"]), 2);
        assert_eq!(d.rows.count(&tuple!["IBM"]), 1);
        assert_eq!(d.rows.count(&tuple!["Ann"]), 0);

        // persons ∩ non-O = persons (min of 2 and 2 for Ann, 1 and 1 Bill).
        let i = execute_simple(&persons.clone().intersect(non_o), &db).unwrap();
        assert_eq!(i.rows.count(&tuple!["Ann"]), 2);
        assert_eq!(i.rows.count(&tuple!["Bill"]), 1);
        assert_eq!(i.rows.count(&tuple!["Boston"]), 0);
    }

    #[test]
    fn stats_accumulate_rows_processed() {
        let db = token_db();
        let (_, stats) = execute(&paper_queries::query1("TOKEN"), &db).unwrap();
        assert!(stats.rows_processed > 0);
        let mut total = ExecStats::default();
        total.absorb(stats);
        total.absorb(stats);
        assert_eq!(total.tuples_scanned, 2 * stats.tuples_scanned);
    }
}
