//! Relation schemas.
//!
//! A schema `Sᵏ` of arity k names the attributes `R.a₁ … R.aₖ` of a relation
//! (§3.2 of the paper) and records which attribute is the primary key. The
//! MCMC bridge uses the primary key to address individual fields as random
//! variables.

use crate::value::ValueType;
use std::fmt;
use std::sync::Arc;

/// One column of a relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Attribute name, unique within the schema.
    pub name: Arc<str>,
    /// Declared type. `Value::Null` is accepted in any column.
    pub ty: ValueType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<Arc<str>>, ty: ValueType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// The schema of a relation: ordered columns plus an optional primary key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    columns: Arc<[Column]>,
    /// Index into `columns` of the primary key, when declared.
    primary_key: Option<usize>,
}

/// Error raised when building or interrogating a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two columns share a name.
    DuplicateColumn(String),
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// A tuple's arity or types do not match the schema.
    TypeMismatch {
        /// Column that failed the check.
        column: String,
        /// Declared type.
        expected: ValueType,
        /// Actual value type.
        found: ValueType,
    },
    /// Tuple arity differs from schema arity.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Tuple arity.
        found: usize,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateColumn(c) => write!(f, "duplicate column `{c}`"),
            SchemaError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            SchemaError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(f, "column `{column}` expects {expected}, got {found}"),
            SchemaError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "tuple arity {found} does not match schema arity {expected}"
                )
            }
        }
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// Builds a schema from columns, validating name uniqueness.
    pub fn new(columns: Vec<Column>) -> Result<Self, SchemaError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(SchemaError::DuplicateColumn(c.name.to_string()));
            }
        }
        Ok(Schema {
            columns: columns.into(),
            primary_key: None,
        })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, ValueType)]) -> Result<Self, SchemaError> {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect::<Vec<_>>(),
        )
    }

    /// Declares `name` as the primary key column.
    pub fn with_primary_key(mut self, name: &str) -> Result<Self, SchemaError> {
        let idx = self
            .index_of(name)
            .ok_or_else(|| SchemaError::UnknownColumn(name.to_string()))?;
        self.primary_key = Some(idx);
        Ok(self)
    }

    /// Number of columns (the arity k of §3.2).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All columns, in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Index of `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| &*c.name == name)
    }

    /// Like [`Schema::index_of`] but returns an error naming the column.
    pub fn require(&self, name: &str) -> Result<usize, SchemaError> {
        self.index_of(name)
            .ok_or_else(|| SchemaError::UnknownColumn(name.to_string()))
    }

    /// Column index of the primary key, when declared.
    pub fn primary_key(&self) -> Option<usize> {
        self.primary_key
    }

    /// Column metadata by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Checks a row of values against this schema (arity and types; NULL is
    /// accepted everywhere).
    pub fn check(&self, values: &[crate::value::Value]) -> Result<(), SchemaError> {
        if values.len() != self.arity() {
            return Err(SchemaError::ArityMismatch {
                expected: self.arity(),
                found: values.len(),
            });
        }
        for (c, v) in self.columns.iter().zip(values) {
            let ft = v.value_type();
            if ft != ValueType::Null && ft != c.ty {
                return Err(SchemaError::TypeMismatch {
                    column: c.name.to_string(),
                    expected: c.ty,
                    found: ft,
                });
            }
        }
        Ok(())
    }

    /// Type-checks a single column's value (NULL accepted everywhere) — the
    /// field-granular fast path for `update_field`, which mutates one column
    /// of an already-validated row and need not re-walk the whole tuple.
    pub fn check_value(
        &self,
        column: usize,
        value: &crate::value::Value,
    ) -> Result<(), SchemaError> {
        let c = &self.columns[column];
        let ft = value.value_type();
        if ft != ValueType::Null && ft != c.ty {
            return Err(SchemaError::TypeMismatch {
                column: c.name.to_string(),
                expected: c.ty,
                found: ft,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
            if self.primary_key == Some(i) {
                write!(f, " PRIMARY KEY")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn token_schema() -> Schema {
        Schema::from_pairs(&[
            ("tok_id", ValueType::Int),
            ("doc_id", ValueType::Int),
            ("string", ValueType::Str),
            ("label", ValueType::Str),
            ("truth", ValueType::Str),
        ])
        .unwrap()
        .with_primary_key("tok_id")
        .unwrap()
    }

    #[test]
    fn builds_paper_token_schema() {
        let s = token_schema();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.primary_key(), Some(0));
        assert_eq!(s.index_of("label"), Some(3));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn rejects_duplicate_columns() {
        let err = Schema::from_pairs(&[("a", ValueType::Int), ("a", ValueType::Str)]);
        assert!(matches!(err, Err(SchemaError::DuplicateColumn(_))));
    }

    #[test]
    fn rejects_unknown_primary_key() {
        let s = Schema::from_pairs(&[("a", ValueType::Int)]).unwrap();
        assert!(matches!(
            s.with_primary_key("b"),
            Err(SchemaError::UnknownColumn(_))
        ));
    }

    #[test]
    fn check_validates_arity_and_types() {
        let s = token_schema();
        let good = vec![
            Value::Int(1),
            Value::Int(1),
            Value::str("IBM"),
            Value::str("B-ORG"),
            Value::str("B-ORG"),
        ];
        assert!(s.check(&good).is_ok());

        let short = vec![Value::Int(1)];
        assert!(matches!(
            s.check(&short),
            Err(SchemaError::ArityMismatch { .. })
        ));

        let bad_type = vec![
            Value::str("oops"),
            Value::Int(1),
            Value::str("IBM"),
            Value::str("B-ORG"),
            Value::str("B-ORG"),
        ];
        assert!(matches!(
            s.check(&bad_type),
            Err(SchemaError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn null_allowed_in_any_column() {
        let s = token_schema();
        let with_null = vec![
            Value::Int(1),
            Value::Int(1),
            Value::Null,
            Value::str("O"),
            Value::str("O"),
        ];
        assert!(s.check(&with_null).is_ok());
    }

    #[test]
    fn display_is_informative() {
        let s = token_schema();
        let d = s.to_string();
        assert!(d.contains("tok_id INT PRIMARY KEY"));
        assert!(d.contains("string STR"));
    }

    #[test]
    fn require_errors_name_the_column() {
        let s = token_schema();
        assert_eq!(s.require("doc_id").unwrap(), 1);
        let e = s.require("nope").unwrap_err();
        assert_eq!(e.to_string(), "unknown column `nope`");
    }
}
