//! Heap storage for relations.
//!
//! A [`Relation`] stores the deterministic tuples of the current possible
//! world in a slotted heap: rows get stable [`RowId`]s so the MCMC bridge can
//! address "the LABEL field of token 1234" as a random variable and write
//! sampled values back (§5 of the paper: "propagating changes to random
//! variables back to the tuples on disk").
//!
//! Updates are field-granular and return both the pre- and post-image of the
//! row; the delta tracker (see [`crate::delta`]) turns these into the Δ⁻/Δ⁺
//! auxiliary tables of §4.2.

use crate::fasthash::FxHashMap;
use crate::schema::{Schema, SchemaError};
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Stable identifier of a row slot within a relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row#{}", self.0)
    }
}

/// Errors raised by storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Schema validation failed.
    Schema(SchemaError),
    /// A primary key value is already present.
    DuplicateKey(String),
    /// The row id does not name a live row.
    NoSuchRow(RowId),
    /// Column index out of range.
    NoSuchColumn(usize),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Schema(e) => write!(f, "schema error: {e}"),
            StorageError::DuplicateKey(k) => write!(f, "duplicate primary key {k}"),
            StorageError::NoSuchRow(r) => write!(f, "no such row {r}"),
            StorageError::NoSuchColumn(c) => write!(f, "no such column index {c}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<SchemaError> for StorageError {
    fn from(e: SchemaError) -> Self {
        StorageError::Schema(e)
    }
}

/// A secondary hash index over one column.
///
/// The paper's scalability experiment deliberately runs *without* an index on
/// the STRING field (§5.3), so indexes are opt-in per column. When present,
/// the executor uses them for equality predicates.
#[derive(Clone, Debug, Default)]
struct HashIndex {
    column: usize,
    map: FxHashMap<Value, Vec<RowId>>,
}

impl HashIndex {
    fn insert(&mut self, row: RowId, t: &Tuple) {
        self.map
            .entry(t.get(self.column).clone())
            .or_default()
            .push(row);
    }

    fn remove(&mut self, row: RowId, t: &Tuple) {
        if let Some(v) = self.map.get_mut(t.get(self.column)) {
            if let Some(pos) = v.iter().position(|r| *r == row) {
                v.swap_remove(pos);
            }
            if v.is_empty() {
                self.map.remove(t.get(self.column));
            }
        }
    }
}

/// A named relation backed by a slotted heap.
///
/// Cloning is the deep-snapshot path of §5.4's parallel evaluation
/// ("identical copies of the initial world"): tuples are `Arc`-backed, so
/// cloning the heap is one pointer bump per live row, and the pk/secondary
/// hash indexes are cloned as built rather than re-derived from the rows.
/// The clone shares no mutable state with the original — replicas can be
/// mutated by independent MCMC chains without synchronization.
#[derive(Clone)]
pub struct Relation {
    name: Arc<str>,
    schema: Schema,
    rows: Vec<Option<Tuple>>,
    free: Vec<u32>,
    live: usize,
    /// Primary-key lookup. FxHash-keyed: `find_by_pk` sits on the MCMC
    /// write path (one probe per accepted proposal).
    pk_index: FxHashMap<Value, RowId>,
    secondary: Vec<HashIndex>,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new(name: impl Into<Arc<str>>, schema: Schema) -> Self {
        Relation {
            name: name.into(),
            schema,
            rows: Vec::new(),
            free: Vec::new(),
            live: 0,
            pk_index: FxHashMap::default(),
            secondary: Vec::new(),
        }
    }

    /// Relation name.
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// Relation schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Creates a secondary hash index on `column` (by name), backfilling it
    /// from existing rows.
    pub fn create_index(&mut self, column: &str) -> Result<(), StorageError> {
        let col = self.schema.require(column)?;
        if self.secondary.iter().any(|ix| ix.column == col) {
            return Ok(()); // idempotent
        }
        let mut ix = HashIndex {
            column: col,
            map: FxHashMap::default(),
        };
        for (rid, t) in self.iter() {
            ix.insert(rid, t);
        }
        self.secondary.push(ix);
        Ok(())
    }

    /// True when a secondary index exists on `column` (by index).
    pub fn has_index_on(&self, column: usize) -> bool {
        self.secondary.iter().any(|ix| ix.column == column)
    }

    /// Looks up rows via the secondary index on `column`. Returns `None` when
    /// no such index exists (the caller must fall back to a scan).
    pub fn index_lookup(&self, column: usize, value: &Value) -> Option<&[RowId]> {
        self.secondary
            .iter()
            .find(|ix| ix.column == column)
            .map(|ix| ix.map.get(value).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Inserts a tuple, enforcing schema and primary-key uniqueness.
    pub fn insert(&mut self, tuple: Tuple) -> Result<RowId, StorageError> {
        self.schema.check(tuple.values())?;
        if let Some(pk) = self.schema.primary_key() {
            let key = tuple.get(pk);
            if self.pk_index.contains_key(key) {
                return Err(StorageError::DuplicateKey(key.to_string()));
            }
        }
        let rid = match self.free.pop() {
            Some(slot) => {
                self.rows[slot as usize] = Some(tuple.clone());
                RowId(slot)
            }
            None => {
                self.rows.push(Some(tuple.clone()));
                RowId((self.rows.len() - 1) as u32)
            }
        };
        if let Some(pk) = self.schema.primary_key() {
            self.pk_index.insert(tuple.get(pk).clone(), rid);
        }
        for ix in &mut self.secondary {
            ix.insert(rid, &tuple);
        }
        self.live += 1;
        Ok(rid)
    }

    /// Deletes a row, returning its final image.
    pub fn delete(&mut self, row: RowId) -> Result<Tuple, StorageError> {
        let slot = self
            .rows
            .get_mut(row.0 as usize)
            .ok_or(StorageError::NoSuchRow(row))?;
        let tuple = slot.take().ok_or(StorageError::NoSuchRow(row))?;
        self.free.push(row.0);
        self.live -= 1;
        if let Some(pk) = self.schema.primary_key() {
            self.pk_index.remove(tuple.get(pk));
        }
        for ix in &mut self.secondary {
            ix.remove(row, &tuple);
        }
        Ok(tuple)
    }

    /// Reads a row.
    pub fn get(&self, row: RowId) -> Option<&Tuple> {
        self.rows.get(row.0 as usize).and_then(Option::as_ref)
    }

    /// Updates one field of a row, returning `(old_image, new_image)`.
    ///
    /// This is the write path used by MCMC when a proposal is accepted: one
    /// random-variable change maps to one field update here, and the returned
    /// images feed the Δ⁻/Δ⁺ tracker.
    pub fn update_field(
        &mut self,
        row: RowId,
        column: usize,
        value: Value,
    ) -> Result<(Tuple, Tuple), StorageError> {
        if column >= self.schema.arity() {
            return Err(StorageError::NoSuchColumn(column));
        }
        // Field-granular validation: the stored row already satisfies the
        // schema, so only the incoming value needs a type check.
        self.schema.check_value(column, &value)?;
        // Move the old image out of the slot (no refcount traffic — this is
        // the per-accepted-proposal hot path) and restore it on error.
        let slot = self
            .rows
            .get_mut(row.0 as usize)
            .ok_or(StorageError::NoSuchRow(row))?;
        let old = slot.take().ok_or(StorageError::NoSuchRow(row))?;
        let new = old.with_value(column, value);
        if Some(column) == self.schema.primary_key() {
            let key = new.get(column);
            if key != old.get(column) && self.pk_index.contains_key(key) {
                let key = key.to_string();
                self.rows[row.0 as usize] = Some(old);
                return Err(StorageError::DuplicateKey(key));
            }
            self.pk_index.remove(old.get(column));
            self.pk_index.insert(key.clone(), row);
        }
        for ix in &mut self.secondary {
            if ix.column == column {
                ix.remove(row, &old);
                ix.insert(row, &new);
            }
        }
        self.rows[row.0 as usize] = Some(new.clone());
        Ok((old, new))
    }

    /// Looks up a row by primary key.
    pub fn find_by_pk(&self, key: &Value) -> Option<RowId> {
        self.pk_index.get(key).copied()
    }

    /// Iterates live rows in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Tuple)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (RowId(i as u32), t)))
    }

    /// Iterates live tuples in slot order, borrowing — no snapshot `Vec`,
    /// no per-tuple clone. Callers that genuinely need owned tuples (e.g.
    /// seeding a materialized view) clone per element via `.cloned()`.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter().filter_map(Option::as_ref)
    }

    /// Deep snapshot: an independent copy of this relation with identical
    /// rows, row ids, and indexes. Named alias of `Clone` marking intent at
    /// the call site (see the type-level docs for the cost model).
    pub fn snapshot(&self) -> Relation {
        self.clone()
    }

    /// The raw slot array, dead slots included — the serialization accessor
    /// the durability layer uses to persist a relation with its `RowId`
    /// address space intact (slot *i* holds the row addressed by
    /// `RowId(i)`).
    pub fn raw_slots(&self) -> &[Option<Tuple>] {
        &self.rows
    }

    /// The free-slot stack in pop order (last entry is reused next). Part of
    /// the persisted state so that a recovered relation hands out the same
    /// `RowId` for the next insert as the original would have.
    pub fn free_slots(&self) -> &[u32] {
        &self.free
    }

    /// Columns carrying a secondary hash index, in creation order. The index
    /// *contents* are derived state and are not persisted; recovery rebuilds
    /// them from the rows via [`Relation::create_index`].
    pub fn indexed_columns(&self) -> Vec<usize> {
        self.secondary.iter().map(|ix| ix.column).collect()
    }

    /// Rebuilds a relation from persisted parts: the raw slot array (see
    /// [`Relation::raw_slots`]), the free-slot stack, and the secondary-index
    /// column set. Primary-key and secondary indexes are re-derived from the
    /// slots in slot order.
    ///
    /// Validates everything an on-disk source could get wrong: every tuple
    /// re-checked against the schema, primary keys re-checked for
    /// uniqueness, and the free list required to name exactly the dead slots
    /// (each once, in range).
    pub fn from_raw_parts(
        name: impl Into<Arc<str>>,
        schema: Schema,
        slots: Vec<Option<Tuple>>,
        free: Vec<u32>,
        indexed_columns: &[usize],
    ) -> Result<Relation, StorageError> {
        let mut seen = vec![false; slots.len()];
        for &f in &free {
            let slot = seen
                .get_mut(f as usize)
                .ok_or(StorageError::NoSuchRow(RowId(f)))?;
            if *slot || slots[f as usize].is_some() {
                // A free entry naming a live or already-freed slot.
                return Err(StorageError::NoSuchRow(RowId(f)));
            }
            *slot = true;
        }
        let mut live = 0usize;
        let mut pk_index = FxHashMap::default();
        for (i, slot) in slots.iter().enumerate() {
            match slot {
                Some(t) => {
                    schema.check(t.values())?;
                    if let Some(pk) = schema.primary_key() {
                        let key = t.get(pk);
                        if pk_index.insert(key.clone(), RowId(i as u32)).is_some() {
                            return Err(StorageError::DuplicateKey(key.to_string()));
                        }
                    }
                    live += 1;
                }
                None => {
                    if !seen[i] {
                        // A dead slot missing from the free list would be
                        // unreachable for reuse forever.
                        return Err(StorageError::NoSuchRow(RowId(i as u32)));
                    }
                }
            }
        }
        let mut rel = Relation {
            name: name.into(),
            schema,
            rows: slots,
            free,
            live,
            pk_index,
            secondary: Vec::new(),
        };
        for &col in indexed_columns {
            if col >= rel.schema.arity() {
                return Err(StorageError::NoSuchColumn(col));
            }
            if rel.has_index_on(col) {
                continue;
            }
            let mut ix = HashIndex {
                column: col,
                map: FxHashMap::default(),
            };
            for (rid, t) in rel.iter() {
                ix.insert(rid, t);
            }
            rel.secondary.push(ix);
        }
        Ok(rel)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Relation {} {} [{} rows]",
            self.name, self.schema, self.live
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType;

    fn token_relation() -> Relation {
        let schema = Schema::from_pairs(&[
            ("tok_id", ValueType::Int),
            ("string", ValueType::Str),
            ("label", ValueType::Str),
        ])
        .unwrap()
        .with_primary_key("tok_id")
        .unwrap();
        Relation::new("TOKEN", schema)
    }

    #[test]
    fn insert_get_len() {
        let mut r = token_relation();
        let a = r.insert(tuple![1i64, "IBM", "O"]).unwrap();
        let b = r.insert(tuple![2i64, "said", "O"]).unwrap();
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).unwrap().get(1).as_str(), Some("IBM"));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut r = token_relation();
        r.insert(tuple![1i64, "a", "O"]).unwrap();
        let err = r.insert(tuple![1i64, "b", "O"]).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey(_)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn delete_frees_slot_and_pk() {
        let mut r = token_relation();
        let a = r.insert(tuple![1i64, "a", "O"]).unwrap();
        let t = r.delete(a).unwrap();
        assert_eq!(t.get(0), &Value::Int(1));
        assert_eq!(r.len(), 0);
        assert!(r.get(a).is_none());
        assert!(r.find_by_pk(&Value::Int(1)).is_none());
        // Slot is reused and the pk becomes insertable again.
        let b = r.insert(tuple![1i64, "a2", "O"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn double_delete_is_an_error() {
        let mut r = token_relation();
        let a = r.insert(tuple![1i64, "a", "O"]).unwrap();
        r.delete(a).unwrap();
        assert!(matches!(r.delete(a), Err(StorageError::NoSuchRow(_))));
    }

    #[test]
    fn update_field_returns_both_images() {
        let mut r = token_relation();
        let a = r.insert(tuple![1i64, "IBM", "O"]).unwrap();
        let (old, new) = r.update_field(a, 2, Value::str("B-ORG")).unwrap();
        assert_eq!(old.get(2).as_str(), Some("O"));
        assert_eq!(new.get(2).as_str(), Some("B-ORG"));
        assert_eq!(r.get(a).unwrap().get(2).as_str(), Some("B-ORG"));
    }

    #[test]
    fn update_pk_moves_index_entry() {
        let mut r = token_relation();
        let a = r.insert(tuple![1i64, "x", "O"]).unwrap();
        r.update_field(a, 0, Value::Int(9)).unwrap();
        assert!(r.find_by_pk(&Value::Int(1)).is_none());
        assert_eq!(r.find_by_pk(&Value::Int(9)), Some(a));
        // Updating into an existing pk is rejected.
        r.insert(tuple![1i64, "y", "O"]).unwrap();
        assert!(matches!(
            r.update_field(a, 0, Value::Int(1)),
            Err(StorageError::DuplicateKey(_))
        ));
    }

    #[test]
    fn update_bad_column_or_type() {
        let mut r = token_relation();
        let a = r.insert(tuple![1i64, "x", "O"]).unwrap();
        assert!(matches!(
            r.update_field(a, 7, Value::Int(0)),
            Err(StorageError::NoSuchColumn(7))
        ));
        assert!(matches!(
            r.update_field(a, 1, Value::Int(0)),
            Err(StorageError::Schema(_))
        ));
    }

    #[test]
    fn secondary_index_tracks_updates() {
        let mut r = token_relation();
        let a = r.insert(tuple![1i64, "IBM", "O"]).unwrap();
        let b = r.insert(tuple![2i64, "IBM", "O"]).unwrap();
        r.insert(tuple![3i64, "said", "O"]).unwrap();
        r.create_index("string").unwrap();
        let col = r.schema().index_of("string").unwrap();
        assert!(r.has_index_on(col));

        let hits = r.index_lookup(col, &Value::str("IBM")).unwrap();
        let mut hits: Vec<_> = hits.to_vec();
        hits.sort();
        assert_eq!(hits, vec![a, b]);

        r.update_field(a, col, Value::str("Apple")).unwrap();
        assert_eq!(r.index_lookup(col, &Value::str("IBM")).unwrap(), &[b]);
        assert_eq!(r.index_lookup(col, &Value::str("Apple")).unwrap(), &[a]);

        r.delete(b).unwrap();
        assert!(r.index_lookup(col, &Value::str("IBM")).unwrap().is_empty());
        // No index on label → None signals "must scan".
        assert!(r.index_lookup(2, &Value::str("O")).is_none());
    }

    #[test]
    fn iter_skips_dead_slots() {
        let mut r = token_relation();
        let a = r.insert(tuple![1i64, "a", "O"]).unwrap();
        r.insert(tuple![2i64, "b", "O"]).unwrap();
        r.delete(a).unwrap();
        let rows: Vec<_> = r.iter().map(|(_, t)| t.get(0).as_int().unwrap()).collect();
        assert_eq!(rows, vec![2]);
    }

    #[test]
    fn snapshot_is_fully_independent() {
        let mut r = token_relation();
        let a = r.insert(tuple![1i64, "IBM", "O"]).unwrap();
        let b = r.insert(tuple![2i64, "said", "O"]).unwrap();
        r.create_index("string").unwrap();
        let col = r.schema().index_of("string").unwrap();

        let mut snap = r.snapshot();
        // Same rows, ids, and index contents at snapshot time.
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.get(a), r.get(a));
        assert_eq!(snap.find_by_pk(&Value::Int(2)), Some(b));
        assert_eq!(snap.index_lookup(col, &Value::str("IBM")).unwrap(), &[a]);

        // Mutating the snapshot leaves the original untouched — storage,
        // pk index, and secondary index all diverge independently.
        snap.update_field(a, 2, Value::str("B-ORG")).unwrap();
        snap.update_field(a, col, Value::str("Apple")).unwrap();
        snap.delete(b).unwrap();
        assert_eq!(r.get(a).unwrap().get(2).as_str(), Some("O"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.find_by_pk(&Value::Int(2)), Some(b));
        assert_eq!(r.index_lookup(col, &Value::str("IBM")).unwrap(), &[a]);
        assert!(r
            .index_lookup(col, &Value::str("Apple"))
            .unwrap()
            .is_empty());

        // And vice versa: mutating the original is invisible to the snapshot.
        r.update_field(b, 2, Value::str("B-PER")).unwrap();
        assert!(snap.get(b).is_none());
        // Freed slot in the snapshot is reusable without touching the original.
        let b2 = snap.insert(tuple![3i64, "Boston", "O"]).unwrap();
        assert_eq!(b2, b);
        assert_eq!(r.get(b).unwrap().get(0), &Value::Int(2));
    }

    #[test]
    fn from_raw_parts_round_trips_with_dead_slots() {
        let mut r = token_relation();
        let a = r.insert(tuple![1i64, "IBM", "O"]).unwrap();
        let b = r.insert(tuple![2i64, "said", "O"]).unwrap();
        r.insert(tuple![3i64, "Boston", "O"]).unwrap();
        r.delete(b).unwrap();
        r.create_index("string").unwrap();
        let col = r.schema().index_of("string").unwrap();

        let rebuilt = Relation::from_raw_parts(
            Arc::clone(r.name()),
            r.schema().clone(),
            r.raw_slots().to_vec(),
            r.free_slots().to_vec(),
            &r.indexed_columns(),
        )
        .unwrap();
        assert_eq!(rebuilt.len(), r.len());
        assert_eq!(rebuilt.get(a), r.get(a));
        assert!(rebuilt.get(b).is_none());
        assert_eq!(
            rebuilt.find_by_pk(&Value::Int(3)),
            r.find_by_pk(&Value::Int(3))
        );
        assert_eq!(rebuilt.index_lookup(col, &Value::str("IBM")).unwrap(), &[a]);
        // The freed slot is reused identically on both sides.
        let mut r2 = rebuilt;
        let expect = r.insert(tuple![4i64, "x", "O"]).unwrap();
        let got = r2.insert(tuple![4i64, "x", "O"]).unwrap();
        assert_eq!(expect, got);
        assert_eq!(expect, b);
    }

    #[test]
    fn from_raw_parts_rejects_corrupt_parts() {
        let r = token_relation();
        let schema = r.schema().clone();
        let live = Some(tuple![1i64, "a", "O"]);
        // Free entry pointing at a live slot.
        assert!(
            Relation::from_raw_parts("T", schema.clone(), vec![live.clone()], vec![0], &[])
                .is_err()
        );
        // Free entry out of range.
        assert!(
            Relation::from_raw_parts("T", schema.clone(), vec![live.clone()], vec![5], &[])
                .is_err()
        );
        // Dead slot missing from the free list.
        assert!(Relation::from_raw_parts("T", schema.clone(), vec![None], vec![], &[]).is_err());
        // Duplicate free entry for one dead slot.
        assert!(
            Relation::from_raw_parts("T", schema.clone(), vec![None], vec![0, 0], &[]).is_err()
        );
        // Duplicate primary keys across slots.
        assert!(Relation::from_raw_parts(
            "T",
            schema.clone(),
            vec![live.clone(), Some(tuple![1i64, "b", "O"])],
            vec![],
            &[]
        )
        .is_err());
        // Schema violation inside a slot.
        assert!(Relation::from_raw_parts(
            "T",
            schema.clone(),
            vec![Some(tuple!["not-an-int", "a", "O"])],
            vec![],
            &[]
        )
        .is_err());
        // Index on a column the schema does not have.
        assert!(Relation::from_raw_parts("T", schema, vec![live], vec![], &[9]).is_err());
    }

    #[test]
    fn tuples_borrows_live_rows() {
        let mut r = token_relation();
        let a = r.insert(tuple![1i64, "a", "O"]).unwrap();
        r.insert(tuple![2i64, "b", "O"]).unwrap();
        r.delete(a).unwrap();
        let ids: Vec<i64> = r.tuples().map(|t| t.get(0).as_int().unwrap()).collect();
        assert_eq!(ids, vec![2]);
        // The iterator borrows: the same tuple address is observed twice.
        let first = r.tuples().next().unwrap() as *const Tuple;
        let again = r.tuples().next().unwrap() as *const Tuple;
        assert_eq!(first, again);
    }
}
