//! Tuples — deterministic rows of the single stored possible world.
//!
//! A [`Tuple`] is an immutable, cheaply clonable row. Interior `Arc` sharing
//! matters because the sampling evaluators copy tuples into Δ⁻/Δ⁺ auxiliary
//! tables and counted multisets on every MCMC step (§4.2).

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable row of values.
///
/// Cloning is O(1): the underlying buffer is shared. Mutation goes through
/// [`Tuple::with_value`], which produces a new tuple (copy-on-write), because
/// the delta machinery needs both the pre- and post-image of every update.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// Builds a tuple from anything convertible to values.
    pub fn from_iter_values<I, V>(iter: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple::new(iter.into_iter().map(Into::into).collect())
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Field accessor by position.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Checked field accessor.
    pub fn try_get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Returns a new tuple with field `idx` replaced by `value`.
    ///
    /// This is the sole mutation path: the old tuple remains intact so the
    /// storage layer can hand both images to the delta tracker.
    pub fn with_value(&self, idx: usize, value: Value) -> Tuple {
        let mut v: Vec<Value> = self.values.to_vec();
        v[idx] = value;
        Tuple::new(v)
    }

    /// Concatenates two tuples (used by products and joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Projects the tuple onto the given column positions.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values.iter()).finish()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, "IBM", true]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple![1i64, "IBM", "B-ORG"];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), &Value::Int(1));
        assert_eq!(t.get(1).as_str(), Some("IBM"));
        assert_eq!(t.try_get(5), None);
    }

    #[test]
    fn clone_shares_buffer() {
        let t = tuple![1i64, "x"];
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.values, &u.values));
        assert_eq!(t, u);
    }

    #[test]
    fn with_value_is_copy_on_write() {
        let t = tuple![1i64, "O"];
        let u = t.with_value(1, Value::str("B-PER"));
        assert_eq!(t.get(1).as_str(), Some("O")); // old image intact
        assert_eq!(u.get(1).as_str(), Some("B-PER"));
        assert_eq!(u.get(0), t.get(0));
    }

    #[test]
    fn concat_and_project() {
        let a = tuple![1i64, "x"];
        let b = tuple![2i64, "y"];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 4);
        assert_eq!(c.get(2), &Value::Int(2));
        let p = c.project(&[3, 0]);
        assert_eq!(p, tuple!["y", 1i64]);
    }

    #[test]
    fn hash_eq_consistency_for_multiset_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<Tuple, i64> = HashMap::new();
        *m.entry(tuple!["a", 1i64]).or_insert(0) += 1;
        *m.entry(tuple!["a", 1i64]).or_insert(0) += 1;
        assert_eq!(m.len(), 1);
        assert_eq!(m[&tuple!["a", 1i64]], 2);
    }

    #[test]
    fn display_formats_row() {
        assert_eq!(tuple![1i64, "x"].to_string(), "(1, x)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(tuple![1i64, "a"] < tuple![1i64, "b"]);
        assert!(tuple![0i64, "z"] < tuple![1i64, "a"]);
    }
}
