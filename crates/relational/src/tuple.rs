//! Tuples — deterministic rows of the single stored possible world.
//!
//! A [`Tuple`] is an immutable, cheaply clonable row. Interior `Arc` sharing
//! matters because the sampling evaluators copy tuples into Δ⁻/Δ⁺ auxiliary
//! tables and counted multisets on every MCMC step (§4.2).

use crate::fasthash::FxHasher;
use crate::value::Value;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Computes the cached 64-bit fingerprint a [`Tuple`] over `values` carries.
///
/// The fingerprint is an FxHash fold over every value, computed once per
/// tuple *construction*; all subsequent hash-map operations (counted
/// multisets, join states, group-by maps) hash just this one `u64` instead
/// of re-walking the values — strings included — on every probe.
///
/// The fold is hand-specialized per variant (scalar values fold their type
/// tag into a single mixing step instead of hashing a discriminant
/// separately) because tuple construction itself is on the per-proposal
/// write path. A fingerprint collision is never a correctness hazard: every
/// consumer (`CountedSet`, `TupleMap`, join/group maps) still compares full
/// values on equality.
pub fn fingerprint_values(values: &[Value]) -> u64 {
    // Per-type tag constants folded into the value's own mixing step.
    const TAG_INT: u64 = 0x9E37_79B9_7F4A_7C15;
    const TAG_FLOAT: u64 = 0xC2B2_AE3D_27D4_EB4F;
    let mut h = FxHasher::default();
    for v in values {
        match v {
            Value::Null => h.write_u8(0xF0),
            Value::Bool(b) => h.write_u8(0x01 | ((*b as u8) << 4)),
            Value::Int(i) => h.write_u64(TAG_INT ^ (*i as u64)),
            Value::Float(f) => h.write_u64(TAG_FLOAT ^ f.get().to_bits()),
            Value::Str(s) => {
                h.write(s.as_bytes());
                h.write_u8(0xFF);
            }
        }
    }
    h.finish()
}

/// An immutable row of values.
///
/// Cloning is O(1): the underlying buffer is shared. Mutation goes through
/// [`Tuple::with_value`], which produces a new tuple (copy-on-write), because
/// the delta machinery needs both the pre- and post-image of every update.
///
/// Each tuple carries a cached [fingerprint](Tuple::fingerprint) computed at
/// construction; `Hash` emits only that `u64`, so map probes in the delta
/// hot path cost one multiply instead of a full SipHash over the row.
/// Equality still compares values exactly (the fingerprint only serves as a
/// cheap inequality fast path), and ordering is lexicographic over values.
#[derive(Clone)]
pub struct Tuple {
    values: Arc<[Value]>,
    fp: u64,
}

impl PartialEq for Tuple {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.fp == other.fp && self.values == other.values
    }
}
impl Eq for Tuple {}

impl Hash for Tuple {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fp);
    }
}

impl PartialOrd for Tuple {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Tuple {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.values.cmp(&other.values)
    }
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        let fp = fingerprint_values(&values);
        Tuple {
            values: values.into(),
            fp,
        }
    }

    /// Builds a tuple whose fingerprint was already computed (hot-path
    /// constructor used by [`crate::fasthash::TupleMap`] when promoting a
    /// scratch key buffer into an owned map key). The caller must pass the
    /// fingerprint the key is addressed under — normally
    /// [`fingerprint_values`] of the same buffer.
    pub(crate) fn from_prehashed(values: Vec<Value>, fp: u64) -> Self {
        Tuple {
            values: values.into(),
            fp,
        }
    }

    /// The cached FxHash fingerprint of this row.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Builds a tuple from anything convertible to values.
    pub fn from_iter_values<I, V>(iter: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple::new(iter.into_iter().map(Into::into).collect())
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Field accessor by position.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Checked field accessor.
    pub fn try_get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Returns a new tuple with field `idx` replaced by `value`.
    ///
    /// This is the sole mutation path: the old tuple remains intact so the
    /// storage layer can hand both images to the delta tracker. It sits on
    /// the MCMC write path (one call per accepted proposal), so the new
    /// buffer is built in a single allocation: `Arc::from_iter` over a
    /// `TrustedLen` iterator writes elements straight into the shared
    /// allocation, skipping the intermediate `Vec`.
    pub fn with_value(&self, idx: usize, value: Value) -> Tuple {
        let mut values: Arc<[Value]> = self.values.iter().cloned().collect();
        Arc::get_mut(&mut values).expect("freshly built, uniquely owned")[idx] = value;
        let fp = fingerprint_values(&values);
        Tuple { values, fp }
    }

    /// Concatenates two tuples (used by products and joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Builds a tuple by cloning a value slice in one allocation (no
    /// intermediate `Vec`) — for hot paths assembling rows in a reusable
    /// scratch buffer.
    pub fn from_slice(values: &[Value]) -> Tuple {
        let values: Arc<[Value]> = Arc::from(values);
        let fp = fingerprint_values(&values);
        Tuple { values, fp }
    }

    /// Projects the tuple onto the given column positions. Single
    /// allocation: the projected values are written straight into the
    /// shared buffer (`TrustedLen` specialization of `collect`).
    pub fn project(&self, indices: &[usize]) -> Tuple {
        let values: Arc<[Value]> = indices.iter().map(|&i| self.values[i].clone()).collect();
        let fp = fingerprint_values(&values);
        Tuple { values, fp }
    }

    /// Projects the tuple's columns into a reusable scratch buffer —
    /// the allocation-free variant of [`Tuple::project`] the view layer
    /// uses for per-delta-row key lookups.
    pub fn project_into(&self, indices: &[usize], out: &mut Vec<Value>) {
        out.clear();
        out.extend(indices.iter().map(|&i| self.values[i].clone()));
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values.iter()).finish()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, "IBM", true]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple![1i64, "IBM", "B-ORG"];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), &Value::Int(1));
        assert_eq!(t.get(1).as_str(), Some("IBM"));
        assert_eq!(t.try_get(5), None);
    }

    #[test]
    fn clone_shares_buffer() {
        let t = tuple![1i64, "x"];
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.values, &u.values));
        assert_eq!(t, u);
    }

    #[test]
    fn with_value_is_copy_on_write() {
        let t = tuple![1i64, "O"];
        let u = t.with_value(1, Value::str("B-PER"));
        assert_eq!(t.get(1).as_str(), Some("O")); // old image intact
        assert_eq!(u.get(1).as_str(), Some("B-PER"));
        assert_eq!(u.get(0), t.get(0));
    }

    #[test]
    fn concat_and_project() {
        let a = tuple![1i64, "x"];
        let b = tuple![2i64, "y"];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 4);
        assert_eq!(c.get(2), &Value::Int(2));
        let p = c.project(&[3, 0]);
        assert_eq!(p, tuple!["y", 1i64]);
    }

    #[test]
    fn hash_eq_consistency_for_multiset_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<Tuple, i64> = HashMap::new();
        *m.entry(tuple!["a", 1i64]).or_insert(0) += 1;
        *m.entry(tuple!["a", 1i64]).or_insert(0) += 1;
        assert_eq!(m.len(), 1);
        assert_eq!(m[&tuple!["a", 1i64]], 2);
    }

    #[test]
    fn display_formats_row() {
        assert_eq!(tuple![1i64, "x"].to_string(), "(1, x)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(tuple![1i64, "a"] < tuple![1i64, "b"]);
        assert!(tuple![0i64, "z"] < tuple![1i64, "a"]);
    }

    #[test]
    fn fingerprint_is_deterministic_and_value_based() {
        let a = tuple![1i64, "IBM"];
        let b = tuple![1i64, "IBM"];
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), fingerprint_values(a.values()));
        assert_ne!(a.fingerprint(), tuple![1i64, "AMD"].fingerprint());
        // Derived constructors keep the fingerprint consistent.
        let c = a.with_value(1, Value::str("AMD"));
        assert_eq!(c.fingerprint(), tuple![1i64, "AMD"].fingerprint());
        let d = a.concat(&b);
        assert_eq!(
            d.fingerprint(),
            tuple![1i64, "IBM", 1i64, "IBM"].fingerprint()
        );
    }

    #[test]
    fn project_into_reuses_scratch() {
        let t = tuple![1i64, "x", 2i64, "y"];
        let mut scratch = Vec::new();
        t.project_into(&[3, 0], &mut scratch);
        assert_eq!(scratch, vec![Value::str("y"), Value::Int(1)]);
        assert_eq!(
            fingerprint_values(&scratch),
            t.project(&[3, 0]).fingerprint()
        );
        // A second projection reuses the buffer.
        t.project_into(&[1], &mut scratch);
        assert_eq!(scratch, vec![Value::str("x")]);
    }
}
