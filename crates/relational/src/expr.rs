//! Scalar expressions and predicates (the WHERE clauses of Queries 1–4).
//!
//! Expressions are written against column *names* and bound to positions
//! against the output schema of the plan node they run over. Evaluation uses
//! SQL three-valued logic: a comparison involving NULL is *unknown*, and
//! rows whose predicate is unknown are filtered out.

use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to an ordering (`a op b` where `ord` is the
    /// ordering of `a` relative to `b`).
    pub fn apply(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// An unbound scalar expression over named columns.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Reference to an output column by (possibly alias-qualified) name.
    Column(Arc<str>),
    /// A constant.
    Literal(Value),
    /// Binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND (three-valued).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (three-valued).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT (three-valued).
    Not(Box<Expr>),
    /// `IS NULL` test (never unknown).
    IsNull(Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<Arc<str>>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)] // DSL builder; `!expr` would be less readable
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// Binds column names to positions in `columns`, producing an executable
    /// expression. Returns the unknown name on failure.
    pub fn bind(&self, columns: &[Arc<str>]) -> Result<BoundExpr, String> {
        Ok(match self {
            Expr::Column(name) => {
                let idx = resolve_column(columns, name).ok_or_else(|| name.to_string())?;
                BoundExpr::Column(idx)
            }
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Cmp(op, a, b) => {
                BoundExpr::Cmp(*op, Box::new(a.bind(columns)?), Box::new(b.bind(columns)?))
            }
            Expr::And(a, b) => {
                BoundExpr::And(Box::new(a.bind(columns)?), Box::new(b.bind(columns)?))
            }
            Expr::Or(a, b) => BoundExpr::Or(Box::new(a.bind(columns)?), Box::new(b.bind(columns)?)),
            Expr::Not(a) => BoundExpr::Not(Box::new(a.bind(columns)?)),
            Expr::IsNull(a) => BoundExpr::IsNull(Box::new(a.bind(columns)?)),
        })
    }

    /// Column names referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<Arc<str>>) {
        match self {
            Expr::Column(n) => out.push(Arc::clone(n)),
            Expr::Literal(_) => {}
            Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.referenced_columns(out);
                b.referenced_columns(out);
            }
            Expr::Not(a) | Expr::IsNull(a) => a.referenced_columns(out),
        }
    }
}

/// Resolves `name` against output column names.
///
/// Matching rules: an exact match wins; otherwise an unqualified `name`
/// matches a qualified column `alias.name` when exactly one such column
/// exists (ambiguity is a bind failure, surfaced as "no match" with the
/// offending name).
pub fn resolve_column(columns: &[Arc<str>], name: &str) -> Option<usize> {
    if let Some(i) = columns.iter().position(|c| &**c == name) {
        return Some(i);
    }
    if !name.contains('.') {
        let mut found = None;
        for (i, c) in columns.iter().enumerate() {
            if let Some((_, suffix)) = c.split_once('.') {
                if suffix == name {
                    if found.is_some() {
                        return None; // ambiguous
                    }
                    found = Some(i);
                }
            }
        }
        return found;
    }
    None
}

/// An expression with column references resolved to positions.
#[derive(Clone, Debug, PartialEq)]
pub enum BoundExpr {
    /// Positional column reference.
    Column(usize),
    /// Constant.
    Literal(Value),
    /// Comparison.
    Cmp(CmpOp, Box<BoundExpr>, Box<BoundExpr>),
    /// Three-valued AND.
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// Three-valued OR.
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Three-valued NOT.
    Not(Box<BoundExpr>),
    /// NULL test.
    IsNull(Box<BoundExpr>),
}

impl BoundExpr {
    /// Evaluates to a value (logical sub-expressions yield booleans or NULL).
    pub fn eval(&self, tuple: &Tuple) -> Value {
        match self {
            BoundExpr::Column(i) => tuple.get(*i).clone(),
            BoundExpr::Literal(v) => v.clone(),
            BoundExpr::Cmp(op, a, b) => match a.eval(tuple).sql_cmp(&b.eval(tuple)) {
                Some(ord) => Value::Bool(op.apply(ord)),
                None => Value::Null,
            },
            BoundExpr::And(a, b) => match (a.eval_truth(tuple), b.eval_truth(tuple)) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            },
            BoundExpr::Or(a, b) => match (a.eval_truth(tuple), b.eval_truth(tuple)) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            BoundExpr::Not(a) => match a.eval_truth(tuple) {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            BoundExpr::IsNull(a) => Value::Bool(a.eval(tuple).is_null()),
        }
    }

    /// Leaf access without cloning: columns and literals are read in place.
    /// Predicate evaluation runs once per delta row per σ node, so the
    /// common `col ⋈ lit` shape must not touch refcounts.
    #[inline]
    fn leaf<'a>(&'a self, tuple: &'a Tuple) -> Option<&'a Value> {
        match self {
            BoundExpr::Column(i) => Some(tuple.get(*i)),
            BoundExpr::Literal(v) => Some(v),
            _ => None,
        }
    }

    /// Evaluates as a three-valued truth value. Comparisons over leaf
    /// operands (the overwhelmingly common case) are performed by reference
    /// — no `Value` clones, no atomic refcount traffic.
    pub fn eval_truth(&self, tuple: &Tuple) -> Option<bool> {
        match self {
            BoundExpr::Cmp(op, a, b) => {
                let ord = match (a.leaf(tuple), b.leaf(tuple)) {
                    (Some(va), Some(vb)) => va.sql_cmp(vb),
                    _ => a.eval(tuple).sql_cmp(&b.eval(tuple)),
                };
                ord.map(|o| op.apply(o))
            }
            BoundExpr::And(a, b) => match (a.eval_truth(tuple), b.eval_truth(tuple)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BoundExpr::Or(a, b) => match (a.eval_truth(tuple), b.eval_truth(tuple)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            BoundExpr::Not(a) => a.eval_truth(tuple).map(|b| !b),
            BoundExpr::IsNull(a) => Some(match a.leaf(tuple) {
                Some(v) => v.is_null(),
                None => a.eval(tuple).is_null(),
            }),
            other => {
                let truth = |v: &Value| match v {
                    Value::Bool(b) => Some(*b),
                    _ => None,
                };
                match other.leaf(tuple) {
                    Some(v) => truth(v),
                    None => truth(&other.eval(tuple)),
                }
            }
        }
    }

    /// SQL WHERE semantics: keep the row only when the predicate is `true`.
    #[inline]
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.eval_truth(tuple) == Some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn cols(names: &[&str]) -> Vec<Arc<str>> {
        names.iter().map(|n| Arc::from(*n)).collect()
    }

    #[test]
    fn query1_predicate() {
        // WHERE LABEL = 'B-PER'
        let p = Expr::col("label").eq(Expr::lit("B-PER"));
        let b = p.bind(&cols(&["tok_id", "label"])).unwrap();
        assert!(b.matches(&tuple![1i64, "B-PER"]));
        assert!(!b.matches(&tuple![1i64, "O"]));
    }

    #[test]
    fn bind_reports_unknown_column() {
        let p = Expr::col("missing").eq(Expr::lit(1i64));
        assert_eq!(p.bind(&cols(&["a"])).unwrap_err(), "missing");
    }

    #[test]
    fn qualified_name_resolution() {
        let columns = cols(&["T1.doc_id", "T1.label", "T2.doc_id"]);
        // Exact qualified match.
        assert_eq!(resolve_column(&columns, "T2.doc_id"), Some(2));
        // Unqualified match is ambiguous for doc_id...
        assert_eq!(resolve_column(&columns, "doc_id"), None);
        // ...but unique for label.
        assert_eq!(resolve_column(&columns, "label"), Some(1));
    }

    #[test]
    fn three_valued_logic() {
        let columns = cols(&["x"]);
        let p = Expr::col("x").eq(Expr::lit(1i64));
        let b = p.bind(&columns).unwrap();
        // NULL = 1 is unknown → filtered.
        assert_eq!(b.eval_truth(&tuple![Value::Null]), None);
        assert!(!b.matches(&tuple![Value::Null]));

        // NULL AND false = false; NULL OR true = true.
        let and = Expr::col("x")
            .eq(Expr::lit(1i64))
            .and(Expr::lit(false).eq(Expr::lit(true)));
        let and = and.bind(&columns).unwrap();
        assert_eq!(and.eval_truth(&tuple![Value::Null]), Some(false));

        let or = Expr::col("x")
            .eq(Expr::lit(1i64))
            .or(Expr::lit(1i64).eq(Expr::lit(1i64)));
        let or = or.bind(&columns).unwrap();
        assert_eq!(or.eval_truth(&tuple![Value::Null]), Some(true));
    }

    #[test]
    fn is_null_never_unknown() {
        let b = Expr::col("x").is_null().bind(&cols(&["x"])).unwrap();
        assert!(b.matches(&tuple![Value::Null]));
        assert!(!b.matches(&tuple![1i64]));
    }

    #[test]
    fn comparison_operators() {
        let columns = cols(&["x"]);
        let t5 = tuple![5i64];
        for (op, lo, hi, eq) in [
            (CmpOp::Lt, false, true, false),
            (CmpOp::Le, false, true, true),
            (CmpOp::Gt, true, false, false),
            (CmpOp::Ge, true, false, true),
            (CmpOp::Eq, false, false, true),
            (CmpOp::Ne, true, true, false),
        ] {
            let mk = |rhs: i64| {
                BoundExpr::Cmp(
                    op,
                    Box::new(BoundExpr::Column(0)),
                    Box::new(BoundExpr::Literal(Value::Int(rhs))),
                )
            };
            assert_eq!(mk(3).matches(&t5), lo, "{op} 5 vs 3");
            assert_eq!(mk(7).matches(&t5), hi, "{op} 5 vs 7");
            assert_eq!(mk(5).matches(&t5), eq, "{op} 5 vs 5");
        }
        let _ = columns;
    }

    #[test]
    fn not_inverts() {
        let b = Expr::col("x")
            .eq(Expr::lit(1i64))
            .not()
            .bind(&cols(&["x"]))
            .unwrap();
        assert!(!b.matches(&tuple![1i64]));
        assert!(b.matches(&tuple![2i64]));
        assert_eq!(b.eval_truth(&tuple![Value::Null]), None);
    }

    #[test]
    fn referenced_columns_collects_names() {
        let p = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").lt(Expr::col("c")));
        let mut out = Vec::new();
        p.referenced_columns(&mut out);
        let names: Vec<_> = out.iter().map(|s| s.to_string()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
