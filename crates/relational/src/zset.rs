//! Z-sets: weighted tuple collections, the algebra of incremental circuits.
//!
//! A Z-set maps tuples to signed `i64` weights. A *relation snapshot* is a
//! Z-set with strictly positive weights; a *delta* may carry weights of
//! either sign, where a negative weight is a retraction. This is the value
//! domain of DBSP-style incremental view maintenance: every circuit operator
//! consumes and produces Z-sets, and applying a delta to a snapshot is plain
//! addition.
//!
//! [`ZSet`] forms a commutative group under [`ZSet::merge`] (associative,
//! commutative, identity = empty, inverse = [`ZSet::negated`]); the property
//! suite `tests/prop_zset.rs` checks these laws on random values. Weights
//! that coalesce to zero are removed eagerly, so two Z-sets are equal iff
//! they contain the same weighted tuples — there are no hidden zero entries.
//!
//! The distinction from [`crate::counted::CountedSet`] is contractual, not
//! structural: `CountedSet` is the delta *transport* between the MCMC layer
//! and the views, while `ZSet` adds the checked state operations
//! ([`ZSet::apply_checked`]) that circuit operators use to detect
//! inconsistent streams (retracting a tuple that was never inserted) instead
//! of silently going negative through `distinct`/`aggregate` state.

use crate::counted::CountedSet;
use crate::fasthash::FxHashMap;
use crate::tuple::Tuple;
use std::collections::hash_map;
use std::fmt;

/// A tuple-to-weight map with no zero-weight entries.
///
/// Backed by the same fingerprint-keyed [`FxHashMap`] as
/// [`CountedSet`]: adding a tuple hashes one
/// cached `u64`, and an empty Z-set performs no heap allocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ZSet {
    weights: FxHashMap<Tuple, i64>,
}

/// Typed error for a checked state update that would drive a weight
/// negative: a retraction of a tuple the state never held (or held with a
/// smaller weight). On a consistent delta stream this cannot happen; seeing
/// it means the caller fed a Δ⁻ image that does not match the stored world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NegativeWeight {
    /// The tuple whose weight would have gone negative.
    pub tuple: Tuple,
    /// The weight the update would have produced (strictly negative).
    pub weight: i64,
}

impl fmt::Display for NegativeWeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retraction without matching insertion: tuple {} would reach weight {}",
            self.tuple, self.weight
        )
    }
}

impl std::error::Error for NegativeWeight {}

impl ZSet {
    /// Creates an empty Z-set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty Z-set with capacity for `n` tuples.
    pub fn with_capacity(n: usize) -> Self {
        ZSet {
            weights: FxHashMap::with_capacity_and_hasher(n, Default::default()),
        }
    }

    /// Builds a Z-set from `(tuple, weight)` pairs (weights coalesce).
    pub fn from_entries<I: IntoIterator<Item = (Tuple, i64)>>(iter: I) -> Self {
        let mut z = ZSet::new();
        for (t, w) in iter {
            z.add(t, w);
        }
        z
    }

    /// Adds `w` to the weight of `tuple`, removing the entry when it
    /// coalesces to zero. Returns the new weight.
    pub fn add(&mut self, tuple: Tuple, w: i64) -> i64 {
        if w == 0 {
            return self.weight(&tuple);
        }
        match self.weights.entry(tuple) {
            hash_map::Entry::Occupied(mut e) => {
                let c = e.get_mut();
                *c += w;
                if *c == 0 {
                    e.remove();
                    0
                } else {
                    *c
                }
            }
            hash_map::Entry::Vacant(e) => {
                e.insert(w);
                w
            }
        }
    }

    /// Weight of a tuple (zero when absent).
    pub fn weight(&self, tuple: &Tuple) -> i64 {
        self.weights.get(tuple).copied().unwrap_or(0)
    }

    /// True when the tuple has positive weight (is in the answer set).
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.weight(tuple) > 0
    }

    /// True when no entries remain.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Number of distinct tuples with nonzero weight.
    pub fn distinct_len(&self) -> usize {
        self.weights.len()
    }

    /// Sum of all weights (may be negative for deltas).
    pub fn total_weight(&self) -> i64 {
        self.weights.values().sum()
    }

    /// Iterates `(tuple, weight)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.weights.iter().map(|(t, &w)| (t, w))
    }

    /// Iterates only tuples with positive weight.
    pub fn support(&self) -> impl Iterator<Item = &Tuple> {
        self.weights.iter().filter(|(_, &w)| w > 0).map(|(t, _)| t)
    }

    /// Merges another Z-set into this one (group addition).
    pub fn merge(&mut self, other: &ZSet) {
        for (t, w) in other.iter() {
            self.add(t.clone(), w);
        }
    }

    /// Merges, consuming the other Z-set (avoids tuple clones).
    pub fn merge_owned(&mut self, other: ZSet) {
        if self.weights.is_empty() {
            self.weights = other.weights;
            return;
        }
        for (t, w) in other.weights {
            self.add(t, w);
        }
    }

    /// The group inverse: every weight negated.
    pub fn negated(&self) -> ZSet {
        ZSet {
            weights: self.weights.iter().map(|(t, w)| (t.clone(), -w)).collect(),
        }
    }

    /// `distinct`: positive-support tuples at weight one — the Z-set image
    /// of set semantics. Negative entries are dropped.
    pub fn distinct(&self) -> ZSet {
        ZSet {
            weights: self
                .weights
                .iter()
                .filter(|(_, &w)| w > 0)
                .map(|(t, _)| (t.clone(), 1))
                .collect(),
        }
    }

    /// True when every weight is strictly positive (a valid snapshot).
    pub fn is_snapshot(&self) -> bool {
        self.weights.values().all(|&w| w > 0)
    }

    /// Checked state update: merges `delta` into this snapshot, requiring
    /// every resulting weight to stay non-negative. On violation the state is
    /// left **unchanged** (the update is transactional) and the offending
    /// tuple is reported — the typed surface for the "retraction of a
    /// never-inserted tuple" bug class.
    pub fn apply_checked(&mut self, delta: &ZSet) -> Result<(), NegativeWeight> {
        for (t, w) in delta.iter() {
            if w < 0 && self.weight(t) + w < 0 {
                return Err(NegativeWeight {
                    tuple: t.clone(),
                    weight: self.weight(t) + w,
                });
            }
        }
        self.merge(delta);
        Ok(())
    }

    /// Sorted `(tuple, weight)` snapshot of all entries (deterministic, for
    /// tests and experiment output).
    pub fn sorted_entries(&self) -> Vec<(Tuple, i64)> {
        let mut v: Vec<(Tuple, i64)> = self.iter().map(|(t, w)| (t.clone(), w)).collect();
        v.sort();
        v
    }

    /// Sorted snapshot of the positive support.
    pub fn sorted_support(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.support().cloned().collect();
        v.sort();
        v
    }

    /// Converts into the delta-transport representation.
    pub fn into_counted(self) -> CountedSet {
        let mut out = CountedSet::with_capacity(self.weights.len());
        for (t, w) in self.weights {
            out.add(t, w);
        }
        out
    }

    /// Builds a Z-set from the delta-transport representation.
    pub fn from_counted(set: &CountedSet) -> ZSet {
        let mut out = ZSet::with_capacity(set.distinct_len());
        for (t, w) in set.iter() {
            out.add(t.clone(), w);
        }
        out
    }
}

impl FromIterator<(Tuple, i64)> for ZSet {
    fn from_iter<I: IntoIterator<Item = (Tuple, i64)>>(iter: I) -> Self {
        ZSet::from_entries(iter)
    }
}

impl From<&CountedSet> for ZSet {
    fn from(set: &CountedSet) -> Self {
        ZSet::from_counted(set)
    }
}

impl From<ZSet> for CountedSet {
    fn from(z: ZSet) -> Self {
        z.into_counted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn weights_coalesce_to_zero_means_absent() {
        let mut z = ZSet::new();
        z.add(tuple!["a"], 3);
        z.add(tuple!["a"], -3);
        assert!(z.is_empty());
        assert_eq!(z.weight(&tuple!["a"]), 0);
        assert_eq!(z.distinct_len(), 0);
    }

    #[test]
    fn zero_weight_add_is_noop() {
        let mut z = ZSet::new();
        z.add(tuple!["a"], 0);
        assert!(z.is_empty());
    }

    #[test]
    fn negated_is_group_inverse() {
        let z = ZSet::from_entries(vec![(tuple!["a"], 2), (tuple!["b"], -1)]);
        let mut sum = z.clone();
        sum.merge(&z.negated());
        assert!(sum.is_empty());
    }

    #[test]
    fn distinct_clamps_to_unit_weight() {
        let z = ZSet::from_entries(vec![(tuple!["a"], 5), (tuple!["b"], -2)]);
        let d = z.distinct();
        assert_eq!(d.weight(&tuple!["a"]), 1);
        assert_eq!(d.weight(&tuple!["b"]), 0);
        assert!(d.is_snapshot());
    }

    #[test]
    fn checked_apply_rejects_unmatched_retraction() {
        let mut z = ZSet::from_entries(vec![(tuple!["present"], 1)]);
        let bad = ZSet::from_entries(vec![(tuple!["ghost"], -1)]);
        let err = z.apply_checked(&bad).unwrap_err();
        assert_eq!(err.tuple, tuple!["ghost"]);
        assert_eq!(err.weight, -1);
        // Transactional: the state is untouched.
        assert_eq!(z.sorted_entries(), vec![(tuple!["present"], 1)]);
        // A matched retraction passes.
        let good = ZSet::from_entries(vec![(tuple!["present"], -1)]);
        z.apply_checked(&good).unwrap();
        assert!(z.is_empty());
    }

    #[test]
    fn checked_apply_error_displays_tuple() {
        let mut z = ZSet::new();
        let bad = ZSet::from_entries(vec![(tuple!["ghost"], -2)]);
        let err = z.apply_checked(&bad).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("retraction without matching insertion"),
            "{msg}"
        );
        assert!(msg.contains("-2"), "{msg}");
    }

    #[test]
    fn counted_round_trip() {
        let z = ZSet::from_entries(vec![(tuple!["a"], 2), (tuple!["b"], -1)]);
        let c: CountedSet = z.clone().into();
        assert_eq!(c.sorted_entries(), z.sorted_entries());
        let back = ZSet::from(&c);
        assert_eq!(back, z);
    }

    #[test]
    fn merge_owned_fast_path() {
        let mut a = ZSet::new();
        a.merge_owned(ZSet::from_entries(vec![(tuple!["x"], 1)]));
        assert_eq!(a.weight(&tuple!["x"]), 1);
        a.merge_owned(ZSet::from_entries(vec![(tuple!["x"], 1)]));
        assert_eq!(a.weight(&tuple!["x"]), 2);
    }

    #[test]
    fn support_and_totals() {
        let z = ZSet::from_entries(vec![(tuple!["p"], 2), (tuple!["n"], -3)]);
        assert_eq!(z.sorted_support(), vec![tuple!["p"]]);
        assert_eq!(z.total_weight(), -1);
        assert!(!z.is_snapshot());
        assert!(z.contains(&tuple!["p"]));
        assert!(!z.contains(&tuple!["n"]));
    }
}
