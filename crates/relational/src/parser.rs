//! A SQL-style text frontend for the relational layer.
//!
//! The paper poses its four evaluation queries (§5) as SQL over the TOKEN
//! relation; this module parses that dialect into the existing [`Plan`]
//! algebra so callers no longer hand-assemble ASTs. Supported surface:
//!
//! * `SELECT [DISTINCT] <items> FROM <tables> [WHERE …] [GROUP BY …]
//!   [HAVING …]` — items are columns or aggregates (`COUNT(*)`,
//!   `SUM/MIN/MAX(col)`, each with an optional
//!   `FILTER (WHERE …)` clause and `AS` alias);
//! * `FROM` lists tables (`TOKEN`, `TOKEN T1`) separated by commas or
//!   `JOIN … ON a = b [AND …]`;
//! * predicates with `= <> < <= > >= AND OR NOT IS [NOT] NULL`,
//!   parentheses, string/number/boolean/NULL literals;
//! * `UNION / EXCEPT / INTERSECT`, each with an optional `ALL`
//!   (`INTERSECT` binds tighter than `UNION`/`EXCEPT`, as in standard SQL);
//! * a `WITH RECURSIVE`-lite prefix — exactly one recursive CTE of the form
//!   `WITH RECURSIVE R (c, …) AS (base UNION [ALL] step) body`, lowering to
//!   [`Plan::Fixpoint`]. The last top-level `UNION` inside the parentheses
//!   splits base from step (so the recursive term comes last, as in standard
//!   SQL); the base term may not reference `R`, and references to `R` in the
//!   body may not carry an alias.
//!
//! Parsing produces a [`SqlQuery`] AST whose [`fmt::Display`] prints
//! canonical SQL — `parse ∘ print` is a fixpoint, which the round-trip
//! tests assert. [`SqlQuery::to_plan`] lowers the AST to a naive [`Plan`]:
//! joins become cross products under a selection, exactly the shape the
//! [`crate::planner`] optimizer then rewrites into pushed-down hash joins.
//!
//! The parser never panics: every malformed input surfaces as a
//! [`ParseError`] carrying the byte offset of the offending token.
//!
//! # Example
//!
//! ```
//! use fgdb_relational::parser::{parse, parse_plan};
//!
//! // Text → AST → canonical text (parse ∘ print is a fixpoint)…
//! let ast = parse("SELECT string FROM TOKEN WHERE label = 'B-PER'").unwrap();
//! assert_eq!(ast.to_string(), "SELECT string FROM TOKEN WHERE label = 'B-PER'");
//!
//! // …and AST → naive plan (σ under π, ready for the planner).
//! let plan = parse_plan("SELECT string FROM TOKEN WHERE label = 'B-PER'").unwrap();
//! assert_eq!(plan.to_string(), "π[string](σ(Scan(TOKEN)))");
//!
//! // Malformed input is an error with a byte offset, never a panic.
//! assert!(parse("SELECT FROM WHERE").is_err());
//! ```

use crate::algebra::{AggExpr, AggFunc, Plan, DEFAULT_FIXPOINT_CAP};
use crate::expr::{CmpOp, Expr};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A parse or lowering failure: what went wrong and (when known) the byte
/// offset in the input where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the offending token, when attributable.
    pub offset: Option<usize>,
}

impl ParseError {
    fn at(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset: Some(offset),
        }
    }

    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
            offset: None,
        }
    }

    /// Renders the error against the original query text as a multi-line
    /// diagnostic: the message, the offending line, and a caret marking the
    /// error column.
    ///
    /// Total for *any* `(offset, sql)` pair — the serving layer sends this
    /// back to remote clients, so it must never panic: offsets past the end
    /// of the text clamp to the end, and offsets that land inside a
    /// multibyte UTF-8 scalar are walked back to the preceding character
    /// boundary before any slicing. The caret column is counted in
    /// characters, not bytes, so it stays aligned under non-ASCII text.
    pub fn render(&self, sql: &str) -> String {
        let Some(raw) = self.offset else {
            return self.to_string();
        };
        let mut o = raw.min(sql.len());
        while o > 0 && !sql.is_char_boundary(o) {
            o -= 1;
        }
        // `+ 1` past a found '\n' is boundary-safe: '\n' is one byte.
        let line_start = sql[..o].rfind('\n').map_or(0, |p| p + 1);
        let line_end = sql[o..].find('\n').map_or(sql.len(), |p| o + p);
        let line = &sql[line_start..line_end];
        let col = sql[line_start..o].chars().count();
        format!("{self}\n{line}\n{:>width$}", "^", width = col + 1)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} (at byte {o})", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------- tokens --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Bare identifier or keyword (case preserved; keywords matched
    /// case-insensitively).
    Ident(String),
    /// Numeric literal text (sign included when adjacent).
    Number(String),
    /// String literal contents (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation / operator.
    Sym(&'static str),
}

fn tokenize(sql: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = sql.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(ParseError::at("unterminated string literal", start)),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Advance one whole UTF-8 scalar, not one byte.
                            let rest = &sql[i..];
                            let c = rest.chars().next().expect("in-bounds char");
                            s.push(c);
                            i += c.len_utf8();
                        }
                    }
                }
                toks.push((Tok::Str(s), start));
            }
            b'0'..=b'9' => {
                let start = i;
                i = scan_number(bytes, i);
                toks.push((Tok::Number(sql[start..i].to_string()), start));
            }
            b'-' if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                let start = i;
                i = scan_number(bytes, i + 1);
                toks.push((Tok::Number(sql[start..i].to_string()), start));
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(sql[start..i].to_string()), start));
            }
            b'<' => {
                let sym = match bytes.get(i + 1) {
                    Some(b'>') => "<>",
                    Some(b'=') => "<=",
                    _ => "<",
                };
                toks.push((Tok::Sym(sym), i));
                i += sym.len();
            }
            b'>' => {
                let sym = if bytes.get(i + 1) == Some(&b'=') {
                    ">="
                } else {
                    ">"
                };
                toks.push((Tok::Sym(sym), i));
                i += sym.len();
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                toks.push((Tok::Sym("<>"), i));
                i += 2;
            }
            b'=' => {
                toks.push((Tok::Sym("="), i));
                i += 1;
            }
            b'(' | b')' | b',' | b'.' | b'*' => {
                let sym = match b {
                    b'(' => "(",
                    b')' => ")",
                    b',' => ",",
                    b'.' => ".",
                    _ => "*",
                };
                toks.push((Tok::Sym(sym), i));
                i += 1;
            }
            _ => {
                let c = sql[i..].chars().next().expect("in-bounds char");
                return Err(ParseError::at(format!("unexpected character `{c}`"), i));
            }
        }
    }
    Ok(toks)
}

/// Scans digits, an optional fraction, and an optional exponent starting at
/// `i` (first digit already known present at `i` or `i-1`).
fn scan_number(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    i
}

// ------------------------------------------------------------------- AST --

/// An aggregate function call: `COUNT(*)`, `SUM(col)`, `MIN(col)`,
/// `MAX(col)`, each optionally restricted by `FILTER (WHERE …)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The aggregate function (reuses the algebra's [`AggFunc`]).
    pub func: AggFunc,
    /// Optional `FILTER (WHERE …)` predicate.
    pub filter: Option<Box<SqlExpr>>,
}

/// A scalar/boolean expression as written, before lowering to [`Expr`].
/// Unlike [`Expr`] it may contain aggregate calls (legal in `SELECT` items
/// and `HAVING`, rejected in `WHERE` and `FILTER`).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Possibly-qualified column reference.
    Column(Arc<str>),
    /// Literal value.
    Literal(Value),
    /// Aggregate call.
    Agg(AggCall),
    /// Binary comparison.
    Cmp(CmpOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Logical AND.
    And(Box<SqlExpr>, Box<SqlExpr>),
    /// Logical OR.
    Or(Box<SqlExpr>, Box<SqlExpr>),
    /// Logical NOT.
    Not(Box<SqlExpr>),
    /// `IS NULL` test.
    IsNull(Box<SqlExpr>),
}

/// One `SELECT` list entry.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// Plain column reference.
    Column(Arc<str>),
    /// Aggregate call with an optional `AS` output name.
    Aggregate {
        /// The call.
        call: AggCall,
        /// Output column name (`AS name`); synthesized when absent.
        alias: Option<Arc<str>>,
    },
}

/// A base table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Relation name.
    pub relation: Arc<str>,
    /// Optional alias (`TOKEN T1` or `TOKEN AS T1`).
    pub alias: Option<Arc<str>>,
}

/// One `JOIN table ON a = b [AND …]` clause attached to a FROM item.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// Equality pairs from the `ON` clause, as written.
    pub on: Vec<(Arc<str>, Arc<str>)>,
}

/// One comma-separated FROM entry: a base table plus its JOIN chain.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// The base table.
    pub base: TableRef,
    /// Chained joins, in order.
    pub joins: Vec<JoinClause>,
}

/// One `SELECT` block (no set operations).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// `SELECT *` (mutually exclusive with `items`).
    pub star: bool,
    /// Select-list entries (empty iff `star`).
    pub items: Vec<SelectItem>,
    /// FROM clause entries.
    pub from: Vec<FromItem>,
    /// WHERE predicate.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY columns.
    pub group_by: Vec<Arc<str>>,
    /// HAVING predicate (may contain aggregate calls).
    pub having: Option<SqlExpr>,
}

/// A set operation connective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `UNION` (bag union with `ALL`, set union otherwise).
    Union,
    /// `EXCEPT` (monus with `ALL`, set difference otherwise).
    Except,
    /// `INTERSECT` (bag min with `ALL`, set intersection otherwise).
    Intersect,
}

/// A full query: one `SELECT` or a left-associative set-operation tree.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlQuery {
    /// A single SELECT block.
    Select(Box<SelectStmt>),
    /// `left <op> [ALL] right`.
    SetOp {
        /// The connective.
        op: SetOp,
        /// `ALL` keeps multiplicities; without it both sides are dedup'd.
        all: bool,
        /// Left input.
        left: Box<SqlQuery>,
        /// Right input.
        right: Box<SqlQuery>,
    },
    /// `WITH RECURSIVE name (columns) AS (base UNION [ALL] step) body`.
    ///
    /// One linear-recursive CTE. The base term seeds the recursion and may
    /// not reference `name`; the step term references `name` as a table and
    /// re-fires until a fixpoint (`UNION`) or an empty working table
    /// (`UNION ALL`); the body consumes the closed relation.
    WithRecursive {
        /// The recursive relation's name.
        name: Arc<str>,
        /// Its declared column names (renames whatever the base emits).
        columns: Vec<Arc<str>>,
        /// `true` for `UNION ALL` (bag accumulation — diverges to the
        /// iteration cap on cyclic data), `false` for `UNION` (set).
        all: bool,
        /// The non-recursive seed term.
        base: Box<SqlQuery>,
        /// The recursive term (no top-level `UNION` of its own).
        step: Box<SqlQuery>,
        /// The query consuming the recursive relation.
        body: Box<SqlQuery>,
    },
}

/// Parses a SQL query into its AST.
pub fn parse(sql: &str) -> Result<SqlQuery, ParseError> {
    let toks = tokenize(sql)?;
    let mut p = Parser {
        toks,
        pos: 0,
        end: sql.len(),
        expr_depth: 0,
        expr_nodes: 0,
        selects: 0,
    };
    let q = if p.peek_kw("WITH") {
        p.with_recursive()?
    } else {
        p.query()?
    };
    if let Some((_, off)) = p.peek_raw() {
        return Err(ParseError::at("trailing input after query", *off));
    }
    Ok(q)
}

/// Parses a SQL query and lowers it to a naive (unoptimized) [`Plan`].
pub fn parse_plan(sql: &str) -> Result<Plan, ParseError> {
    parse(sql)?.to_plan()
}

// ---------------------------------------------------------------- parser --

/// Resource caps keeping every recursive structure shallow enough that no
/// downstream pass (lowering, folding, printing, execution) can overflow
/// the stack on hostile input. Generous for real queries.
const MAX_EXPR_DEPTH: usize = 256;
const MAX_EXPR_NODES: usize = 4096;
const MAX_SELECTS: usize = 256;
const MAX_FROM_TABLES: usize = 64;

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    end: usize,
    /// Current parenthesis/clause nesting inside `expr`.
    expr_depth: usize,
    /// Expression nodes built so far (whole statement).
    expr_nodes: usize,
    /// SELECT blocks seen so far (set-operation chains).
    selects: usize,
}

impl Parser {
    fn peek_raw(&self) -> Option<&(Tok, usize)> {
        self.toks.get(self.pos)
    }

    fn offset(&self) -> usize {
        self.peek_raw().map_or(self.end, |(_, o)| *o)
    }

    /// True when the next token is the keyword `kw` (case-insensitive).
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek_raw(), Some((Tok::Ident(s), _)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::at(format!("expected `{kw}`"), self.offset()))
        }
    }

    fn peek_sym(&self, sym: &str) -> bool {
        matches!(self.peek_raw(), Some((Tok::Sym(s), _)) if *s == sym)
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(ParseError::at(format!("expected `{sym}`"), self.offset()))
        }
    }

    /// A bare identifier that is not a reserved keyword.
    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek_raw() {
            Some((Tok::Ident(s), off)) => {
                if RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                    return Err(ParseError::at(
                        format!("expected identifier, found keyword `{s}`"),
                        *off,
                    ));
                }
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(ParseError::at("expected identifier", self.offset())),
        }
    }

    /// A possibly-qualified column name (`col` or `alias.col`).
    fn column_name(&mut self) -> Result<Arc<str>, ParseError> {
        let head = self.ident()?;
        if self.eat_sym(".") {
            let tail = self.ident()?;
            Ok(Arc::from(format!("{head}.{tail}")))
        } else {
            Ok(Arc::from(head))
        }
    }

    // with_recursive := WITH RECURSIVE ident "(" ident ("," ident)* ")"
    //                   AS "(" query ")" query
    //
    // Only valid at the very top of a statement (so recursion cannot nest),
    // and the parenthesized query must be a top-level UNION: its last
    // operand is the recursive step, everything left of it the base. Since
    // `query` is left-associative the step is always a single
    // `intersect_term`, which keeps printing unambiguous.
    fn with_recursive(&mut self) -> Result<SqlQuery, ParseError> {
        self.expect_kw("WITH")?;
        self.expect_kw("RECURSIVE")?;
        let name: Arc<str> = Arc::from(self.ident()?);
        self.expect_sym("(")?;
        let mut columns = vec![Arc::from(self.ident()?)];
        while self.eat_sym(",") {
            columns.push(Arc::from(self.ident()?));
        }
        self.expect_sym(")")?;
        self.expect_kw("AS")?;
        let cte_off = self.offset();
        self.expect_sym("(")?;
        let cte = self.query()?;
        self.expect_sym(")")?;
        let SqlQuery::SetOp {
            op: SetOp::Union,
            all,
            left: base,
            right: step,
        } = cte
        else {
            return Err(ParseError::at(
                "recursive CTE must be `base UNION [ALL] step`",
                cte_off,
            ));
        };
        if references_table(&base, &name) {
            return Err(ParseError::at(
                format!("the non-recursive term may not reference `{name}`"),
                cte_off,
            ));
        }
        let body = Box::new(self.query()?);
        Ok(SqlQuery::WithRecursive {
            name,
            columns,
            all,
            base,
            step,
            body,
        })
    }

    // query := intersect_term ((UNION|EXCEPT) [ALL] intersect_term)*
    //
    // INTERSECT binds tighter than UNION/EXCEPT, as in standard SQL:
    // `A UNION B INTERSECT C` is `A UNION (B INTERSECT C)`.
    fn query(&mut self) -> Result<SqlQuery, ParseError> {
        let mut left = self.intersect_term()?;
        loop {
            let op = if self.eat_kw("UNION") {
                SetOp::Union
            } else if self.eat_kw("EXCEPT") {
                SetOp::Except
            } else {
                break;
            };
            let all = self.eat_kw("ALL");
            let right = self.intersect_term()?;
            left = SqlQuery::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    // intersect_term := select_stmt (INTERSECT [ALL] select_stmt)*
    fn intersect_term(&mut self) -> Result<SqlQuery, ParseError> {
        let mut left = SqlQuery::Select(Box::new(self.select_stmt()?));
        while self.eat_kw("INTERSECT") {
            let all = self.eat_kw("ALL");
            let right = SqlQuery::Select(Box::new(self.select_stmt()?));
            left = SqlQuery::SetOp {
                op: SetOp::Intersect,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, ParseError> {
        self.selects += 1;
        if self.selects > MAX_SELECTS {
            return Err(ParseError::at(
                format!("more than {MAX_SELECTS} SELECT blocks in one query"),
                self.offset(),
            ));
        }
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let (star, items) = if self.eat_sym("*") {
            (true, Vec::new())
        } else {
            let mut items = vec![self.select_item()?];
            while self.eat_sym(",") {
                items.push(self.select_item()?);
            }
            (false, items)
        };
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_with_joins()?];
        while self.eat_sym(",") {
            from.push(self.table_with_joins()?);
        }
        let n_tables: usize = from.iter().map(|f| 1 + f.joins.len()).sum();
        if n_tables > MAX_FROM_TABLES {
            return Err(ParseError::at(
                format!("more than {MAX_FROM_TABLES} tables in one FROM clause"),
                self.offset(),
            ));
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.column_name()?);
            while self.eat_sym(",") {
                group_by.push(self.column_name()?);
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            star,
            items,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if let Some(call) = self.try_agg_call()? {
            let alias = if self.eat_kw("AS") {
                Some(Arc::from(self.ident()?))
            } else {
                None
            };
            return Ok(SelectItem::Aggregate { call, alias });
        }
        let off = self.offset();
        let name = self.column_name()?;
        if self.eat_kw("AS") {
            return Err(ParseError::at(
                "AS is only supported on aggregates (plain columns keep their name)",
                off,
            ));
        }
        Ok(SelectItem::Column(name))
    }

    /// Parses an aggregate call if the next tokens start one.
    fn try_agg_call(&mut self) -> Result<Option<AggCall>, ParseError> {
        let func = if self.peek_kw("COUNT") {
            self.pos += 1;
            self.expect_sym("(")?;
            self.expect_sym("*")?;
            self.expect_sym(")")?;
            AggFunc::Count
        } else if self.peek_kw("SUM") || self.peek_kw("MIN") || self.peek_kw("MAX") {
            let which = match self.peek_raw() {
                Some((Tok::Ident(s), _)) => s.to_ascii_uppercase(),
                _ => unreachable!("peeked above"),
            };
            self.pos += 1;
            self.expect_sym("(")?;
            let col = self.column_name()?;
            self.expect_sym(")")?;
            match which.as_str() {
                "SUM" => AggFunc::Sum(col),
                "MIN" => AggFunc::Min(col),
                _ => AggFunc::Max(col),
            }
        } else {
            return Ok(None);
        };
        let filter = if self.eat_kw("FILTER") {
            self.expect_sym("(")?;
            self.expect_kw("WHERE")?;
            let e = self.expr()?;
            self.expect_sym(")")?;
            Some(Box::new(e))
        } else {
            None
        };
        Ok(Some(AggCall { func, filter }))
    }

    fn table_with_joins(&mut self) -> Result<FromItem, ParseError> {
        let base = self.table_ref()?;
        let mut joins = Vec::new();
        while self.eat_kw("JOIN") {
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let mut on = vec![self.join_pair()?];
            while self.eat_kw("AND") {
                on.push(self.join_pair()?);
            }
            joins.push(JoinClause { table, on });
        }
        Ok(FromItem { base, joins })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let relation = Arc::from(self.ident()?);
        let aliased = self.eat_kw("AS")
            || matches!(self.peek_raw(), Some((Tok::Ident(s), _))
                if !RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k)));
        let alias = if aliased {
            Some(Arc::from(self.ident()?))
        } else {
            None
        };
        Ok(TableRef { relation, alias })
    }

    fn join_pair(&mut self) -> Result<(Arc<str>, Arc<str>), ParseError> {
        let a = self.column_name()?;
        self.expect_sym("=")?;
        let b = self.column_name()?;
        Ok((a, b))
    }

    /// Accounts one AST node against the statement budget.
    fn bump_node(&mut self) -> Result<(), ParseError> {
        self.expr_nodes += 1;
        if self.expr_nodes > MAX_EXPR_NODES {
            return Err(ParseError::at(
                format!("expression too large (more than {MAX_EXPR_NODES} terms)"),
                self.offset(),
            ));
        }
        Ok(())
    }

    // expr := and_expr (OR and_expr)*, with a nesting guard: parenthesized
    // sub-expressions re-enter here, so unbounded input cannot recurse the
    // parser (or any later tree walk) into a stack overflow.
    fn expr(&mut self) -> Result<SqlExpr, ParseError> {
        self.expr_depth += 1;
        if self.expr_depth > MAX_EXPR_DEPTH {
            return Err(ParseError::at(
                format!("expression nesting deeper than {MAX_EXPR_DEPTH}"),
                self.offset(),
            ));
        }
        let result = self.or_expr();
        self.expr_depth -= 1;
        result
    }

    fn or_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            self.bump_node()?;
            let right = self.and_expr()?;
            left = SqlExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    // and_expr := not_expr (AND not_expr)*
    fn and_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            self.bump_node()?;
            let right = self.not_expr()?;
            left = SqlExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    // not_expr := NOT* comparison (NOT runs consumed iteratively so a long
    // chain cannot recurse the parser; each wrap still pays the node budget)
    fn not_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut nots = 0usize;
        while self.eat_kw("NOT") {
            self.bump_node()?;
            nots += 1;
        }
        let mut e = self.comparison()?;
        for _ in 0..nots {
            e = SqlExpr::Not(Box::new(e));
        }
        Ok(e)
    }

    // comparison := operand [cmp_op operand | IS [NOT] NULL]
    fn comparison(&mut self) -> Result<SqlExpr, ParseError> {
        self.bump_node()?;
        let left = self.operand()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            let test = SqlExpr::IsNull(Box::new(left));
            return Ok(if negated {
                SqlExpr::Not(Box::new(test))
            } else {
                test
            });
        }
        for (sym, op) in [
            ("=", CmpOp::Eq),
            ("<>", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat_sym(sym) {
                let right = self.operand()?;
                return Ok(SqlExpr::Cmp(op, Box::new(left), Box::new(right)));
            }
        }
        Ok(left)
    }

    // operand := literal | agg_call | column | '(' expr ')'
    fn operand(&mut self) -> Result<SqlExpr, ParseError> {
        if self.eat_sym("(") {
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        match self.peek_raw() {
            Some((Tok::Number(text), off)) => {
                let (text, off) = (text.clone(), *off);
                self.pos += 1;
                let v = parse_number(&text)
                    .ok_or_else(|| ParseError::at(format!("bad number `{text}`"), off))?;
                Ok(SqlExpr::Literal(v))
            }
            Some((Tok::Str(s), _)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(SqlExpr::Literal(Value::str(s)))
            }
            Some((Tok::Ident(s), _)) if s.eq_ignore_ascii_case("NULL") => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Value::Null))
            }
            Some((Tok::Ident(s), _)) if s.eq_ignore_ascii_case("TRUE") => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Value::Bool(true)))
            }
            Some((Tok::Ident(s), _)) if s.eq_ignore_ascii_case("FALSE") => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Value::Bool(false)))
            }
            _ => {
                if let Some(call) = self.try_agg_call()? {
                    return Ok(SqlExpr::Agg(call));
                }
                Ok(SqlExpr::Column(self.column_name()?))
            }
        }
    }
}

fn parse_number(text: &str) -> Option<Value> {
    if text.contains('.') || text.contains('e') || text.contains('E') {
        // Overflowing literals (e.g. `1e999` → ∞) are rejected: there is no
        // SQL literal for non-finite floats, so accepting one would break
        // the parse ∘ print fixpoint.
        text.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(Value::float)
    } else {
        text.parse::<i64>().ok().map(Value::Int)
    }
}

/// Keywords that cannot be used as bare identifiers.
const RESERVED: &[&str] = &[
    "SELECT",
    "DISTINCT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "JOIN",
    "ON",
    "AND",
    "OR",
    "NOT",
    "NULL",
    "IS",
    "TRUE",
    "FALSE",
    "AS",
    "UNION",
    "EXCEPT",
    "INTERSECT",
    "ALL",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "FILTER",
    "WITH",
    "RECURSIVE",
];

/// True when `q` scans `name` anywhere in a FROM clause.
fn references_table(q: &SqlQuery, name: &str) -> bool {
    match q {
        SqlQuery::Select(s) => s.from.iter().any(|item| {
            &*item.base.relation == name || item.joins.iter().any(|j| &*j.table.relation == name)
        }),
        SqlQuery::SetOp { left, right, .. } => {
            references_table(left, name) || references_table(right, name)
        }
        SqlQuery::WithRecursive { .. } => unreachable!("WITH cannot nest"),
    }
}

// -------------------------------------------------------------- lowering --

impl SqlQuery {
    /// Lowers the AST to a naive [`Plan`]: FROM items become left-deep cross
    /// products, `JOIN … ON` and `WHERE` conditions land in one selection
    /// above them, grouping/HAVING become γ/σ, and the select list becomes a
    /// projection. The result is deliberately *unoptimized* — run it through
    /// [`crate::planner::optimize`] to push predicates down and recover hash
    /// joins.
    pub fn to_plan(&self) -> Result<Plan, ParseError> {
        match self {
            SqlQuery::Select(s) => s.to_plan(),
            SqlQuery::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let mut l = left.to_plan()?;
                let mut r = right.to_plan()?;
                Ok(match (op, *all) {
                    (SetOp::Union, true) => l.union(r),
                    // δ(L ∪ R) ≡ δ(δL ∪ δR): one outer dedup suffices.
                    (SetOp::Union, false) => l.union(r).distinct(),
                    (SetOp::Except, true) => l.difference(r),
                    (SetOp::Intersect, true) => l.intersect(r),
                    // Set (not bag) semantics need both sides dedup'd first.
                    (SetOp::Except, false) | (SetOp::Intersect, false) => {
                        l = l.distinct();
                        r = r.distinct();
                        match op {
                            SetOp::Except => l.difference(r),
                            _ => l.intersect(r),
                        }
                    }
                })
            }
            SqlQuery::WithRecursive {
                name,
                columns,
                all,
                base,
                step,
                body,
            } => {
                // Scans of the recursive relation in the step become Rec
                // leaves carrying the declared columns (alias-qualified when
                // the reference is aliased, mirroring Scan's naming).
                let step = rewrite_scans(step.to_plan()?, &mut |relation, alias| {
                    if *relation != **name {
                        return Ok(Plan::Scan { relation, alias });
                    }
                    let cols: Vec<Arc<str>> = match &alias {
                        Some(a) => columns
                            .iter()
                            .map(|c| Arc::from(format!("{a}.{c}")))
                            .collect(),
                        None => columns.clone(),
                    };
                    Ok(Plan::Rec {
                        name: relation,
                        columns: cols,
                    })
                })?;
                let fix = Plan::Fixpoint {
                    base: Box::new(base.to_plan()?),
                    step: Box::new(step),
                    rec: Arc::clone(name),
                    columns: columns.clone(),
                    all: *all,
                    cap: DEFAULT_FIXPOINT_CAP,
                };
                // Scans of the recursive relation in the body splice in the
                // whole fixpoint. There is no rename operator, so an alias
                // there has nothing to attach to.
                rewrite_scans(body.to_plan()?, &mut |relation, alias| {
                    if *relation == **name {
                        if let Some(a) = alias {
                            return Err(ParseError::new(format!(
                                "alias `{a}` on recursive relation `{name}` \
                                 is not supported outside the recursive term"
                            )));
                        }
                        Ok(fix.clone())
                    } else {
                        Ok(Plan::Scan { relation, alias })
                    }
                })
            }
        }
    }
}

/// Rebuilds a plan bottom-up, letting `f` replace every [`Plan::Scan`] leaf.
///
/// Freshly lowered SELECT terms contain no `Fixpoint`/`Rec` nodes, but body
/// substitution runs after the step's, so spliced subtrees must pass through
/// untouched — hence those arms return the node as-is.
fn rewrite_scans<F>(plan: Plan, f: &mut F) -> Result<Plan, ParseError>
where
    F: FnMut(Arc<str>, Option<Arc<str>>) -> Result<Plan, ParseError>,
{
    let boxed = |p: Plan, f: &mut F| rewrite_scans(p, f).map(Box::new);
    Ok(match plan {
        Plan::Scan { relation, alias } => f(relation, alias)?,
        Plan::Select { input, predicate } => Plan::Select {
            input: boxed(*input, f)?,
            predicate,
        },
        Plan::Project { input, columns } => Plan::Project {
            input: boxed(*input, f)?,
            columns,
        },
        Plan::Product { left, right } => Plan::Product {
            left: boxed(*left, f)?,
            right: boxed(*right, f)?,
        },
        Plan::Join { left, right, on } => Plan::Join {
            left: boxed(*left, f)?,
            right: boxed(*right, f)?,
            on,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: boxed(*input, f)?,
            group_by,
            aggs,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: boxed(*input, f)?,
        },
        Plan::Union { left, right } => Plan::Union {
            left: boxed(*left, f)?,
            right: boxed(*right, f)?,
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: boxed(*left, f)?,
            right: boxed(*right, f)?,
        },
        Plan::Intersect { left, right } => Plan::Intersect {
            left: boxed(*left, f)?,
            right: boxed(*right, f)?,
        },
        p @ (Plan::Fixpoint { .. } | Plan::Rec { .. }) => p,
    })
}

impl SelectStmt {
    fn to_plan(&self) -> Result<Plan, ParseError> {
        // FROM: left-deep products; JOIN ON conditions collect as predicates.
        let mut plan: Option<Plan> = None;
        let mut conds: Vec<Expr> = Vec::new();
        for item in &self.from {
            let mut p = scan_of(&item.base);
            for j in &item.joins {
                p = p.product(scan_of(&j.table));
                for (a, b) in &j.on {
                    conds.push(Expr::Column(Arc::clone(a)).eq(Expr::Column(Arc::clone(b))));
                }
            }
            plan = Some(match plan {
                None => p,
                Some(q) => q.product(p),
            });
        }
        let mut plan = plan.ok_or_else(|| ParseError::new("FROM clause is required"))?;

        // WHERE (no aggregates allowed) joins the ON conditions.
        if let Some(w) = &self.where_clause {
            conds.push(lower_scalar(w, "WHERE")?);
        }
        if let Some(pred) = conds.into_iter().reduce(Expr::and) {
            plan = plan.filter(pred);
        }

        let select_has_agg = self
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }));
        let grouped = select_has_agg || !self.group_by.is_empty() || self.having.is_some();

        if grouped {
            if self.star {
                return Err(ParseError::new("SELECT * cannot be combined with GROUP BY"));
            }
            // Build the aggregate list: select-list aggregates first (in
            // order), then any HAVING-only aggregates under synthesized
            // names. Plain select items must be grouping columns.
            let mut aggs: Vec<AggExpr> = Vec::new();
            let mut out_names: Vec<Arc<str>> = Vec::new();
            for item in &self.items {
                match item {
                    SelectItem::Column(name) => {
                        if !self.group_by.contains(name) {
                            return Err(ParseError::new(format!(
                                "column `{name}` must appear in GROUP BY or an aggregate"
                            )));
                        }
                        out_names.push(Arc::clone(name));
                    }
                    SelectItem::Aggregate { call, alias } => {
                        let filter = call
                            .filter
                            .as_ref()
                            .map(|f| lower_scalar(f, "FILTER"))
                            .transpose()?;
                        let name = alias
                            .clone()
                            .unwrap_or_else(|| default_agg_name(&call.func));
                        aggs.push(AggExpr {
                            func: call.func.clone(),
                            filter,
                            name: Arc::clone(&name),
                        });
                        out_names.push(name);
                    }
                }
            }
            // HAVING: replace aggregate calls with references to (possibly
            // newly appended) aggregate output columns.
            let having = self
                .having
                .as_ref()
                .map(|h| lower_having(h, &mut aggs))
                .transpose()?;
            // Project to the select list unless it already equals the
            // aggregate's natural output (grouping columns then aggregates,
            // which is what γ emits).
            let natural: Vec<Arc<str>> = self
                .group_by
                .iter()
                .cloned()
                .chain(aggs.iter().map(|a| Arc::clone(&a.name)))
                .collect();
            plan = Plan::Aggregate {
                input: Box::new(plan),
                group_by: self.group_by.clone(),
                aggs,
            };
            if let Some(h) = having {
                plan = plan.filter(h);
            }
            if out_names != natural {
                plan = Plan::Project {
                    input: Box::new(plan),
                    columns: out_names,
                };
            }
        } else if !self.star {
            let columns: Vec<Arc<str>> = self
                .items
                .iter()
                .map(|i| match i {
                    SelectItem::Column(c) => Arc::clone(c),
                    SelectItem::Aggregate { .. } => unreachable!("grouped handled above"),
                })
                .collect();
            plan = Plan::Project {
                input: Box::new(plan),
                columns,
            };
        }

        if self.distinct {
            plan = plan.distinct();
        }
        Ok(plan)
    }
}

fn scan_of(t: &TableRef) -> Plan {
    Plan::Scan {
        relation: Arc::clone(&t.relation),
        alias: t.alias.clone(),
    }
}

/// Default output name for an unaliased aggregate.
fn default_agg_name(func: &AggFunc) -> Arc<str> {
    match func {
        AggFunc::Count => Arc::from("count"),
        AggFunc::Sum(c) => Arc::from(format!("sum_{}", c.replace('.', "_"))),
        AggFunc::Min(c) => Arc::from(format!("min_{}", c.replace('.', "_"))),
        AggFunc::Max(c) => Arc::from(format!("max_{}", c.replace('.', "_"))),
    }
}

/// Lowers an aggregate-free expression to an [`Expr`]; `context` names the
/// clause for error reporting.
fn lower_scalar(e: &SqlExpr, context: &str) -> Result<Expr, ParseError> {
    Ok(match e {
        SqlExpr::Column(c) => Expr::Column(Arc::clone(c)),
        SqlExpr::Literal(v) => Expr::Literal(v.clone()),
        SqlExpr::Agg(_) => {
            return Err(ParseError::new(format!(
                "aggregate calls are not allowed in {context}"
            )))
        }
        SqlExpr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(lower_scalar(a, context)?),
            Box::new(lower_scalar(b, context)?),
        ),
        SqlExpr::And(a, b) => Expr::And(
            Box::new(lower_scalar(a, context)?),
            Box::new(lower_scalar(b, context)?),
        ),
        SqlExpr::Or(a, b) => Expr::Or(
            Box::new(lower_scalar(a, context)?),
            Box::new(lower_scalar(b, context)?),
        ),
        SqlExpr::Not(a) => Expr::Not(Box::new(lower_scalar(a, context)?)),
        SqlExpr::IsNull(a) => Expr::IsNull(Box::new(lower_scalar(a, context)?)),
    })
}

/// Lowers a HAVING expression: aggregate calls become references to
/// aggregate output columns, appending new (synthetically named) aggregates
/// when the call does not already appear in the select list.
fn lower_having(e: &SqlExpr, aggs: &mut Vec<AggExpr>) -> Result<Expr, ParseError> {
    Ok(match e {
        SqlExpr::Column(c) => Expr::Column(Arc::clone(c)),
        SqlExpr::Literal(v) => Expr::Literal(v.clone()),
        SqlExpr::Agg(call) => {
            let filter = call
                .filter
                .as_ref()
                .map(|f| lower_scalar(f, "FILTER"))
                .transpose()?;
            // Reuse an existing aggregate with the same function and filter.
            if let Some(existing) = aggs
                .iter()
                .find(|a| a.func == call.func && a.filter == filter)
            {
                Expr::Column(Arc::clone(&existing.name))
            } else {
                let name: Arc<str> = Arc::from(format!("__h{}", aggs.len()));
                aggs.push(AggExpr {
                    func: call.func.clone(),
                    filter,
                    name: Arc::clone(&name),
                });
                Expr::Column(name)
            }
        }
        SqlExpr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(lower_having(a, aggs)?),
            Box::new(lower_having(b, aggs)?),
        ),
        SqlExpr::And(a, b) => Expr::And(
            Box::new(lower_having(a, aggs)?),
            Box::new(lower_having(b, aggs)?),
        ),
        SqlExpr::Or(a, b) => Expr::Or(
            Box::new(lower_having(a, aggs)?),
            Box::new(lower_having(b, aggs)?),
        ),
        SqlExpr::Not(a) => Expr::Not(Box::new(lower_having(a, aggs)?)),
        SqlExpr::IsNull(a) => Expr::IsNull(Box::new(lower_having(a, aggs)?)),
    })
}

// -------------------------------------------------------------- printing --

impl fmt::Display for SqlQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlQuery::Select(s) => write!(f, "{s}"),
            SqlQuery::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let kw = match op {
                    SetOp::Union => "UNION",
                    SetOp::Except => "EXCEPT",
                    SetOp::Intersect => "INTERSECT",
                };
                write!(f, "{left} {kw}{} {right}", if *all { " ALL" } else { "" })
            }
            SqlQuery::WithRecursive {
                name,
                columns,
                all,
                base,
                step,
                body,
            } => {
                write!(f, "WITH RECURSIVE {name} (")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(c)?;
                }
                write!(
                    f,
                    ") AS ({base} UNION{} {step}) {body}",
                    if *all { " ALL" } else { "" }
                )
            }
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        if self.star {
            f.write_str("*")?;
        } else {
            for (i, item) in self.items.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                match item {
                    SelectItem::Column(c) => f.write_str(c)?,
                    SelectItem::Aggregate { call, alias } => {
                        write!(f, "{call}")?;
                        if let Some(a) = alias {
                            write!(f, " AS {a}")?;
                        }
                    }
                }
            }
        }
        f.write_str(" FROM ")?;
        for (i, item) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}", item.base)?;
            for j in &item.joins {
                write!(f, " JOIN {} ON ", j.table)?;
                for (k, (a, b)) in j.on.iter().enumerate() {
                    if k > 0 {
                        f.write_str(" AND ")?;
                    }
                    write!(f, "{a} = {b}")?;
                }
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                f.write_str(g)?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} {a}", self.relation),
            None => f.write_str(&self.relation),
        }
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            AggFunc::Count => f.write_str("COUNT(*)")?,
            AggFunc::Sum(c) => write!(f, "SUM({c})")?,
            AggFunc::Min(c) => write!(f, "MIN({c})")?,
            AggFunc::Max(c) => write!(f, "MAX({c})")?,
        }
        if let Some(p) = &self.filter {
            write!(f, " FILTER (WHERE {p})")?;
        }
        Ok(())
    }
}

impl SqlExpr {
    /// Printing precedence: higher binds tighter.
    fn prec(&self) -> u8 {
        match self {
            SqlExpr::Or(..) => 1,
            SqlExpr::And(..) => 2,
            SqlExpr::Not(..) => 3,
            SqlExpr::Cmp(..) | SqlExpr::IsNull(..) => 4,
            SqlExpr::Column(_) | SqlExpr::Literal(_) | SqlExpr::Agg(_) => 5,
        }
    }

    fn fmt_child(&self, f: &mut fmt::Formatter<'_>, min_prec: u8) -> fmt::Result {
        if self.prec() < min_prec {
            write!(f, "({self})")
        } else {
            write!(f, "{self}")
        }
    }
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Column(c) => f.write_str(c),
            SqlExpr::Literal(v) => fmt_literal(v, f),
            SqlExpr::Agg(call) => write!(f, "{call}"),
            SqlExpr::Cmp(op, a, b) => {
                a.fmt_child(f, 5)?;
                write!(f, " {op} ")?;
                b.fmt_child(f, 5)
            }
            SqlExpr::And(a, b) => {
                a.fmt_child(f, 2)?;
                f.write_str(" AND ")?;
                b.fmt_child(f, 3)
            }
            SqlExpr::Or(a, b) => {
                a.fmt_child(f, 1)?;
                f.write_str(" OR ")?;
                b.fmt_child(f, 2)
            }
            // `NOT (x IS NULL)` prints as the idiomatic `x IS NOT NULL`,
            // which parses back to the same tree.
            SqlExpr::Not(inner) => match &**inner {
                SqlExpr::IsNull(a) => {
                    a.fmt_child(f, 5)?;
                    f.write_str(" IS NOT NULL")
                }
                _ => {
                    f.write_str("NOT ")?;
                    inner.fmt_child(f, 3)
                }
            },
            SqlExpr::IsNull(a) => {
                a.fmt_child(f, 5)?;
                f.write_str(" IS NULL")
            }
        }
    }
}

/// Prints a literal in re-parseable form: strings quoted with `''` escaping,
/// floats always carrying a `.` or exponent so they stay floats.
fn fmt_literal(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        Value::Float(x) => {
            let s = x.get().to_string();
            if s.contains('.') || s.contains('e') || s.contains('E') {
                f.write_str(&s)
            } else {
                write!(f, "{s}.0")
            }
        }
        Value::Null => f.write_str("NULL"),
        Value::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
        Value::Int(i) => write!(f, "{i}"),
    }
}

pub mod paper_sql {
    //! The four §5 evaluation queries of Wick, McCallum & Miklau (PVLDB
    //! 2010) as SQL text over a TOKEN relation (mirrors
    //! [`crate::algebra::paper_queries`], which builds the same queries as
    //! plans). Each query maps to a figure of the paper's evaluation; the
    //! `fig*` harness binaries in `fgdb-bench` reproduce those figures
    //! from these queries.

    /// **Query 1** — *person-mention strings*: the strings of every token
    /// currently labeled `B-PER` (the beginning of a person mention).
    ///
    /// This is the paper's workhorse selection query: **Figure 4a**
    /// (naive vs. materialized scalability in database size), **Figure 4b**
    /// (loss-vs-samples curves), and **Figure 5** (parallel chains) all
    /// evaluate it. Its answer set changes tuple-by-tuple as MCMC relabels
    /// tokens, which is what makes the Δ-maintained evaluator shine.
    pub fn query1(token: &str) -> String {
        format!("SELECT string FROM {token} WHERE label = 'B-PER'")
    }

    /// **Query 2** — *how many person mentions are there?* A single global
    /// aggregate: the count of `B-PER` tokens across the corpus.
    ///
    /// Reproduced in **Figure 6** (aggregate queries under view
    /// maintenance) and **Figure 7**, which histograms the sampled count
    /// values — the paper's example of a query whose *distribution* (not
    /// just expectation) is recovered for free by MCMC evaluation, where
    /// exact probabilistic databases struggle with aggregate uncertainty.
    pub fn query2(token: &str) -> String {
        format!("SELECT COUNT(*) FILTER (WHERE label = 'B-PER') AS n_person FROM {token}")
    }

    /// **Query 3** — *documents mentioning as many people as
    /// organizations*: group tokens by document and keep the documents
    /// whose `B-PER` and `B-ORG` counts balance.
    ///
    /// The grouped-aggregate-with-HAVING companion to Query 2 in
    /// **Figure 6**: two filtered counts per group and an equality gate on
    /// them, exercising grouped view maintenance (γ with per-group
    /// accumulators) rather than one global accumulator.
    pub fn query3(token: &str) -> String {
        format!(
            "SELECT doc_id FROM {token} GROUP BY doc_id \
             HAVING COUNT(*) FILTER (WHERE label = 'B-PER') = \
             COUNT(*) FILTER (WHERE label = 'B-ORG')"
        )
    }

    /// **Query 4** — *people co-occurring with the organization "Boston"*:
    /// a self-join of TOKEN on `doc_id`, returning person-mention strings
    /// from documents where the (ambiguous) string "Boston" is used in its
    /// organization sense, e.g. the Boston Globe.
    ///
    /// The join query of **Figure 8**: its answer depends on label
    /// assignments at *two* positions, so naive evaluation pays a full
    /// join per sample while the maintained view pays only for deltas
    /// touching either side — the paper's strongest systems case. As text
    /// it lowers to `TOKEN × TOKEN` under one conjunction; the planner's
    /// product→hash-join rewrite recovers the efficient shape (see the
    /// `planner_opt` bench).
    pub fn query4(token: &str) -> String {
        format!(
            "SELECT T2.string FROM {token} T1, {token} T2 \
             WHERE T1.string = 'Boston' AND T1.label = 'B-ORG' \
             AND T1.doc_id = T2.doc_id AND T2.label = 'B-PER'"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::exec::execute_simple;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType;

    fn token_db() -> Database {
        let mut db = Database::new();
        let schema = Schema::from_pairs(&[
            ("tok_id", ValueType::Int),
            ("doc_id", ValueType::Int),
            ("string", ValueType::Str),
            ("label", ValueType::Str),
            ("truth", ValueType::Str),
        ])
        .unwrap()
        .with_primary_key("tok_id")
        .unwrap();
        db.create_relation("TOKEN", schema).unwrap();
        let rows = vec![
            (1, 1, "Bill", "B-PER"),
            (2, 1, "said", "O"),
            (3, 1, "Boston", "B-ORG"),
            (4, 2, "Boston", "B-LOC"),
            (5, 2, "hired", "O"),
            (6, 2, "Ann", "B-PER"),
            (7, 3, "IBM", "B-ORG"),
            (8, 3, "Ann", "B-PER"),
        ];
        let rel = db.relation_mut("TOKEN").unwrap();
        for (id, doc, s, l) in rows {
            rel.insert(tuple![id as i64, doc as i64, s, l, l]).unwrap();
        }
        db
    }

    fn roundtrip(sql: &str) -> SqlQuery {
        let ast = parse(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        let printed = ast.to_string();
        let again = parse(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        assert_eq!(ast, again, "parse∘print not a fixpoint for `{sql}`");
        ast
    }

    #[test]
    fn paper_queries_match_hand_built_plans_on_results() {
        use crate::algebra::paper_queries;
        let db = token_db();
        for (sql, plan) in [
            (paper_sql::query1("TOKEN"), paper_queries::query1("TOKEN")),
            (paper_sql::query2("TOKEN"), paper_queries::query2("TOKEN")),
            (paper_sql::query3("TOKEN"), paper_queries::query3("TOKEN")),
            (paper_sql::query4("TOKEN"), paper_queries::query4("TOKEN")),
        ] {
            let parsed = parse_plan(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            let a = execute_simple(&parsed, &db).unwrap();
            let b = execute_simple(&plan, &db).unwrap();
            assert_eq!(a.rows.sorted_entries(), b.rows.sorted_entries(), "{sql}");
            assert_eq!(a.columns.len(), b.columns.len(), "{sql}");
        }
    }

    #[test]
    fn query1_lowered_shape() {
        let plan = parse_plan("SELECT string FROM TOKEN WHERE label = 'B-PER'").unwrap();
        assert_eq!(plan.to_string(), "π[string](σ(Scan(TOKEN)))");
    }

    #[test]
    fn join_lowers_to_product_plus_selection() {
        let plan = parse_plan(
            "SELECT T2.string FROM TOKEN T1 JOIN TOKEN T2 ON T1.doc_id = T2.doc_id \
             WHERE T1.label = 'B-ORG'",
        )
        .unwrap();
        assert_eq!(
            plan.to_string(),
            "π[T2.string](σ((Scan(TOKEN AS T1) × Scan(TOKEN AS T2))))"
        );
    }

    #[test]
    fn round_trips_are_fixpoints() {
        for sql in [
            "SELECT string FROM TOKEN WHERE label = 'B-PER'",
            "SELECT DISTINCT string FROM TOKEN",
            "SELECT * FROM TOKEN",
            "SELECT COUNT(*) FILTER (WHERE label = 'B-PER') AS n FROM TOKEN",
            "SELECT doc_id, SUM(tok_id) AS s, MIN(tok_id) AS lo, MAX(tok_id) AS hi \
             FROM TOKEN GROUP BY doc_id",
            "SELECT doc_id FROM TOKEN GROUP BY doc_id HAVING COUNT(*) > 2",
            "SELECT T2.string FROM TOKEN T1, TOKEN T2 WHERE T1.doc_id = T2.doc_id",
            "SELECT T2.string FROM TOKEN T1 JOIN TOKEN T2 ON T1.doc_id = T2.doc_id AND \
             T1.tok_id = T2.tok_id",
            "SELECT string FROM TOKEN WHERE NOT (label = 'O' OR label = 'B-LOC')",
            "SELECT string FROM TOKEN WHERE truth IS NOT NULL AND doc_id >= 2",
            "SELECT string FROM TOKEN WHERE doc_id < 3 UNION ALL SELECT string FROM TOKEN \
             WHERE label = 'O'",
            "SELECT string FROM TOKEN EXCEPT SELECT string FROM TOKEN WHERE label = 'O'",
            "SELECT string FROM TOKEN INTERSECT ALL SELECT string FROM TOKEN",
            "SELECT string FROM TOKEN WHERE string = 'O''Brien'",
            "SELECT string FROM TOKEN WHERE doc_id = -2 OR doc_id > 1.5",
            "SELECT string FROM TOKEN WHERE FALSE OR string = 'x'",
        ] {
            roundtrip(sql);
        }
        for q in 1..=4 {
            let sql = match q {
                1 => paper_sql::query1("TOKEN"),
                2 => paper_sql::query2("TOKEN"),
                3 => paper_sql::query3("TOKEN"),
                _ => paper_sql::query4("TOKEN"),
            };
            roundtrip(&sql);
        }
    }

    #[test]
    fn float_literals_stay_floats_through_printing() {
        let ast = parse("SELECT string FROM TOKEN WHERE doc_id > 2.0").unwrap();
        let printed = ast.to_string();
        assert!(
            printed.contains("2.0") || printed.contains("2e"),
            "{printed}"
        );
        roundtrip(&printed);
    }

    #[test]
    fn union_dedups_without_all() {
        let db = token_db();
        let all = parse_plan(
            "SELECT string FROM TOKEN WHERE label = 'B-PER' UNION ALL \
             SELECT string FROM TOKEN WHERE label = 'B-PER'",
        )
        .unwrap();
        let res = execute_simple(&all, &db).unwrap();
        assert_eq!(res.rows.count(&tuple!["Ann"]), 4);
        let set = parse_plan(
            "SELECT string FROM TOKEN WHERE label = 'B-PER' UNION \
             SELECT string FROM TOKEN WHERE label = 'B-PER'",
        )
        .unwrap();
        let res = execute_simple(&set, &db).unwrap();
        assert_eq!(res.rows.count(&tuple!["Ann"]), 1);
    }

    #[test]
    fn group_by_without_aggregates_is_projection_to_groups() {
        let db = token_db();
        let plan = parse_plan("SELECT doc_id FROM TOKEN GROUP BY doc_id").unwrap();
        let res = execute_simple(&plan, &db).unwrap();
        assert_eq!(
            res.rows.sorted_support(),
            vec![tuple![1i64], tuple![2i64], tuple![3i64]]
        );
    }

    #[test]
    fn having_reuses_select_list_aggregates() {
        let db = token_db();
        let plan = parse_plan(
            "SELECT doc_id, COUNT(*) AS n FROM TOKEN GROUP BY doc_id HAVING COUNT(*) > 2",
        )
        .unwrap();
        let res = execute_simple(&plan, &db).unwrap();
        // Docs 1 (3 tokens) and 2 (3 tokens); the COUNT column rides along.
        assert_eq!(
            res.rows.sorted_support(),
            vec![tuple![1i64, 3i64], tuple![2i64, 3i64]]
        );
    }

    #[test]
    fn errors_carry_offsets_and_never_panic() {
        for bad in [
            "",
            "SELECT",
            "SELECT FROM TOKEN",
            "SELECT * FROM",
            "SELECT * FROM TOKEN WHERE",
            "SELECT * FROM TOKEN WHERE label =",
            "SELECT * FROM TOKEN WHERE (label = 'x'",
            "SELECT * FROM TOKEN GROUP",
            "SELECT * FROM TOKEN GROUP BY",
            "SELECT COUNT(*) FILTER (label='x') FROM TOKEN",
            "SELECT COUNT(tok_id) FROM TOKEN",
            "SELECT string FROM TOKEN trailing garbage ,,,",
            "SELECT 'unterminated FROM TOKEN",
            "SELECT string FROM TOKEN WHERE label ~ 'x'",
            "SELECT string, * FROM TOKEN",
            "SELECT SELECT FROM TOKEN",
            "SELECT string AS s FROM TOKEN",
            "SELECT * FROM TOKEN HAVING",
            "SELECT a.b.c FROM TOKEN",
            "SELECT string FROM TOKEN UNION",
        ] {
            let r = parse(bad);
            assert!(r.is_err(), "`{bad}` should fail");
        }
        // Lowering errors (parse succeeds, to_plan rejects).
        for bad in [
            "SELECT * FROM TOKEN GROUP BY doc_id",
            "SELECT string FROM TOKEN GROUP BY doc_id",
            "SELECT string FROM TOKEN WHERE COUNT(*) > 1",
            "SELECT COUNT(*) FILTER (WHERE COUNT(*) > 1) FROM TOKEN",
        ] {
            let ast = parse(bad).unwrap_or_else(|e| panic!("`{bad}` should parse: {e}"));
            assert!(ast.to_plan().is_err(), "`{bad}` should fail lowering");
        }
    }

    #[test]
    fn intersect_binds_tighter_than_union() {
        // Standard SQL precedence: A UNION B INTERSECT C = A UNION (B ∩ C).
        let sql = "SELECT string FROM TOKEN UNION SELECT string FROM TOKEN \
                   WHERE label = 'O' INTERSECT SELECT truth FROM TOKEN";
        let ast = roundtrip(sql);
        match &ast {
            SqlQuery::SetOp {
                op: SetOp::Union,
                right,
                ..
            } => {
                assert!(
                    matches!(
                        &**right,
                        SqlQuery::SetOp {
                            op: SetOp::Intersect,
                            ..
                        }
                    ),
                    "INTERSECT must group under the UNION's right arm"
                );
            }
            other => panic!("expected UNION at the root, got {other:?}"),
        }
        // And a leading INTERSECT run groups before a trailing EXCEPT.
        let ast = roundtrip(
            "SELECT string FROM TOKEN INTERSECT SELECT truth FROM TOKEN \
             EXCEPT SELECT string FROM TOKEN WHERE label = 'O'",
        );
        assert!(matches!(
            ast,
            SqlQuery::SetOp {
                op: SetOp::Except,
                ..
            }
        ));
    }

    #[test]
    fn overflowing_numeric_literals_are_rejected() {
        // `1e999` parses to f64 infinity, which has no SQL literal form and
        // would break the parse∘print fixpoint — reject at parse time.
        assert!(parse("SELECT string FROM TOKEN WHERE doc_id = 1e999").is_err());
        assert!(parse("SELECT string FROM TOKEN WHERE doc_id = 99999999999999999999").is_err());
        // Large-but-finite values are fine.
        roundtrip("SELECT string FROM TOKEN WHERE doc_id = 1e300");
    }

    #[test]
    fn plain_union_lowers_with_one_distinct() {
        // δ(L ∪ R) ≡ δ(δL ∪ δR); the lowering emits only the outer dedup.
        let plan = parse_plan("SELECT string FROM TOKEN UNION SELECT truth FROM TOKEN").unwrap();
        assert_eq!(
            plan.to_string(),
            "δ((π[string](Scan(TOKEN)) ∪ π[truth](Scan(TOKEN))))"
        );
    }

    #[test]
    fn pathological_inputs_error_instead_of_overflowing_the_stack() {
        // Deep parenthesis nesting.
        let deep = format!(
            "SELECT string FROM TOKEN WHERE {}1 = 1{}",
            "(".repeat(100_000),
            ")".repeat(100_000)
        );
        assert!(parse(&deep).is_err());
        // Long NOT chains.
        let nots = format!(
            "SELECT string FROM TOKEN WHERE {}TRUE",
            "NOT ".repeat(100_000)
        );
        assert!(parse(&nots).is_err());
        // Huge AND chains (left-deep trees would recurse every later pass).
        let ands = format!(
            "SELECT string FROM TOKEN WHERE {}",
            vec!["1 = 1"; 100_000].join(" AND ")
        );
        assert!(parse(&ands).is_err());
        // Endless set-operation chains.
        let unions = vec!["SELECT string FROM TOKEN"; 10_000].join(" UNION ");
        assert!(parse(&unions).is_err());
        // A FROM clause the optimizer/executor would recurse over.
        let tables = (0..1000)
            .map(|i| format!("TOKEN T{i}"))
            .collect::<Vec<_>>()
            .join(", ");
        assert!(parse(&format!("SELECT T0.string FROM {tables}")).is_err());
        // Reasonable nesting and chains still parse.
        let ok = format!(
            "SELECT string FROM TOKEN WHERE {}1 = 1{}",
            "(".repeat(64),
            ")".repeat(64)
        );
        roundtrip(&ok);
        let ok = format!(
            "SELECT string FROM TOKEN WHERE {}",
            vec!["doc_id > 0"; 100].join(" AND ")
        );
        roundtrip(&ok);
    }

    #[test]
    fn keywords_are_case_insensitive_identifiers_are_not() {
        let a = parse("select string from TOKEN where label = 'x'").unwrap();
        let b = parse("SELECT string FROM TOKEN WHERE label = 'x'").unwrap();
        assert_eq!(a, b);
        let c = parse("SELECT STRING FROM TOKEN").unwrap();
        assert_ne!(b, c, "identifier case must be preserved");
    }

    #[test]
    fn filtered_sum_min_max_lower_and_execute() {
        let db = token_db();
        let plan = parse_plan(
            "SELECT doc_id, SUM(tok_id) FILTER (WHERE label <> 'O') AS s \
             FROM TOKEN GROUP BY doc_id",
        )
        .unwrap();
        let res = execute_simple(&plan, &db).unwrap();
        // doc 1: tok 1 + 3 = 4 (tok 2 is O).
        assert!(res.rows.contains(&tuple![1i64, 4i64]));
    }

    fn link_db() -> Database {
        let mut db = Database::new();
        let schema =
            Schema::from_pairs(&[("src", ValueType::Int), ("dst", ValueType::Int)]).unwrap();
        db.create_relation("LINK", schema).unwrap();
        let rel = db.relation_mut("LINK").unwrap();
        for (s, d) in [(1i64, 2i64), (2, 3), (5, 6)] {
            rel.insert(tuple![s, d]).unwrap();
        }
        db
    }

    const CLOSURE_SQL: &str = "WITH RECURSIVE REACH (a, b) AS \
         (SELECT src, dst FROM LINK \
          UNION SELECT r.a, l.dst FROM REACH r JOIN LINK l ON r.b = l.src) \
         SELECT * FROM REACH";

    #[test]
    fn with_recursive_roundtrips() {
        roundtrip(CLOSURE_SQL);
        // Bag variant, unaliased step, projecting body.
        roundtrip(
            "WITH RECURSIVE R (a, b) AS \
             (SELECT src, dst FROM LINK UNION ALL \
              SELECT a, dst FROM R JOIN LINK ON b = src) \
             SELECT a FROM R WHERE b > 2",
        );
        // A base that is itself a union still splits at the LAST union.
        roundtrip(
            "WITH RECURSIVE R (a, b) AS \
             (SELECT src, dst FROM LINK UNION SELECT dst, src FROM LINK \
              UNION SELECT a, dst FROM R JOIN LINK ON b = src) \
             SELECT * FROM R",
        );
    }

    #[test]
    fn transitive_closure_lowers_and_executes() {
        let db = link_db();
        let plan = parse_plan(CLOSURE_SQL).unwrap();
        assert!(plan.is_recursive());
        let res = execute_simple(&plan, &db).unwrap();
        assert_eq!(res.rows.distinct_len(), 4, "{:?}", res.rows);
        assert!(res.rows.contains(&tuple![1i64, 3i64]), "derived 1→3");
        // Declared CTE columns rename the base's output.
        assert_eq!(res.columns, vec![Arc::<str>::from("a"), Arc::from("b")]);
    }

    #[test]
    fn with_recursive_splits_base_from_step_at_last_union() {
        let sql = "WITH RECURSIVE R (a, b) AS \
             (SELECT src, dst FROM LINK UNION SELECT dst, src FROM LINK \
              UNION SELECT a, dst FROM R JOIN LINK ON b = src) \
             SELECT * FROM R";
        let SqlQuery::WithRecursive { base, step, .. } = parse(sql).unwrap() else {
            panic!("expected WITH RECURSIVE");
        };
        assert!(
            matches!(*base, SqlQuery::SetOp { .. }),
            "base keeps both seeds"
        );
        assert!(references_table(&step, "R"));
        // Executes: the reversed seeds participate (3→2 ∘ 2→3 gives 3→3),
        // which only happens if BOTH unions landed in the base.
        let res = execute_simple(&parse_plan(sql).unwrap(), &link_db()).unwrap();
        assert!(res.rows.contains(&tuple![3i64, 3i64]), "{:?}", res.rows);
    }

    #[test]
    fn with_recursive_bag_variant_sets_all() {
        let plan = parse_plan(
            "WITH RECURSIVE R (a, b) AS \
             (SELECT src, dst FROM LINK UNION ALL \
              SELECT a, dst FROM R JOIN LINK ON b = src) \
             SELECT * FROM R",
        )
        .unwrap();
        let Plan::Fixpoint { all, cap, .. } = plan else {
            panic!("expected a fixpoint at the root, got {plan}");
        };
        assert!(all);
        assert_eq!(cap, DEFAULT_FIXPOINT_CAP);
    }

    #[test]
    fn with_recursive_rejects_malformed_forms() {
        // No UNION splitting base from step.
        assert!(
            parse("WITH RECURSIVE R (a, b) AS (SELECT src, dst FROM LINK) SELECT * FROM R")
                .is_err()
        );
        // Base references the CTE.
        assert!(parse(
            "WITH RECURSIVE R (a, b) AS \
             (SELECT a, b FROM R UNION SELECT src, dst FROM LINK) SELECT * FROM R"
        )
        .is_err());
        // WITH cannot nest inside the CTE (query() never accepts WITH).
        assert!(parse(
            "WITH RECURSIVE R (a, b) AS \
             (WITH RECURSIVE S (x, y) AS (SELECT src, dst FROM LINK UNION \
              SELECT x, dst FROM S JOIN LINK ON y = src) SELECT * FROM S \
              UNION SELECT a, dst FROM R JOIN LINK ON b = src) \
             SELECT * FROM R"
        )
        .is_err());
        // Alias on the recursive relation outside the recursive term is a
        // lowering error (there is no rename operator to hang it on).
        assert!(parse_plan(
            "WITH RECURSIVE R (a, b) AS \
             (SELECT src, dst FROM LINK UNION \
              SELECT a, dst FROM R JOIN LINK ON b = src) \
             SELECT q.a FROM R q"
        )
        .is_err());
        // Reserved words stay reserved.
        assert!(parse("SELECT with FROM TOKEN").is_err());
        assert!(parse("SELECT recursive FROM TOKEN").is_err());
    }
}
