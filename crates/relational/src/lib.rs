#![warn(missing_docs)]
//! # fgdb-relational — the deterministic relational substrate
//!
//! This crate is the "underlying relational database" of Wick, McCallum &
//! Miklau, *Scalable Probabilistic Databases with Factor Graphs and MCMC*
//! (VLDB 2010): an in-memory DBMS that always stores **one possible world**
//! and therefore evaluates arbitrary relational algebra directly.
//!
//! Layers:
//!
//! * [`value`] / [`schema`] / [`mod@tuple`] — typed rows;
//! * [`storage`] / [`database`] — slotted heap relations with primary-key and
//!   optional secondary indexes, field-granular updates that return pre/post
//!   images (the MCMC write path);
//! * [`expr`] / [`algebra`] — predicates and plans (σ, π, ×, ⋈, γ, δ),
//!   including [`algebra::paper_queries`], the four evaluation queries of §5;
//! * [`parser`] / [`planner`] — the SQL text frontend
//!   ([`parser::paper_sql`] carries the §5 queries as text) and the rule- +
//!   cost-based optimizer (pushdown, product→join rewrite, projection
//!   pruning, cardinality-driven join ordering) that turn a query string
//!   into an executable plan ([`planner::compile_query`]);
//! * [`exec`] — full from-scratch execution with work accounting (what the
//!   *naive* sampling evaluator pays per sample);
//! * [`counted`] / [`delta`] / [`view`] — counted multisets, Δ⁻/Δ⁺ auxiliary
//!   tables, and incrementally maintained materialized views (Eq. 6 /
//!   Algorithm 1 of the paper — the headline systems contribution).

pub mod algebra;
pub mod circuit;
pub mod counted;
pub mod database;
pub mod delta;
pub mod exec;
pub mod expr;
pub mod fasthash;
pub mod parser;
pub mod planner;
pub mod schema;
pub mod storage;
pub mod tuple;
pub mod value;
pub mod view;
pub mod zset;

pub use algebra::{AggExpr, AggFunc, Plan, PlanError, DEFAULT_FIXPOINT_CAP};
pub use circuit::{Circuit, CircuitError, CircuitStats};
pub use counted::CountedSet;
pub use database::{CatalogError, Database};
pub use delta::DeltaSet;
pub use exec::{execute, execute_simple, ExecError, ExecStats, QueryResult};
pub use expr::{BoundExpr, CmpOp, Expr};
pub use fasthash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher, TupleMap};
pub use parser::{parse, parse_plan, ParseError, SqlQuery};
pub use planner::{compile_query, optimize, PlannerReport, QueryError};
pub use schema::{Column, Schema, SchemaError};
pub use storage::{Relation, RowId, StorageError};
pub use tuple::Tuple;
pub use value::{Interner, Value, ValueType, F64};
pub use view::{MaterializedView, ViewBackend, ViewStats};
pub use zset::{NegativeWeight, ZSet};
