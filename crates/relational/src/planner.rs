//! Rule- and cost-based plan optimization.
//!
//! [`crate::parser`] lowers SQL to a deliberately naive [`Plan`] —
//! cross products under one big selection, exactly the shape the paper's
//! Query 4 takes as text. This module rewrites such plans into the form a
//! database would actually run:
//!
//! * **constant folding** — literal-only comparisons and boolean
//!   connectives collapse (three-valued: `NULL = 1` folds to `NULL`);
//!   `σ(TRUE)` disappears;
//! * **predicate pushdown** — conjuncts move through projections,
//!   distincts, grouping (group-key predicates only), set operations, and
//!   to the covering side of products and joins;
//! * **product → hash-join rewrite** — equality conjuncts spanning both
//!   sides of a product become equi-join conditions ([`Plan::Join`]),
//!   and further spanning equalities extend an existing join's condition
//!   list;
//! * **projection pruning** — adjacent projections collapse and identity
//!   projections vanish;
//! * **join ordering** — where an ancestor re-derives columns by name
//!   (π or γ), join inputs are swapped so the hash table is built on the
//!   side with the smaller estimated cardinality (estimates start from
//!   actual [`crate::storage::Relation`] row counts).
//!
//! Every rewrite preserves the query's multiset semantics *and* its output
//! column names; [`optimize`] re-validates the output schema and falls back
//! to the input plan if a rewrite ever disagreed (defense in depth — the
//! property suite asserts it never fires).
//!
//! # Example
//!
//! ```
//! use fgdb_relational::{optimize, parse_plan, Database, Schema, ValueType};
//!
//! let mut db = Database::new();
//! let schema = Schema::from_pairs(&[
//!     ("doc_id", ValueType::Int),
//!     ("label", ValueType::Str),
//! ]).unwrap();
//! db.create_relation("TOKEN", schema).unwrap();
//!
//! // SQL lowers to a cross product under one selection…
//! let naive = parse_plan(
//!     "SELECT T2.label FROM TOKEN T1, TOKEN T2 \
//!      WHERE T1.doc_id = T2.doc_id AND T1.label = 'B-ORG'",
//! ).unwrap();
//! assert!(naive.to_string().contains('×'));
//!
//! // …which the optimizer rewrites into a pushed-down hash join.
//! let optimized = optimize(&naive, &db).unwrap();
//! assert!(optimized.to_string().contains('⋈'), "{optimized}");
//! assert!(!optimized.to_string().contains('×'));
//! ```

use crate::algebra::{AggExpr, AggFunc, Plan, PlanError};
use crate::database::Database;
use crate::expr::{resolve_column, CmpOp, Expr};
use crate::parser::{self, ParseError};
use crate::value::{Value, ValueType};
use std::fmt;
use std::sync::Arc;

/// Errors from the text-to-plan pipeline ([`compile_query`]).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// SQL parsing or lowering failed.
    Parse(ParseError),
    /// The plan does not validate against the catalog.
    Plan(PlanError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "parse error: {e}"),
            QueryError::Plan(e) => write!(f, "plan error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<PlanError> for QueryError {
    fn from(e: PlanError) -> Self {
        QueryError::Plan(e)
    }
}

/// Counters describing what the optimizer did to a plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerReport {
    /// Conjuncts moved below at least one operator.
    pub predicates_pushed: u64,
    /// Cartesian products rewritten into equi-joins.
    pub products_to_joins: u64,
    /// Equality conjuncts folded into an existing join's conditions.
    pub join_conditions_added: u64,
    /// Join inputs swapped so the smaller estimated side builds the table.
    pub joins_reordered: u64,
    /// Expression nodes removed by constant folding.
    pub constants_folded: u64,
    /// Projection nodes removed (identity or merged into a parent).
    pub projections_pruned: u64,
}

impl PlannerReport {
    /// Total rewrites applied.
    pub fn total(&self) -> u64 {
        self.predicates_pushed
            + self.products_to_joins
            + self.join_conditions_added
            + self.joins_reordered
            + self.constants_folded
            + self.projections_pruned
    }
}

impl fmt::Display for PlannerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pushed {} predicate(s), {} product→join rewrite(s), {} join cond(s) merged, \
             {} join(s) reordered, {} constant(s) folded, {} projection(s) pruned",
            self.predicates_pushed,
            self.products_to_joins,
            self.join_conditions_added,
            self.joins_reordered,
            self.constants_folded,
            self.projections_pruned
        )
    }
}

/// Parses SQL, lowers it, and optimizes the plan against `db`'s catalog.
///
/// This is the text entry point the probabilistic evaluators build on: the
/// returned plan runs through either the one-shot executor
/// ([`crate::exec::execute`]) or the incremental path
/// ([`crate::view::MaterializedView`]).
pub fn compile_query(sql: &str, db: &Database) -> Result<Plan, QueryError> {
    let plan = parser::parse_plan(sql)?;
    // Validate the naive plan before rewriting so errors name the user's
    // query shape, not an intermediate one.
    plan.output_columns(db)?;
    Ok(optimize(&plan, db)?)
}

/// Optimizes a plan. The result computes the same [`crate::exec::QueryResult`]
/// (same columns, same multiset of rows) with no more intermediate tuples.
pub fn optimize(plan: &Plan, db: &Database) -> Result<Plan, PlanError> {
    optimize_with_report(plan, db).map(|(p, _)| p)
}

/// [`optimize`], also reporting which rewrites fired.
pub fn optimize_with_report(
    plan: &Plan,
    db: &Database,
) -> Result<(Plan, PlannerReport), PlanError> {
    let before = plan.output_columns(db)?;
    let mut rep = PlannerReport::default();
    let optimized = rewrite(plan.clone(), db, false, &mut rep)?;
    // Output-schema guard: a sound rewrite can never change the result
    // columns. If it somehow did, serve the original plan — correctness
    // beats cleverness.
    match optimized.output_columns(db) {
        Ok(after) if after == before => Ok((optimized, rep)),
        _ => Ok((plan.clone(), PlannerReport::default())),
    }
}

/// Estimated output cardinality of a plan, seeded by actual relation row
/// counts. Heuristic selectivities (equality 0.1, range 0.3, …) — only used
/// to pick join build sides, never for correctness.
pub fn estimate_rows(plan: &Plan, db: &Database) -> f64 {
    match plan {
        Plan::Scan { relation, .. } => db
            .relation(relation)
            .map(|r| r.len() as f64)
            .unwrap_or(1.0)
            .max(1.0),
        Plan::Select { input, predicate } => {
            (estimate_rows(input, db) * selectivity(predicate)).max(1.0)
        }
        Plan::Project { input, .. } => estimate_rows(input, db),
        Plan::Product { left, right } => estimate_rows(left, db) * estimate_rows(right, db),
        Plan::Join { left, right, on } => {
            let l = estimate_rows(left, db);
            let r = estimate_rows(right, db);
            // One equality level of fan-in per condition, floored at the
            // classic primary-key guess l·r / max(l, r).
            (l * r * 0.1f64.powi(on.len() as i32))
                .max(l.min(r))
                .max(1.0)
        }
        Plan::Aggregate {
            input, group_by, ..
        } => {
            if group_by.is_empty() {
                1.0
            } else {
                (estimate_rows(input, db) / 2.0).max(1.0)
            }
        }
        Plan::Distinct { input } => (estimate_rows(input, db) * 0.5).max(1.0),
        Plan::Union { left, right } => estimate_rows(left, db) + estimate_rows(right, db),
        Plan::Difference { left, right: _ } => estimate_rows(left, db),
        Plan::Intersect { left, right } => estimate_rows(left, db).min(estimate_rows(right, db)),
        // A closure typically multiplies its seed by a small path factor;
        // the exact size is data-dependent, so stay deliberately coarse.
        Plan::Fixpoint { base, .. } => estimate_rows(base, db) * 4.0,
        // A Rec leaf's cardinality is the fixpoint's, unknowable locally.
        Plan::Rec { .. } => 100.0,
    }
}

fn selectivity(pred: &Expr) -> f64 {
    match pred {
        Expr::Cmp(CmpOp::Eq, ..) => 0.1,
        Expr::Cmp(CmpOp::Ne, ..) => 0.9,
        Expr::Cmp(..) => 0.3,
        Expr::And(a, b) => selectivity(a) * selectivity(b),
        Expr::Or(a, b) => {
            let (sa, sb) = (selectivity(a), selectivity(b));
            (sa + sb - sa * sb).min(1.0)
        }
        Expr::Not(a) => 1.0 - selectivity(a),
        Expr::IsNull(_) => 0.05,
        Expr::Literal(Value::Bool(true)) => 1.0,
        Expr::Literal(Value::Bool(false)) | Expr::Literal(Value::Null) => 0.0,
        Expr::Column(_) | Expr::Literal(_) => 0.5,
    }
}

/// Declared [`ValueType`] of one output column of a plan, when derivable by
/// walking down to the base schema. `None` means "unknown" — callers must
/// treat that conservatively. Used to gate the product→join rewrite:
/// strict join-key equality coincides with σ's widening `sql_cmp` only
/// when both sides share a declared type.
fn declared_type(plan: &Plan, db: &Database, name: &str) -> Option<ValueType> {
    match plan {
        Plan::Scan { relation, .. } => {
            let rel = db.relation(relation).ok()?;
            let cols = plan.output_columns(db).ok()?;
            let idx = resolve_column(&cols, name)?;
            Some(rel.schema().columns()[idx].ty)
        }
        Plan::Select { input, .. } | Plan::Distinct { input } => declared_type(input, db, name),
        Plan::Project { input, columns } => {
            let out = plan.output_columns(db).ok()?;
            let j = resolve_column(&out, name)?;
            declared_type(input, db, &columns[j])
        }
        Plan::Product { left, right } | Plan::Join { left, right, .. } => {
            let l_cols = left.output_columns(db).ok()?;
            let mut combined = l_cols.clone();
            combined.extend(right.output_columns(db).ok()?);
            let idx = resolve_column(&combined, name)?;
            if idx < l_cols.len() {
                declared_type(left, db, &combined[idx])
            } else {
                declared_type(right, db, &combined[idx])
            }
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let out: Vec<Arc<str>> = group_by
                .iter()
                .cloned()
                .chain(aggs.iter().map(|a| Arc::clone(&a.name)))
                .collect();
            let j = resolve_column(&out, name)?;
            if j < group_by.len() {
                declared_type(input, db, &group_by[j])
            } else {
                match &aggs[j - group_by.len()].func {
                    AggFunc::Count => Some(ValueType::Int),
                    AggFunc::Min(c) | AggFunc::Max(c) => declared_type(input, db, c),
                    // SUM is Int for Int columns but may widen to Float on
                    // i64 overflow — conservatively unknown.
                    AggFunc::Sum(_) => None,
                }
            }
        }
        Plan::Union { left, right }
        | Plan::Difference { left, right }
        | Plan::Intersect { left, right } => {
            let l_cols = left.output_columns(db).ok()?;
            let r_cols = right.output_columns(db).ok()?;
            let j = resolve_column(&l_cols, name)?;
            let tl = declared_type(left, db, &l_cols[j])?;
            let tr = declared_type(right, db, r_cols.get(j)?)?;
            (tl == tr).then_some(tl)
        }
        Plan::Fixpoint { base, columns, .. } => {
            // The fixpoint's columns are positionally those of its base term.
            let j = resolve_column(columns, name)?;
            let base_cols = base.output_columns(db).ok()?;
            declared_type(base, db, base_cols.get(j)?)
        }
        // A Rec leaf has no catalog anchor — conservatively unknown.
        Plan::Rec { .. } => None,
    }
}

// -------------------------------------------------------------- rewrites --

/// Recursively optimizes a plan. `order_free` is true when an ancestor
/// re-derives its output columns *by name* (π or γ) with no positional
/// consumer in between, which licenses column-order-changing rewrites
/// (join input swaps) below.
fn rewrite(
    plan: Plan,
    db: &Database,
    order_free: bool,
    rep: &mut PlannerReport,
) -> Result<Plan, PlanError> {
    match plan {
        Plan::Scan { .. } => Ok(plan),
        Plan::Select { input, predicate } => {
            let mut preds = Vec::new();
            split_conjuncts(fold_expr(&predicate, rep), &mut preds);
            let inner = rewrite(*input, db, order_free, rep)?;
            push_preds(inner, preds, db, order_free, rep)
        }
        Plan::Project { input, columns } => {
            let inner = rewrite(*input, db, true, rep)?;
            let (inner, columns) = merge_projects(inner, columns, db, rep)?;
            // Identity projection: same names, same order as the input.
            if inner.output_columns(db)? == columns {
                rep.projections_pruned += 1;
                Ok(inner)
            } else {
                Ok(Plan::Project {
                    input: Box::new(inner),
                    columns,
                })
            }
        }
        Plan::Product { left, right } => {
            let left = rewrite(*left, db, order_free, rep)?;
            let right = rewrite(*right, db, order_free, rep)?;
            Ok(Plan::Product {
                left: Box::new(left),
                right: Box::new(right),
            })
        }
        Plan::Join { left, right, on } => {
            let left = rewrite(*left, db, order_free, rep)?;
            let right = rewrite(*right, db, order_free, rep)?;
            Ok(maybe_swap_join(left, right, on, db, order_free, rep))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let input = rewrite(*input, db, true, rep)?;
            let aggs = aggs
                .into_iter()
                .map(|a| AggExpr {
                    filter: a.filter.map(|f| fold_expr(&f, rep)),
                    ..a
                })
                .collect();
            Ok(Plan::Aggregate {
                input: Box::new(input),
                group_by,
                aggs,
            })
        }
        Plan::Distinct { input } => {
            let inner = rewrite(*input, db, order_free, rep)?;
            // δ∘δ = δ.
            if let Plan::Distinct { .. } = inner {
                return Ok(inner);
            }
            Ok(Plan::Distinct {
                input: Box::new(inner),
            })
        }
        Plan::Union { left, right } => Ok(Plan::Union {
            left: Box::new(rewrite(*left, db, false, rep)?),
            right: Box::new(rewrite(*right, db, false, rep)?),
        }),
        Plan::Difference { left, right } => Ok(Plan::Difference {
            left: Box::new(rewrite(*left, db, false, rep)?),
            right: Box::new(rewrite(*right, db, false, rep)?),
        }),
        Plan::Intersect { left, right } => Ok(Plan::Intersect {
            left: Box::new(rewrite(*left, db, false, rep)?),
            right: Box::new(rewrite(*right, db, false, rep)?),
        }),
        // A fixpoint is a rewrite barrier: its terms are optimized
        // independently (column order across iterations is positional, so
        // order-changing rewrites stay disabled), and nothing migrates
        // across the recursion boundary.
        Plan::Fixpoint {
            base,
            step,
            rec,
            columns,
            all,
            cap,
        } => Ok(Plan::Fixpoint {
            base: Box::new(rewrite(*base, db, false, rep)?),
            step: Box::new(rewrite(*step, db, false, rep)?),
            rec,
            columns,
            all,
            cap,
        }),
        Plan::Rec { .. } => Ok(plan),
    }
}

/// Pushes a conjunct list into `plan` as deep as soundness allows, wrapping
/// whatever cannot sink as a selection on top. Conjunct order is preserved
/// wherever predicates recombine, so repeated optimization is stable.
fn push_preds(
    plan: Plan,
    preds: Vec<Expr>,
    db: &Database,
    order_free: bool,
    rep: &mut PlannerReport,
) -> Result<Plan, PlanError> {
    // σ(TRUE) vanishes entirely.
    let preds: Vec<Expr> = preds
        .into_iter()
        .filter(|p| !matches!(p, Expr::Literal(Value::Bool(true))))
        .collect();
    if preds.is_empty() {
        return Ok(plan);
    }
    match plan {
        // Merge through an existing selection: its conjuncts sink first
        // (they were innermost), then ours.
        Plan::Select { input, predicate } => {
            let mut all = Vec::new();
            split_conjuncts(predicate, &mut all);
            all.extend(preds);
            push_preds(*input, all, db, order_free, rep)
        }
        Plan::Project { input, columns } => {
            let out_names = &columns;
            let mut sunk = Vec::new();
            let mut kept = Vec::new();
            for p in preds {
                // A conjunct sinks when every referenced column maps through
                // the projection; references are rewritten to the projected
                // column names so resolution below stays unambiguous.
                match rewrite_refs(&p, |name| {
                    resolve_column(out_names, name).map(|j| Arc::clone(&columns[j]))
                }) {
                    Some(rewritten) => sunk.push(rewritten),
                    None => kept.push(p),
                }
            }
            if !sunk.is_empty() {
                rep.predicates_pushed += sunk.len() as u64;
            }
            let inner = push_preds(*input, sunk, db, true, rep)?;
            Ok(wrap(
                Plan::Project {
                    input: Box::new(inner),
                    columns,
                },
                kept,
            ))
        }
        Plan::Product { left, right } => {
            push_into_pair(*left, *right, None, preds, db, order_free, rep)
        }
        Plan::Join { left, right, on } => {
            push_into_pair(*left, *right, Some(on), preds, db, order_free, rep)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // γ's output is its grouping columns followed by the aggregate
            // names — derivable without cloning the input subtree.
            let out_cols: Vec<Arc<str>> = group_by
                .iter()
                .cloned()
                .chain(aggs.iter().map(|a| Arc::clone(&a.name)))
                .collect();
            let mut sunk = Vec::new();
            let mut kept = Vec::new();
            for p in preds {
                // Only predicates over grouping columns commute with γ
                // (aggregate outputs do not exist below it). References are
                // rewritten to the group-by names, which resolve below.
                let mapped = rewrite_refs(&p, |name| {
                    resolve_column(&out_cols, name)
                        .filter(|j| *j < group_by.len())
                        .map(|j| Arc::clone(&group_by[j]))
                });
                match mapped {
                    Some(rewritten) if !group_by.is_empty() => sunk.push(rewritten),
                    _ => kept.push(p),
                }
            }
            if !sunk.is_empty() {
                rep.predicates_pushed += sunk.len() as u64;
            }
            let inner = push_preds(*input, sunk, db, true, rep)?;
            Ok(wrap(
                Plan::Aggregate {
                    input: Box::new(inner),
                    group_by,
                    aggs,
                },
                kept,
            ))
        }
        // σ∘δ ≡ δ∘σ.
        Plan::Distinct { input } => {
            rep.predicates_pushed += preds.len() as u64;
            let inner = push_preds(*input, preds, db, order_free, rep)?;
            Ok(Plan::Distinct {
                input: Box::new(inner),
            })
        }
        // σ distributes over ∪, ∖, and ∩ (the filter applies pointwise to
        // multiplicities on both sides). The right arm's columns may be
        // named differently: rewrite references positionally.
        Plan::Union { left, right } => {
            push_into_setop(*left, *right, SetOpShape::Union, preds, db, rep)
        }
        Plan::Difference { left, right } => {
            push_into_setop(*left, *right, SetOpShape::Difference, preds, db, rep)
        }
        Plan::Intersect { left, right } => {
            push_into_setop(*left, *right, SetOpShape::Intersect, preds, db, rep)
        }
        Plan::Scan { .. } => Ok(wrap(plan, preds)),
        // Pushing predicates across the recursion boundary is unsound in
        // general (a predicate that prunes intermediate closure tuples
        // changes the fixpoint), so a fixpoint is a pushdown barrier.
        Plan::Fixpoint { .. } | Plan::Rec { .. } => Ok(wrap(plan, preds)),
    }
}

#[derive(Clone, Copy)]
enum SetOpShape {
    Union,
    Difference,
    Intersect,
}

/// Pushes conjuncts into both arms of a set operation. A conjunct sinks
/// only when its references rewrite positionally onto the right arm's
/// column names; the rest stays above.
fn push_into_setop(
    left: Plan,
    right: Plan,
    shape: SetOpShape,
    preds: Vec<Expr>,
    db: &Database,
    rep: &mut PlannerReport,
) -> Result<Plan, PlanError> {
    let l_cols = left.output_columns(db)?;
    let r_cols = right.output_columns(db)?;
    let mut l_preds = Vec::new();
    let mut r_preds = Vec::new();
    let mut kept = Vec::new();
    for p in preds {
        let right_p = if l_cols.len() == r_cols.len() {
            rewrite_refs(&p, |name| {
                resolve_column(&l_cols, name).map(|j| Arc::clone(&r_cols[j]))
            })
        } else {
            None
        };
        match right_p {
            Some(rp) => {
                l_preds.push(p);
                r_preds.push(rp);
            }
            None => kept.push(p),
        }
    }
    rep.predicates_pushed += l_preds.len() as u64;
    let left = Box::new(push_preds(left, l_preds, db, false, rep)?);
    let right = Box::new(push_preds(right, r_preds, db, false, rep)?);
    let node = match shape {
        SetOpShape::Union => Plan::Union { left, right },
        SetOpShape::Difference => Plan::Difference { left, right },
        SetOpShape::Intersect => Plan::Intersect { left, right },
    };
    Ok(wrap(node, kept))
}

/// Partition conjuncts over a product/join pair, rewrite products with
/// spanning equalities into joins, push side-local conjuncts down, and
/// order the join inputs by estimated cardinality when allowed.
fn push_into_pair(
    left: Plan,
    right: Plan,
    join_on: Option<Vec<(Arc<str>, Arc<str>)>>,
    preds: Vec<Expr>,
    db: &Database,
    order_free: bool,
    rep: &mut PlannerReport,
) -> Result<Plan, PlanError> {
    let l_cols = left.output_columns(db)?;
    let r_cols = right.output_columns(db)?;
    let mut combined = l_cols.clone();
    combined.extend(r_cols.iter().cloned());
    let nl = l_cols.len();

    let was_product = join_on.is_none();
    let mut on = join_on.unwrap_or_default();
    let mut l_preds = Vec::new();
    let mut r_preds = Vec::new();
    let mut kept = Vec::new();

    for p in preds {
        let mut refs = Vec::new();
        p.referenced_columns(&mut refs);
        let positions: Option<Vec<usize>> =
            refs.iter().map(|r| resolve_column(&combined, r)).collect();
        match positions {
            Some(pos) if !pos.is_empty() && pos.iter().all(|i| *i < nl) => l_preds.push(p),
            Some(pos) if !pos.is_empty() && pos.iter().all(|i| *i >= nl) => r_preds.push(p),
            Some(_) => {
                // Spanning: an equality between one column on each side
                // becomes a join condition — but only when both columns
                // share a declared type. σ compares via `sql_cmp`, which
                // widens Int = Float; the hash join matches keys by strict
                // `Value` equality, so a cross-type rewrite would silently
                // drop matching rows. Unknown or differing types keep the
                // predicate as a selection above (correct, just not joined).
                if let Expr::Cmp(CmpOp::Eq, a, b) = &p {
                    if let (Expr::Column(ca), Expr::Column(cb)) = (&**a, &**b) {
                        let (ia, ib) =
                            (resolve_column(&combined, ca), resolve_column(&combined, cb));
                        let types_match = |l_idx: usize, r_idx: usize| {
                            let tl = declared_type(&left, db, &combined[l_idx]);
                            let tr = declared_type(&right, db, &combined[r_idx]);
                            tl.is_some() && tl == tr
                        };
                        match (ia, ib) {
                            (Some(ia), Some(ib)) if ia < nl && ib >= nl && types_match(ia, ib) => {
                                on.push((Arc::clone(ca), Arc::clone(cb)));
                                rep.join_conditions_added += 1;
                                continue;
                            }
                            (Some(ia), Some(ib)) if ib < nl && ia >= nl && types_match(ib, ia) => {
                                on.push((Arc::clone(cb), Arc::clone(ca)));
                                rep.join_conditions_added += 1;
                                continue;
                            }
                            _ => {}
                        }
                    }
                }
                kept.push(p);
            }
            None => kept.push(p),
        }
    }

    rep.predicates_pushed += (l_preds.len() + r_preds.len()) as u64;
    let left = push_preds(left, l_preds, db, order_free, rep)?;
    let right = push_preds(right, r_preds, db, order_free, rep)?;

    let node = if on.is_empty() {
        Plan::Product {
            left: Box::new(left),
            right: Box::new(right),
        }
    } else {
        if was_product {
            rep.products_to_joins += 1;
            // The conditions themselves were already counted as merges;
            // converting counts once.
            rep.join_conditions_added -= on.len() as u64;
        }
        maybe_swap_join(left, right, on, db, order_free, rep)
    };
    Ok(wrap(node, kept))
}

/// Builds a join, swapping inputs when the context is order-free and the
/// estimated build side (the executor hashes the right input) is larger
/// than the probe side.
fn maybe_swap_join(
    left: Plan,
    right: Plan,
    on: Vec<(Arc<str>, Arc<str>)>,
    db: &Database,
    order_free: bool,
    rep: &mut PlannerReport,
) -> Plan {
    if order_free {
        let (el, er) = (estimate_rows(&left, db), estimate_rows(&right, db));
        if el < er {
            rep.joins_reordered += 1;
            return Plan::Join {
                left: Box::new(right),
                right: Box::new(left),
                on: on.into_iter().map(|(a, b)| (b, a)).collect(),
            };
        }
    }
    Plan::Join {
        left: Box::new(left),
        right: Box::new(right),
        on,
    }
}

/// Collapses `π_outer ∘ π_inner` into one projection by mapping the outer
/// names through the inner list.
fn merge_projects(
    inner: Plan,
    outer_columns: Vec<Arc<str>>,
    db: &Database,
    rep: &mut PlannerReport,
) -> Result<(Plan, Vec<Arc<str>>), PlanError> {
    if let Plan::Project {
        input,
        columns: inner_columns,
    } = &inner
    {
        let inner_out = inner.output_columns(db)?;
        let mapped: Option<Vec<Arc<str>>> = outer_columns
            .iter()
            .map(|c| resolve_column(&inner_out, c).map(|j| Arc::clone(&inner_columns[j])))
            .collect();
        if let Some(mapped) = mapped {
            rep.projections_pruned += 1;
            return Ok(((**input).clone(), mapped));
        }
    }
    Ok((inner, outer_columns))
}

fn wrap(plan: Plan, preds: Vec<Expr>) -> Plan {
    match preds.into_iter().reduce(Expr::and) {
        Some(p) => plan.filter(p),
        None => plan,
    }
}

/// Splits a predicate into conjuncts (flattening nested ANDs).
fn split_conjuncts(pred: Expr, out: &mut Vec<Expr>) {
    match pred {
        Expr::And(a, b) => {
            split_conjuncts(*a, out);
            split_conjuncts(*b, out);
        }
        p => out.push(p),
    }
}

/// Rewrites every column reference via `map`; `None` from `map` aborts the
/// whole rewrite (the predicate keeps its place).
fn rewrite_refs(e: &Expr, map: impl Fn(&str) -> Option<Arc<str>> + Copy) -> Option<Expr> {
    Some(match e {
        Expr::Column(c) => Expr::Column(map(c)?),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(rewrite_refs(a, map)?),
            Box::new(rewrite_refs(b, map)?),
        ),
        Expr::And(a, b) => Expr::And(
            Box::new(rewrite_refs(a, map)?),
            Box::new(rewrite_refs(b, map)?),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(rewrite_refs(a, map)?),
            Box::new(rewrite_refs(b, map)?),
        ),
        Expr::Not(a) => Expr::Not(Box::new(rewrite_refs(a, map)?)),
        Expr::IsNull(a) => Expr::IsNull(Box::new(rewrite_refs(a, map)?)),
    })
}

/// Constant-folds an expression under SQL three-valued semantics. Literal
/// comparisons collapse to `TRUE`/`FALSE`/`NULL`; boolean connectives
/// simplify around literal arms exactly as
/// [`crate::expr::BoundExpr::eval_truth`] would evaluate them.
pub fn fold_expr(e: &Expr, rep: &mut PlannerReport) -> Expr {
    match e {
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
        Expr::Cmp(op, a, b) => {
            let (fa, fb) = (fold_expr(a, rep), fold_expr(b, rep));
            if let (Expr::Literal(va), Expr::Literal(vb)) = (&fa, &fb) {
                rep.constants_folded += 1;
                return match va.sql_cmp(vb) {
                    Some(ord) => Expr::Literal(Value::Bool(op.apply(ord))),
                    None => Expr::Literal(Value::Null),
                };
            }
            Expr::Cmp(*op, Box::new(fa), Box::new(fb))
        }
        Expr::And(a, b) => {
            let (fa, fb) = (fold_expr(a, rep), fold_expr(b, rep));
            match (truth_literal(&fa), truth_literal(&fb)) {
                (Some(Some(false)), _) | (_, Some(Some(false))) => {
                    rep.constants_folded += 1;
                    Expr::Literal(Value::Bool(false))
                }
                (Some(Some(true)), _) => {
                    rep.constants_folded += 1;
                    fb
                }
                (_, Some(Some(true))) => {
                    rep.constants_folded += 1;
                    fa
                }
                (Some(None), Some(None)) => {
                    rep.constants_folded += 1;
                    Expr::Literal(Value::Null)
                }
                _ => Expr::And(Box::new(fa), Box::new(fb)),
            }
        }
        Expr::Or(a, b) => {
            let (fa, fb) = (fold_expr(a, rep), fold_expr(b, rep));
            match (truth_literal(&fa), truth_literal(&fb)) {
                (Some(Some(true)), _) | (_, Some(Some(true))) => {
                    rep.constants_folded += 1;
                    Expr::Literal(Value::Bool(true))
                }
                (Some(Some(false)), _) => {
                    rep.constants_folded += 1;
                    fb
                }
                (_, Some(Some(false))) => {
                    rep.constants_folded += 1;
                    fa
                }
                (Some(None), Some(None)) => {
                    rep.constants_folded += 1;
                    Expr::Literal(Value::Null)
                }
                _ => Expr::Or(Box::new(fa), Box::new(fb)),
            }
        }
        Expr::Not(a) => {
            let fa = fold_expr(a, rep);
            match truth_literal(&fa) {
                Some(Some(b)) => {
                    rep.constants_folded += 1;
                    Expr::Literal(Value::Bool(!b))
                }
                Some(None) => {
                    rep.constants_folded += 1;
                    Expr::Literal(Value::Null)
                }
                None => Expr::Not(Box::new(fa)),
            }
        }
        Expr::IsNull(a) => {
            let fa = fold_expr(a, rep);
            if let Expr::Literal(v) = &fa {
                rep.constants_folded += 1;
                return Expr::Literal(Value::Bool(v.is_null()));
            }
            Expr::IsNull(Box::new(fa))
        }
    }
}

/// Three-valued truth of a literal expression: `Some(Some(b))` for booleans,
/// `Some(None)` for NULL (and non-boolean literals, which evaluate to
/// unknown), `None` for non-literals.
fn truth_literal(e: &Expr) -> Option<Option<bool>> {
    match e {
        Expr::Literal(Value::Bool(b)) => Some(Some(*b)),
        Expr::Literal(_) => Some(None),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::paper_queries;
    use crate::exec::execute;
    use crate::parser::paper_sql;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType;

    fn token_db() -> Database {
        let mut db = Database::new();
        let schema = Schema::from_pairs(&[
            ("tok_id", ValueType::Int),
            ("doc_id", ValueType::Int),
            ("string", ValueType::Str),
            ("label", ValueType::Str),
            ("truth", ValueType::Str),
        ])
        .unwrap()
        .with_primary_key("tok_id")
        .unwrap();
        db.create_relation("TOKEN", schema).unwrap();
        let rows = vec![
            (1, 1, "Bill", "B-PER"),
            (2, 1, "said", "O"),
            (3, 1, "Boston", "B-ORG"),
            (4, 2, "Boston", "B-LOC"),
            (5, 2, "hired", "O"),
            (6, 2, "Ann", "B-PER"),
            (7, 3, "IBM", "B-ORG"),
            (8, 3, "Ann", "B-PER"),
        ];
        let rel = db.relation_mut("TOKEN").unwrap();
        for (id, doc, s, l) in rows {
            rel.insert(tuple![id as i64, doc as i64, s, l, l]).unwrap();
        }
        db
    }

    /// Optimization must preserve columns and rows exactly, and never
    /// construct more intermediate tuples.
    fn assert_equivalent_and_cheaper(plan: &Plan, db: &Database) -> (u64, u64) {
        let opt = optimize(plan, db).unwrap();
        let (naive_res, naive_stats) = execute(plan, db).unwrap();
        let (opt_res, opt_stats) = execute(&opt, db).unwrap();
        assert_eq!(
            naive_res.columns, opt_res.columns,
            "columns changed:\n{plan}\n{opt}"
        );
        assert_eq!(
            naive_res.rows.sorted_entries(),
            opt_res.rows.sorted_entries(),
            "rows changed:\n{plan}\n{opt}"
        );
        assert!(
            opt_stats.intermediate_tuples <= naive_stats.intermediate_tuples,
            "optimizer increased work ({} > {}):\n{plan}\n{opt}",
            opt_stats.intermediate_tuples,
            naive_stats.intermediate_tuples
        );
        (
            naive_stats.intermediate_tuples,
            opt_stats.intermediate_tuples,
        )
    }

    #[test]
    fn query4_text_recovers_hand_built_join_shape() {
        let db = token_db();
        let opt = compile_query(&paper_sql::query4("TOKEN"), &db).unwrap();
        // Pushdown + product→join: the optimized plan is a join of two
        // filtered scans under a projection (the hand-built Query 4 shape,
        // modulo join input order chosen by cardinality).
        let shape = opt.to_string();
        assert!(shape.contains('⋈'), "no join recovered: {shape}");
        assert!(!shape.contains('×'), "product survived: {shape}");
        let (res, _) = execute(&opt, &db).unwrap();
        let (want, _) = execute(&paper_queries::query4("TOKEN"), &db).unwrap();
        assert_eq!(res.rows.sorted_entries(), want.rows.sorted_entries());
    }

    #[test]
    fn paper_queries_optimize_to_identical_results() {
        let db = token_db();
        for sql in [
            paper_sql::query1("TOKEN"),
            paper_sql::query2("TOKEN"),
            paper_sql::query3("TOKEN"),
            paper_sql::query4("TOKEN"),
        ] {
            let naive = parser::parse_plan(&sql).unwrap();
            let hand = match sql.contains("T2") {
                true => paper_queries::query4("TOKEN"),
                false if sql.contains("n_person") => paper_queries::query2("TOKEN"),
                false if sql.contains("GROUP BY") => paper_queries::query3("TOKEN"),
                false => paper_queries::query1("TOKEN"),
            };
            assert_equivalent_and_cheaper(&naive, &db);
            let opt = optimize(&naive, &db).unwrap();
            let (a, _) = execute(&opt, &db).unwrap();
            let (b, _) = execute(&hand, &db).unwrap();
            assert_eq!(a.rows.sorted_entries(), b.rows.sorted_entries(), "{sql}");
        }
    }

    #[test]
    fn query4_join_workload_reduces_intermediate_tuples() {
        let db = token_db();
        let naive = parser::parse_plan(&paper_sql::query4("TOKEN")).unwrap();
        let (before, after) = assert_equivalent_and_cheaper(&naive, &db);
        assert!(
            after < before,
            "pushdown + join rewrite should strictly reduce: {before} -> {after}"
        );
    }

    #[test]
    fn pushdown_reaches_index_fast_path() {
        let mut db = token_db();
        db.relation_mut("TOKEN")
            .unwrap()
            .create_index("string")
            .unwrap();
        // Filter above a projection sinks below it, landing σ directly on
        // the scan where the secondary index applies.
        let plan = Plan::scan("TOKEN")
            .project(&["string", "label"])
            .filter(Expr::col("string").eq(Expr::lit("Ann")));
        let opt = optimize(&plan, &db).unwrap();
        let (res, stats) = execute(&opt, &db).unwrap();
        assert_eq!(res.rows.total(), 2);
        assert_eq!(stats.tuples_scanned, 2, "index probe not reached: {opt}");
    }

    #[test]
    fn constant_folding_three_valued() {
        let mut rep = PlannerReport::default();
        // 1 = 1 → TRUE
        let t = fold_expr(&Expr::lit(1i64).eq(Expr::lit(1i64)), &mut rep);
        assert_eq!(t, Expr::Literal(Value::Bool(true)));
        // NULL = 1 → NULL
        let n = fold_expr(&Expr::lit(Value::Null).eq(Expr::lit(1i64)), &mut rep);
        assert_eq!(n, Expr::Literal(Value::Null));
        // x AND FALSE → FALSE even with a column arm.
        let f = fold_expr(
            &Expr::col("x").eq(Expr::lit(1i64)).and(Expr::lit(false)),
            &mut rep,
        );
        assert_eq!(f, Expr::Literal(Value::Bool(false)));
        // x AND TRUE → x.
        let x = fold_expr(
            &Expr::col("x")
                .eq(Expr::lit(1i64))
                .and(Expr::lit(2i64).gt(Expr::lit(1i64))),
            &mut rep,
        );
        assert_eq!(x, Expr::col("x").eq(Expr::lit(1i64)));
        // NOT NULL → NULL; NULL IS NULL → TRUE.
        assert_eq!(
            fold_expr(&Expr::lit(Value::Null).not(), &mut rep),
            Expr::Literal(Value::Null)
        );
        assert_eq!(
            fold_expr(&Expr::lit(Value::Null).is_null(), &mut rep),
            Expr::Literal(Value::Bool(true))
        );
        assert!(rep.constants_folded >= 5);
    }

    #[test]
    fn sigma_true_is_dropped_sigma_false_is_kept_sound() {
        let db = token_db();
        let plan = Plan::scan("TOKEN")
            .filter(Expr::lit(1i64).eq(Expr::lit(1i64)))
            .project(&["string"]);
        let opt = optimize(&plan, &db).unwrap();
        assert_eq!(opt.to_string(), "π[string](Scan(TOKEN))");
        // A contradictory filter stays and yields the empty answer.
        let never = Plan::scan("TOKEN")
            .filter(Expr::lit(1i64).eq(Expr::lit(2i64)))
            .project(&["string"]);
        assert_equivalent_and_cheaper(&never, &db);
    }

    #[test]
    fn projection_chains_collapse() {
        let db = token_db();
        let plan = Plan::scan("TOKEN")
            .project(&["tok_id", "doc_id", "string", "label", "truth"]) // identity
            .project(&["string", "label"])
            .project(&["string"]);
        let (opt, rep) = optimize_with_report(&plan, &db).unwrap();
        assert_eq!(opt.to_string(), "π[string](Scan(TOKEN))");
        assert!(rep.projections_pruned >= 2);
        assert_equivalent_and_cheaper(&plan, &db);
    }

    #[test]
    fn pushdown_through_union_renames_positionally() {
        let db = token_db();
        // Right arm's output column is named differently (B.string); the
        // filter above the union must rewrite its reference for that arm.
        let plan = Plan::scan("TOKEN")
            .project(&["string"])
            .union(Plan::scan_as("TOKEN", "B").project(&["B.string"]))
            .filter(Expr::col("string").eq(Expr::lit("Ann")));
        let (before, after) = assert_equivalent_and_cheaper(&plan, &db);
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn pushdown_through_aggregate_group_columns_only() {
        let db = token_db();
        // doc_id is a group column → sinks; the count predicate is not.
        let plan = Plan::scan("TOKEN")
            .aggregate(
                &["doc_id"],
                vec![AggExpr::new(crate::algebra::AggFunc::Count, "n")],
            )
            .filter(
                Expr::col("doc_id")
                    .le(Expr::lit(2i64))
                    .and(Expr::col("n").gt(Expr::lit(0i64))),
            );
        let (opt, rep) = optimize_with_report(&plan, &db).unwrap();
        assert!(rep.predicates_pushed >= 1, "{opt}");
        assert_equivalent_and_cheaper(&plan, &db);
        // Shape: σ(n>0) above γ, σ(doc_id≤2) below it.
        assert_eq!(opt.to_string(), "σ(γ[doc_id](σ(Scan(TOKEN))))");
    }

    #[test]
    fn join_reordered_by_estimated_cardinality_under_projection() {
        let mut db = token_db();
        // A second, much smaller relation.
        let schema =
            Schema::from_pairs(&[("doc", ValueType::Int), ("topic", ValueType::Str)]).unwrap();
        db.create_relation("DOC", schema).unwrap();
        db.relation_mut("DOC")
            .unwrap()
            .insert(tuple![1i64, "sports"])
            .unwrap();
        // Big side left, small side right already: no swap. Reversed: swap.
        let plan = Plan::scan_as("DOC", "D")
            .join_on(Plan::scan_as("TOKEN", "T"), &[("D.doc", "T.doc_id")])
            .project(&["T.string", "D.topic"]);
        let (opt, rep) = optimize_with_report(&plan, &db).unwrap();
        assert_eq!(rep.joins_reordered, 1, "{opt}");
        assert_equivalent_and_cheaper(&plan, &db);
        // Without a name-rederiving ancestor the swap must NOT fire.
        let positional = Plan::scan_as("DOC", "D")
            .join_on(Plan::scan_as("TOKEN", "T"), &[("D.doc", "T.doc_id")]);
        let (opt2, rep2) = optimize_with_report(&positional, &db).unwrap();
        assert_eq!(rep2.joins_reordered, 0, "{opt2}");
        assert_equivalent_and_cheaper(&positional, &db);
    }

    #[test]
    fn cross_type_equality_is_not_rewritten_into_a_join() {
        // σ compares Int(2) = Float(2.0) as equal (sql_cmp widens); a hash
        // join's strict key equality would not. The rewrite must therefore
        // refuse cross-type equalities — results stay identical, the
        // predicate simply remains a selection over the product.
        let mut db = Database::new();
        let a = Schema::from_pairs(&[("x", ValueType::Int)]).unwrap();
        let b = Schema::from_pairs(&[("y", ValueType::Float)]).unwrap();
        db.create_relation("A", a).unwrap();
        db.create_relation("B", b).unwrap();
        db.relation_mut("A").unwrap().insert(tuple![2i64]).unwrap();
        db.relation_mut("B")
            .unwrap()
            .insert(tuple![2.0f64])
            .unwrap();
        let plan = Plan::scan("A")
            .product(Plan::scan("B"))
            .filter(Expr::col("x").eq(Expr::col("y")));
        let (opt, rep) = optimize_with_report(&plan, &db).unwrap();
        assert_eq!(rep.products_to_joins, 0, "cross-type join formed: {opt}");
        let (res, _) = execute(&opt, &db).unwrap();
        assert_eq!(res.rows.total(), 1, "widened equality must still match");
        assert_equivalent_and_cheaper(&plan, &db);
        // Same-type equality still rewrites.
        let c = Schema::from_pairs(&[("z", ValueType::Int)]).unwrap();
        db.create_relation("C", c).unwrap();
        db.relation_mut("C").unwrap().insert(tuple![2i64]).unwrap();
        let joinable = Plan::scan("A")
            .product(Plan::scan("C"))
            .filter(Expr::col("x").eq(Expr::col("z")));
        let (opt, rep) = optimize_with_report(&joinable, &db).unwrap();
        assert_eq!(rep.products_to_joins, 1, "{opt}");
        assert_equivalent_and_cheaper(&joinable, &db);
    }

    #[test]
    fn report_renders_and_counts() {
        let db = token_db();
        let naive = parser::parse_plan(&paper_sql::query4("TOKEN")).unwrap();
        let (_, rep) = optimize_with_report(&naive, &db).unwrap();
        assert!(rep.products_to_joins == 1, "{rep}");
        assert!(rep.predicates_pushed >= 3, "{rep}");
        assert!(rep.total() >= 4);
        let s = rep.to_string();
        assert!(s.contains("product→join"));
    }

    #[test]
    fn estimates_scale_with_relation_sizes() {
        let db = token_db();
        let scan = Plan::scan("TOKEN");
        assert_eq!(estimate_rows(&scan, &db), 8.0);
        let filtered = scan.clone().filter(Expr::col("label").eq(Expr::lit("O")));
        assert!(estimate_rows(&filtered, &db) < 8.0);
        let prod = scan.clone().product(Plan::scan_as("TOKEN", "B"));
        assert_eq!(estimate_rows(&prod, &db), 64.0);
        let agg = scan.aggregate(&[], vec![]);
        assert_eq!(estimate_rows(&agg, &db), 1.0);
    }

    #[test]
    fn compile_query_reports_parse_and_plan_errors() {
        let db = token_db();
        assert!(matches!(
            compile_query("SELEC nope", &db),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            compile_query("SELECT x FROM MISSING", &db),
            Err(QueryError::Plan(_))
        ));
        assert!(matches!(
            compile_query("SELECT nope FROM TOKEN", &db),
            Err(QueryError::Plan(_))
        ));
    }

    #[test]
    fn set_ops_and_distinct_still_correct_after_rewrites() {
        let db = token_db();
        for sql in [
            "SELECT string FROM TOKEN WHERE label <> 'O' EXCEPT SELECT string FROM TOKEN \
             WHERE label = 'B-PER'",
            "SELECT DISTINCT string FROM TOKEN WHERE doc_id < 3 INTERSECT ALL \
             SELECT string FROM TOKEN",
            "SELECT string FROM TOKEN WHERE label = 'B-PER' UNION SELECT string FROM TOKEN \
             WHERE label = 'B-ORG'",
        ] {
            let naive = parser::parse_plan(sql).unwrap();
            assert_equivalent_and_cheaper(&naive, &db);
        }
    }
}
