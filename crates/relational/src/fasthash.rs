//! Fast non-cryptographic hashing for the delta hot path.
//!
//! Every MCMC step pushes tuples through counted multisets, join-key maps,
//! and group-by maps (§4.2's Δ⁻/Δ⁺ propagation). With the default `SipHash`
//! hasher each of those operations re-hashes the full tuple — including
//! string contents — per lookup. This module provides:
//!
//! * [`FxHasher`] — a hand-rolled FxHash-style multiply-rotate hasher (the
//!   firefox/rustc workhorse; no crates.io dependency), plus the
//!   [`FxHashMap`]/[`FxHashSet`] aliases;
//! * [`TupleMap`] — a map keyed by a tuple's *cached 64-bit fingerprint*
//!   (see [`crate::tuple::Tuple::fingerprint`]) with full-value verification
//!   on collision, so hot-path lookups need neither a rehash of the key
//!   values nor an allocated key `Tuple`: callers project key columns into a
//!   reusable scratch `Vec<Value>` and probe with `(fingerprint, &[Value])`.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (golden-ratio derived, as used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: rotate, xor, multiply. Not DoS-resistant — fine for
/// in-process query state, which is what all users in this crate are.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add_to_hash(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add_to_hash(u64::from(u32::from_le_bytes(
                bytes[..4].try_into().unwrap(),
            )));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            self.add_to_hash(u64::from(u16::from_le_bytes(
                bytes[..2].try_into().unwrap(),
            )));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// A map from tuple keys to `V`, addressed by `(fingerprint, values)`.
///
/// The fingerprint is the primary key; genuine 64-bit collisions fall back
/// to a small in-bucket list verified by value equality, so semantics are
/// exact. Lookups take a borrowed `&[Value]` (typically a reusable scratch
/// buffer filled by [`Tuple::project_into`]) — no `Tuple` allocation, no
/// re-hash of the values. An owning key `Tuple` is only constructed when a
/// *new* entry is inserted.
#[derive(Debug, Clone)]
pub struct TupleMap<V> {
    buckets: FxHashMap<u64, Bucket<V>>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Bucket<V> {
    /// The overwhelmingly common case: one key per fingerprint.
    One((Tuple, V)),
    /// Fingerprint collision: linear list, verified by value equality.
    Many(Vec<(Tuple, V)>),
}

impl<V> Bucket<V> {
    fn as_slice(&self) -> &[(Tuple, V)] {
        match self {
            Bucket::One(pair) => std::slice::from_ref(pair),
            Bucket::Many(list) => list,
        }
    }
}

impl<V> Default for TupleMap<V> {
    fn default() -> Self {
        TupleMap {
            buckets: FxHashMap::default(),
            len: 0,
        }
    }
}

impl<V> TupleMap<V> {
    /// Creates an empty map (no allocation until first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all entries, keeping allocations.
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.len = 0;
    }

    /// Looks up by precomputed fingerprint + key values.
    pub fn get(&self, fp: u64, key: &[Value]) -> Option<&V> {
        self.buckets
            .get(&fp)?
            .as_slice()
            .iter()
            .find(|(t, _)| t.values() == key)
            .map(|(_, v)| v)
    }

    /// Convenience lookup keyed by an existing tuple (uses its cached
    /// fingerprint; no re-hash).
    pub fn get_tuple(&self, key: &Tuple) -> Option<&V> {
        self.get(key.fingerprint(), key.values())
    }

    /// Returns the entry for the key, inserting `default()` under a key
    /// tuple built from `key` (the only place a key allocation happens).
    pub fn get_or_insert_with(
        &mut self,
        fp: u64,
        key: &[Value],
        default: impl FnOnce() -> V,
    ) -> &mut V {
        use std::collections::hash_map::Entry;
        match self.buckets.entry(fp) {
            Entry::Vacant(e) => {
                self.len += 1;
                let Bucket::One(pair) = e.insert(Bucket::One((
                    Tuple::from_prehashed(key.to_vec(), fp),
                    default(),
                ))) else {
                    unreachable!()
                };
                &mut pair.1
            }
            Entry::Occupied(e) => {
                let bucket = e.into_mut();
                let single_hit = matches!(&*bucket, Bucket::One(p) if p.0.values() == key);
                if single_hit {
                    let Bucket::One(pair) = bucket else {
                        unreachable!()
                    };
                    return &mut pair.1;
                }
                match bucket {
                    Bucket::One(_) => {
                        // Genuine fingerprint collision: degrade to a list.
                        let prev = std::mem::replace(bucket, Bucket::Many(Vec::with_capacity(2)));
                        let Bucket::One(pair) = prev else {
                            unreachable!()
                        };
                        let Bucket::Many(list) = bucket else {
                            unreachable!()
                        };
                        list.push(pair);
                        list.push((Tuple::from_prehashed(key.to_vec(), fp), default()));
                        self.len += 1;
                        &mut list.last_mut().unwrap().1
                    }
                    Bucket::Many(list) => {
                        if let Some(pos) = list.iter().position(|(t, _)| t.values() == key) {
                            &mut list[pos].1
                        } else {
                            list.push((Tuple::from_prehashed(key.to_vec(), fp), default()));
                            self.len += 1;
                            &mut list.last_mut().unwrap().1
                        }
                    }
                }
            }
        }
    }

    /// Removes and returns the value for the key, if present.
    pub fn remove(&mut self, fp: u64, key: &[Value]) -> Option<V> {
        let single_hit = match self.buckets.get(&fp)? {
            Bucket::One(pair) => {
                if pair.0.values() != key {
                    return None;
                }
                true
            }
            Bucket::Many(_) => false,
        };
        if single_hit {
            let Some(Bucket::One(pair)) = self.buckets.remove(&fp) else {
                unreachable!()
            };
            self.len -= 1;
            return Some(pair.1);
        }
        let Some(Bucket::Many(list)) = self.buckets.get_mut(&fp) else {
            unreachable!()
        };
        let pos = list.iter().position(|(t, _)| t.values() == key)?;
        let (_, v) = list.swap_remove(pos);
        self.len -= 1;
        if list.is_empty() {
            self.buckets.remove(&fp);
        }
        Some(v)
    }

    /// Iterates `(key, value)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &V)> {
        self.buckets
            .values()
            .flat_map(|b| b.as_slice().iter().map(|(t, v)| (t, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::tuple::fingerprint_values;

    #[test]
    fn fx_hasher_mixes_and_is_deterministic() {
        let mut a = FxHasher::default();
        a.write_u64(42);
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u64(43);
        assert_ne!(a.finish(), c.finish());
        let mut d = FxHasher::default();
        d.write(b"hello world, this is a longer byte string");
        assert_ne!(d.finish(), 0);
    }

    #[test]
    fn tuple_map_insert_get_remove() {
        let mut m: TupleMap<i64> = TupleMap::new();
        let k1 = tuple![1i64, "a"];
        let k2 = tuple![2i64, "b"];
        *m.get_or_insert_with(k1.fingerprint(), k1.values(), || 0) += 5;
        *m.get_or_insert_with(k2.fingerprint(), k2.values(), || 0) += 7;
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(k1.fingerprint(), k1.values()), Some(&5));
        assert_eq!(m.get_tuple(&k2), Some(&7));
        // Existing entry is reused, not duplicated.
        *m.get_or_insert_with(k1.fingerprint(), k1.values(), || 100) += 1;
        assert_eq!(m.get_tuple(&k1), Some(&6));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(k1.fingerprint(), k1.values()), Some(6));
        assert_eq!(m.get_tuple(&k1), None);
        assert_eq!(m.len(), 1);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn tuple_map_survives_forced_fingerprint_collision() {
        // Same fingerprint, different values: both entries must coexist and
        // resolve by value equality.
        let mut m: TupleMap<&'static str> = TupleMap::new();
        let a = tuple![1i64];
        let b = tuple![2i64];
        let fp = 0xdead_beef; // force a shared (wrong) fingerprint
        m.get_or_insert_with(fp, a.values(), || "a");
        m.get_or_insert_with(fp, b.values(), || "b");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(fp, a.values()), Some(&"a"));
        assert_eq!(m.get(fp, b.values()), Some(&"b"));
        assert_eq!(m.remove(fp, a.values()), Some("a"));
        assert_eq!(m.get(fp, b.values()), Some(&"b"));
        assert_eq!(m.remove(fp, b.values()), Some("b"));
        assert!(m.is_empty());
    }

    #[test]
    fn tuple_map_iterates_all_entries() {
        let mut m: TupleMap<i64> = TupleMap::new();
        for i in 0..10i64 {
            let k = tuple![i];
            m.get_or_insert_with(k.fingerprint(), k.values(), || i * 2);
        }
        let mut vals: Vec<i64> = m.iter().map(|(_, v)| *v).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_fingerprint_matches_tuple_construction() {
        let t = tuple![3i64, "x", 2.5f64];
        assert_eq!(fingerprint_values(t.values()), t.fingerprint());
    }
}
