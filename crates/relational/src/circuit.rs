//! DBSP-style operator circuits: incremental view maintenance over Z-sets.
//!
//! This is the second, generalized implementation of Algorithm 1's view
//! engine (the first is the operator tree in [`crate::view`]). A [`Circuit`]
//! compiles a [`Plan`] into a flat list of stateful operator nodes in
//! topological order; every node consumes and produces [`ZSet`] deltas, and
//! applying a world delta is one bottom-up sweep costing Θ(|Δ|) — the same
//! contract as the legacy engine, deliberately, so the two can be tested
//! differentially against each other and against naive re-execution.
//!
//! What the circuit adds over the legacy engine is *recursion*: a
//! [`Plan::Fixpoint`] compiles to a fixpoint node holding two nested
//! sub-circuits (the non-recursive base term and the recursive step term,
//! with [`Plan::Rec`] leaves compiled to a recursive-input port). Under set
//! semantics (`UNION`) the node maintains *derivation counts* for every
//! derived tuple and propagates deltas semi-naively: a positive world delta
//! on a monotone recursive term triggers only the delta iteration — new
//! edges derive new closure tuples, each iteration feeding exactly the
//! newly derived frontier back into the step circuit. Retractions and
//! non-monotone terms fall back to recompute-and-diff over maintained
//! relation copies (cyclic derivation support makes counting-based deletion
//! unsound). Bag semantics (`UNION ALL`) always recompute via working-table
//! iteration. Every iteration loop is bounded by the fixpoint's cap; hitting
//! it is a typed [`CircuitError::IterationLimit`], never divergence.
//!
//! Errors are deliberately richer than the legacy engine's: an inconsistent
//! delta stream (retracting a tuple that was never inserted) surfaces as
//! [`CircuitError::InconsistentDelta`] from `distinct`/`aggregate` state
//! instead of silently going negative. A circuit that has returned an error
//! may hold partially updated state and should be rebuilt.
//!
//! # Example: transitive closure, maintained incrementally
//!
//! ```
//! use fgdb_relational::{tuple, Circuit, Database, DeltaSet, Plan, Schema, ValueType};
//! use std::sync::Arc;
//!
//! let mut db = Database::new();
//! let schema = Schema::from_pairs(&[("src", ValueType::Int), ("dst", ValueType::Int)]).unwrap();
//! db.create_relation("LINK", schema).unwrap();
//! db.relation_mut("LINK").unwrap().insert(tuple![1i64, 2i64]).unwrap();
//! db.relation_mut("LINK").unwrap().insert(tuple![2i64, 3i64]).unwrap();
//!
//! // REACH = LINK ∪ π_{src,dst}(REACH ⋈_{dst=src} LINK)
//! let step = Plan::rec("REACH", &["a", "b"])
//!     .join_on(Plan::scan("LINK"), &[("b", "src")])
//!     .project(&["a", "dst"]);
//! let plan = Plan::scan("LINK").fixpoint(step, "REACH", &["a", "b"]);
//!
//! let mut circuit = Circuit::new(&plan, &db).unwrap();
//! assert_eq!(circuit.result().total(), 3); // 1→2, 2→3, 1→3
//!
//! // A new edge 3→4 extends every chain that reaches 3.
//! let rel: Arc<str> = Arc::from("LINK");
//! let mut delta = DeltaSet::new();
//! delta.record_insert(&rel, tuple![3i64, 4i64]);
//! let out = circuit.apply_delta(&delta).unwrap();
//! assert_eq!(out.total(), 3); // 3→4, 2→4, 1→4
//! assert_eq!(circuit.result().total(), 6);
//! ```

use crate::algebra::{Plan, PlanError};
use crate::counted::CountedSet;
use crate::database::Database;
use crate::delta::DeltaSet;
use crate::exec::{bind_aggs, join_key_indices, AggSpec, ExecError};
use crate::expr::{resolve_column, BoundExpr};
use crate::fasthash::TupleMap;
use crate::tuple::{fingerprint_values, Tuple};
use crate::value::Value;
use crate::view::{GroupState, SetOpKind};
use crate::zset::{NegativeWeight, ZSet};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Typed error surface of the circuit backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitError {
    /// Plan validation/binding failure (shared with the executor).
    Exec(ExecError),
    /// A fixpoint iteration loop exceeded its configured cap — divergent
    /// recursion (e.g. `UNION ALL` closure over a cyclic graph).
    IterationLimit {
        /// The configured iteration cap that was exceeded.
        cap: usize,
    },
    /// The recursive term references the recursive relation more than once
    /// (e.g. a self-join of the recursion). Only linear recursion is
    /// supported by the circuit backend.
    NonLinearRecursion {
        /// The recursive relation's name.
        name: String,
    },
    /// A fixpoint appears inside another fixpoint's base or step term.
    NestedRecursion {
        /// The inner fixpoint's recursive name.
        name: String,
    },
    /// A [`Plan::Rec`] leaf appeared outside a fixpoint binding its name
    /// (including inside the base term, which must be non-recursive).
    UnboundRecursion {
        /// The unbound recursive name.
        name: String,
    },
    /// The recursive relation's name collides with a stored relation.
    ShadowedRelation {
        /// The colliding name.
        name: String,
    },
    /// A delta stream retracted more than it inserted: stateful operator
    /// state (distinct support, aggregate group multiplicity) would have
    /// gone negative. The circuit's state is no longer trustworthy.
    InconsistentDelta(NegativeWeight),
    /// The requested plan is valid but not supported by the selected
    /// backend (e.g. a recursive plan on the legacy view engine).
    Unsupported(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::Exec(e) => write!(f, "{e}"),
            CircuitError::IterationLimit { cap } => {
                write!(f, "recursive query exceeded the iteration cap ({cap})")
            }
            CircuitError::NonLinearRecursion { name } => write!(
                f,
                "non-linear recursion: `{name}` is referenced more than once in the recursive term"
            ),
            CircuitError::NestedRecursion { name } => {
                write!(f, "nested recursion (`{name}`) is not supported")
            }
            CircuitError::UnboundRecursion { name } => {
                write!(f, "recursive reference `{name}` outside its fixpoint")
            }
            CircuitError::ShadowedRelation { name } => {
                write!(f, "recursive name `{name}` shadows a stored relation")
            }
            CircuitError::InconsistentDelta(nw) => {
                write!(f, "inconsistent delta stream: {nw}")
            }
            CircuitError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::Exec(e) => Some(e),
            CircuitError::InconsistentDelta(nw) => Some(nw),
            _ => None,
        }
    }
}

impl From<ExecError> for CircuitError {
    fn from(e: ExecError) -> Self {
        CircuitError::Exec(e)
    }
}

impl From<PlanError> for CircuitError {
    fn from(e: PlanError) -> Self {
        CircuitError::Exec(ExecError::Plan(e))
    }
}

impl From<NegativeWeight> for CircuitError {
    fn from(e: NegativeWeight) -> Self {
        CircuitError::InconsistentDelta(e)
    }
}

/// Work counters for circuit maintenance (the circuit analogue of
/// [`crate::view::ViewStats`], plus recursion counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// Delta batches applied.
    pub deltas_applied: u64,
    /// Delta rows processed across all operator nodes (excludes the initial
    /// full evaluation).
    pub init_tuples_scanned: u64,
    /// Delta rows processed across all operator nodes during `apply_delta`
    /// (the |Δ|-proportional cost the paper's Eq. 6 argues for).
    pub delta_rows_processed: u64,
    /// Fixpoint iterations run (semi-naive frontier feeds and rebuild
    /// iterations alike).
    pub fixpoint_iterations: u64,
    /// Fixpoint rebuilds forced by retractions or non-monotone terms.
    pub fixpoint_recomputes: u64,
}

/// One delta batch flowing into a circuit sweep. Exactly one of `deltas`
/// (incremental maintenance) or `full` (initialization/rebuild: every source
/// relation's full contents fed as an insert-only delta from empty state) is
/// normally set; `rec` additionally binds the enclosing fixpoint's recursive
/// name to the current frontier when driving an inner step circuit.
struct BatchInput<'a> {
    deltas: Option<&'a DeltaSet>,
    full: Option<&'a BTreeMap<Arc<str>, CountedSet>>,
    rec: Option<(&'a str, &'a ZSet)>,
}

/// A borrowed or owned per-node output delta for one batch.
enum DOut<'a> {
    Empty,
    Counted(&'a CountedSet),
    Zs(&'a ZSet),
    Owned(ZSet),
}

impl<'a> BatchInput<'a> {
    fn relation(&self, name: &str) -> Option<DOut<'a>> {
        if let Some((rn, z)) = self.rec {
            if rn == name {
                return Some(DOut::Zs(z));
            }
        }
        if let Some(full) = self.full {
            return full.get(name).map(DOut::Counted);
        }
        if let Some(ds) = self.deltas {
            return ds.for_relation(name).map(DOut::Counted);
        }
        None
    }

    fn touches(&self, sources: &[Arc<str>]) -> bool {
        sources.iter().any(|r| self.relation(r).is_some())
    }
}

impl<'a> DOut<'a> {
    fn iter(&self) -> Box<dyn Iterator<Item = (&Tuple, i64)> + '_> {
        match self {
            DOut::Empty => Box::new(std::iter::empty()),
            DOut::Counted(s) => Box::new(s.iter()),
            DOut::Zs(z) => Box::new(z.iter()),
            DOut::Owned(z) => Box::new(z.iter()),
        }
    }

    fn count(&self, t: &Tuple) -> i64 {
        match self {
            DOut::Empty => 0,
            DOut::Counted(s) => s.count(t),
            DOut::Zs(z) => z.weight(t),
            DOut::Owned(z) => z.weight(t),
        }
    }

    fn distinct_len(&self) -> usize {
        match self {
            DOut::Empty => 0,
            DOut::Counted(s) => s.distinct_len(),
            DOut::Zs(z) => z.distinct_len(),
            DOut::Owned(z) => z.distinct_len(),
        }
    }

    fn into_zset(self) -> ZSet {
        match self {
            DOut::Empty => ZSet::new(),
            DOut::Counted(s) => ZSet::from_counted(s),
            DOut::Zs(z) => z.clone(),
            DOut::Owned(z) => z,
        }
    }
}

/// A flat operator pipeline in topological order (children strictly before
/// parents; the last node is the root). The flat layout is what lets one
/// sweep drive the whole circuit with per-node outputs in a side vector —
/// no recursion, no tree walks.
struct Flow {
    nodes: Vec<CNode>,
}

/// A stateful circuit node plus the base relations (and recursive names)
/// its subtree reads, for delta short-circuiting.
struct CNode {
    kind: CKind,
    sources: Vec<Arc<str>>,
}

/// The operator kinds. Children are indices into the flow's node list.
enum CKind {
    /// Base-relation delta input.
    Input {
        relation: Arc<str>,
    },
    /// Recursive-input port: receives the enclosing fixpoint's frontier.
    RecInput {
        name: Arc<str>,
    },
    Select {
        child: usize,
        pred: BoundExpr,
    },
    Project {
        child: usize,
        indices: Vec<usize>,
    },
    Product {
        left: usize,
        right: usize,
        left_state: ZSet,
        right_state: ZSet,
    },
    Join {
        left: usize,
        right: usize,
        lk: Vec<usize>,
        rk: Vec<usize>,
        left_state: TupleMap<ZSet>,
        right_state: TupleMap<ZSet>,
        scratch: Vec<Value>,
    },
    Aggregate {
        child: usize,
        group_idx: Vec<usize>,
        specs: Vec<AggSpec>,
        groups: TupleMap<GroupState>,
        scratch: Vec<Value>,
        touched: TupleMap<Option<Tuple>>,
        row_buf: Vec<Value>,
    },
    Distinct {
        child: usize,
        state: ZSet,
    },
    Union {
        left: usize,
        right: usize,
    },
    SetOp {
        left: usize,
        right: usize,
        kind: SetOpKind,
        left_state: ZSet,
        right_state: ZSet,
    },
    Fixpoint(Box<FixpointNode>),
}

/// The μ node: two nested sub-circuits plus maintained copies of the source
/// relations (so retractions can recompute without touching the database).
struct FixpointNode {
    rec: Arc<str>,
    all: bool,
    cap: usize,
    /// True when base and step are aggregate- and difference-free, making
    /// positive deltas safe for semi-naive propagation.
    monotone: bool,
    sources: Vec<Arc<str>>,
    step_sources: Vec<Arc<str>>,
    base: Flow,
    step: Flow,
    /// Maintained full copies of every source relation this fixpoint reads.
    rels: BTreeMap<Arc<str>, CountedSet>,
    /// Set semantics: derivation counts per tuple (how many ways it is
    /// currently derivable). Bag semantics: mirror of `out`.
    derived: ZSet,
    /// The node's current output snapshot.
    out: ZSet,
}

#[inline]
fn bump(stats: &mut CircuitStats, on: bool, n: u64) {
    if on {
        stats.delta_rows_processed += n;
    }
}

/// Adds `(t, c)` into a keyed index, dropping key entries that empty out so
/// stale keys never accumulate.
fn insert_keyed(state: &mut TupleMap<ZSet>, fp: u64, key: &[Value], t: &Tuple, c: i64) {
    let set = state.get_or_insert_with(fp, key, ZSet::new);
    set.add(t.clone(), c);
    if set.is_empty() {
        state.remove(fp, key);
    }
}

fn merge_dout(state: &mut ZSet, d: &DOut<'_>) {
    for (t, c) in d.iter() {
        state.add(t.clone(), c);
    }
}

/// Folds a produced delta into the fixpoint's derivation counts, recording
/// newly derived tuples (weight 1) in `out`, `newly`, and `out_delta`.
/// Inflationary: once a tuple enters `out` it stays (matching the
/// executor's iterated-naive accumulation), so non-monotone steps converge
/// to the same answer as the oracle or hit the cap.
fn absorb(
    d: ZSet,
    derived: &mut ZSet,
    out: &mut ZSet,
    newly: &mut ZSet,
    out_delta: Option<&mut ZSet>,
) {
    let mut delta = out_delta;
    for (t, w) in d.iter() {
        let new_w = derived.add(t.clone(), w);
        if new_w > 0 && !out.contains(t) {
            out.add(t.clone(), 1);
            newly.add(t.clone(), 1);
            if let Some(od) = delta.as_deref_mut() {
                od.add(t.clone(), 1);
            }
        }
    }
}

impl FixpointNode {
    /// One maintenance batch: update maintained relation copies, then either
    /// propagate semi-naively (set semantics, monotone term, insert-only
    /// delta) or recompute-and-diff.
    fn step_batch(
        &mut self,
        input: &BatchInput<'_>,
        stats: &mut CircuitStats,
        init: bool,
        count_work: bool,
    ) -> Result<ZSet, CircuitError> {
        if init {
            self.rels.clear();
            if let Some(full) = input.full {
                for r in &self.sources {
                    if let Some(s) = full.get(r.as_ref()) {
                        self.rels.insert(Arc::clone(r), s.clone());
                    }
                }
            }
            self.rebuild(stats, count_work)?;
            return Ok(self.out.clone());
        }
        let mut positive_only = true;
        if let Some(ds) = input.deltas {
            for r in &self.sources {
                if let Some(d) = ds.for_relation(r) {
                    if d.iter().any(|(_, c)| c < 0) {
                        positive_only = false;
                    }
                    self.rels.entry(Arc::clone(r)).or_default().merge(d);
                }
            }
        }
        if !self.all && self.monotone && positive_only {
            self.increment(input, stats, count_work)
        } else {
            stats.fixpoint_recomputes += 1;
            let old = std::mem::take(&mut self.out);
            self.rebuild(stats, count_work)?;
            let mut diff = self.out.clone();
            diff.merge(&old.negated());
            Ok(diff)
        }
    }

    /// Full fixpoint evaluation over the maintained relation copies,
    /// resetting both sub-circuits and rebuilding `derived`/`out`.
    fn rebuild(&mut self, stats: &mut CircuitStats, count_work: bool) -> Result<(), CircuitError> {
        self.base.reset();
        self.step.reset();
        self.derived = ZSet::new();
        self.out = ZSet::new();
        let rels = &self.rels;
        let rec_name: &str = self.rec.as_ref();
        let cap = self.cap;
        let base = &mut self.base;
        let step = &mut self.step;
        let derived = &mut self.derived;
        let out = &mut self.out;

        let full_input = BatchInput {
            deltas: None,
            full: Some(rels),
            rec: None,
        };
        let d_base = base.run(&full_input, stats, true, count_work)?;

        if self.all {
            // Bag semantics (`UNION ALL`): working-table iteration. The
            // step circuit must see exactly the previous working table as
            // the recursive input, so each iteration feeds the *signed
            // difference* between consecutive working tables; the circuit's
            // own incrementality turns that into Δstep exactly.
            derived.merge(&d_base);
            out.merge(&d_base);
            let mut cur_step = ZSet::new(); // = step(rels, working)
            let mut prev_working = ZSet::new();
            let mut working = d_base;
            let mut first = true;
            let mut iters: usize = 0;
            while !working.is_empty() {
                iters += 1;
                if iters > cap {
                    return Err(CircuitError::IterationLimit { cap });
                }
                stats.fixpoint_iterations += 1;
                let mut rec_delta = working.clone();
                rec_delta.merge(&prev_working.negated());
                let inp = BatchInput {
                    deltas: None,
                    full: if first { Some(rels) } else { None },
                    rec: Some((rec_name, &rec_delta)),
                };
                let d_step = step.run(&inp, stats, first, count_work)?;
                cur_step.merge_owned(d_step);
                out.merge(&cur_step);
                prev_working = working;
                working = cur_step.clone();
                first = false;
            }
            *derived = out.clone();
        } else {
            // Set semantics (`UNION`): semi-naive over derivation counts.
            // Each iteration feeds only the newly derived frontier.
            let mut frontier = ZSet::new();
            absorb(d_base, derived, out, &mut frontier, None);
            let mut first = true;
            let mut iters: usize = 0;
            loop {
                iters += 1;
                if iters > cap {
                    return Err(CircuitError::IterationLimit { cap });
                }
                stats.fixpoint_iterations += 1;
                let inp = BatchInput {
                    deltas: None,
                    full: if first { Some(rels) } else { None },
                    rec: Some((rec_name, &frontier)),
                };
                let d_step = step.run(&inp, stats, first, count_work)?;
                let mut next = ZSet::new();
                absorb(d_step, derived, out, &mut next, None);
                if next.is_empty() {
                    break;
                }
                frontier = next;
                first = false;
            }
        }
        Ok(())
    }

    /// Semi-naive incremental maintenance for an insert-only delta on a
    /// monotone set-semantics fixpoint: propagate the world delta through
    /// base and step once, then iterate only the newly derived frontier.
    fn increment(
        &mut self,
        input: &BatchInput<'_>,
        stats: &mut CircuitStats,
        count_work: bool,
    ) -> Result<ZSet, CircuitError> {
        let rec_name: &str = self.rec.as_ref();
        let cap = self.cap;
        let base = &mut self.base;
        let step = &mut self.step;
        let derived = &mut self.derived;
        let out = &mut self.out;

        let mut out_delta = ZSet::new();
        let base_inp = BatchInput {
            deltas: input.deltas,
            full: None,
            rec: None,
        };
        let d_base = base.run(&base_inp, stats, false, count_work)?;
        let mut frontier = ZSet::new();
        absorb(d_base, derived, out, &mut frontier, Some(&mut out_delta));

        let step_touched = input.deltas.is_some_and(|ds| {
            self.step_sources
                .iter()
                .any(|r| ds.for_relation(r).is_some())
        });
        if step_touched || !frontier.is_empty() {
            let mut first = true;
            let mut iters: usize = 0;
            loop {
                iters += 1;
                if iters > cap {
                    return Err(CircuitError::IterationLimit { cap });
                }
                stats.fixpoint_iterations += 1;
                let inp = BatchInput {
                    deltas: if first { input.deltas } else { None },
                    full: None,
                    rec: Some((rec_name, &frontier)),
                };
                let d_step = step.run(&inp, stats, false, count_work)?;
                let mut next = ZSet::new();
                absorb(d_step, derived, out, &mut next, Some(&mut out_delta));
                if next.is_empty() {
                    break;
                }
                frontier = next;
                first = false;
            }
        }
        Ok(out_delta)
    }
}

impl CNode {
    /// Processes one batch, reading child outputs from `outs` (children are
    /// always earlier in the flow) and returning this node's output delta.
    fn step<'d>(
        &mut self,
        input: &BatchInput<'d>,
        outs: &[DOut<'d>],
        stats: &mut CircuitStats,
        init: bool,
        count_work: bool,
    ) -> Result<DOut<'d>, CircuitError> {
        if !input.touches(&self.sources) {
            return Ok(DOut::Empty);
        }
        Ok(match &mut self.kind {
            CKind::Input { relation } => match input.relation(relation) {
                Some(d) => {
                    bump(stats, count_work, d.distinct_len() as u64);
                    d
                }
                None => DOut::Empty,
            },
            CKind::RecInput { name } => match input.relation(name) {
                Some(d) => {
                    bump(stats, count_work, d.distinct_len() as u64);
                    d
                }
                None => DOut::Empty,
            },
            CKind::Select { child, pred } => {
                let d = &outs[*child];
                let mut out = ZSet::new();
                for (t, c) in d.iter() {
                    bump(stats, count_work, 1);
                    if pred.matches(t) {
                        out.add(t.clone(), c);
                    }
                }
                DOut::Owned(out)
            }
            CKind::Project { child, indices } => {
                let d = &outs[*child];
                let mut out = ZSet::with_capacity(d.distinct_len());
                for (t, c) in d.iter() {
                    bump(stats, count_work, 1);
                    out.add(t.project(indices), c);
                }
                DOut::Owned(out)
            }
            CKind::Product {
                left,
                right,
                left_state,
                right_state,
            } => {
                let dl = &outs[*left];
                let dr = &outs[*right];
                let mut out = ZSet::new();
                // ΔL × R_old
                for (lt, lc) in dl.iter() {
                    for (rt, rc) in right_state.iter() {
                        bump(stats, count_work, 1);
                        out.add(lt.concat(rt), lc * rc);
                    }
                }
                merge_dout(left_state, dl); // left is now L_new
                                            // L_new × ΔR — supplies both L_old × ΔR and ΔL × ΔR.
                for (rt, rc) in dr.iter() {
                    for (lt, lc) in left_state.iter() {
                        bump(stats, count_work, 1);
                        out.add(lt.concat(rt), lc * rc);
                    }
                }
                merge_dout(right_state, dr);
                DOut::Owned(out)
            }
            CKind::Join {
                left,
                right,
                lk,
                rk,
                left_state,
                right_state,
                scratch,
            } => {
                let dl = &outs[*left];
                let dr = &outs[*right];
                let mut out = ZSet::new();
                // ΔL ⋈ R_old, folding ΔL into the left index as we go; one
                // key projection and fingerprint per row, shared between the
                // probe and the insert. NULL join keys match nothing.
                for (lt, lc) in dl.iter() {
                    bump(stats, count_work, 1);
                    lt.project_into(lk, scratch);
                    if scratch.iter().any(Value::is_null) {
                        continue;
                    }
                    let fp = fingerprint_values(scratch);
                    if let Some(rts) = right_state.get(fp, scratch) {
                        for (rt, rc) in rts.iter() {
                            bump(stats, count_work, 1);
                            out.add(lt.concat(rt), lc * rc);
                        }
                    }
                    insert_keyed(left_state, fp, scratch, lt, lc);
                }
                // L_new ⋈ ΔR — supplies both L_old ⋈ ΔR and ΔL ⋈ ΔR.
                for (rt, rc) in dr.iter() {
                    bump(stats, count_work, 1);
                    rt.project_into(rk, scratch);
                    if scratch.iter().any(Value::is_null) {
                        continue;
                    }
                    let fp = fingerprint_values(scratch);
                    if let Some(lts) = left_state.get(fp, scratch) {
                        for (lt, lc) in lts.iter() {
                            bump(stats, count_work, 1);
                            out.add(lt.concat(rt), lc * rc);
                        }
                    }
                    insert_keyed(right_state, fp, scratch, rt, rc);
                }
                DOut::Owned(out)
            }
            CKind::Aggregate {
                child,
                group_idx,
                specs,
                groups,
                scratch,
                touched,
                row_buf,
            } => {
                let d = &outs[*child];
                let global = group_idx.is_empty();
                touched.clear();
                // At initialization the global group must exist (and emit
                // its zero-state row) even over an empty input — COUNT(*)
                // of nothing is 0, not absent.
                if init && global {
                    let fp = fingerprint_values(&[]);
                    touched.get_or_insert_with(fp, &[], || None);
                    groups.get_or_insert_with(fp, &[], || GroupState::new(specs));
                }
                for (t, c) in d.iter() {
                    bump(stats, count_work, 1);
                    t.project_into(group_idx, scratch);
                    let fp = fingerprint_values(scratch);
                    if touched.get(fp, scratch).is_none() {
                        let old = match groups.get(fp, scratch) {
                            Some(g) => Some(g.output(scratch, row_buf)),
                            // The global group exists implicitly with zero
                            // state.
                            None => global.then(|| GroupState::new(specs).output(scratch, row_buf)),
                        };
                        touched.get_or_insert_with(fp, scratch, || old);
                    }
                    let g = groups.get_or_insert_with(fp, scratch, || GroupState::new(specs));
                    g.n += c;
                    if g.n < 0 {
                        return Err(CircuitError::InconsistentDelta(NegativeWeight {
                            tuple: Tuple::from_slice(scratch),
                            weight: g.n,
                        }));
                    }
                    for (acc, spec) in g.accs.iter_mut().zip(specs.iter()) {
                        acc.update(spec, t, c);
                    }
                }
                // Diff old vs new output per touched group (identical to
                // the legacy engine's algorithm).
                let mut out = ZSet::new();
                for (key, old) in touched.iter() {
                    let fp = key.fingerprint();
                    let alive = match groups.get(fp, key.values()) {
                        Some(g) if g.n > 0 || global => {
                            let unchanged = old.as_ref().is_some_and(|o| {
                                let vals = &o.values()[key.arity()..];
                                g.accs
                                    .iter()
                                    .zip(vals)
                                    .all(|(acc, prev)| acc.finish() == *prev)
                            });
                            if !unchanged {
                                let n = g.output(key.values(), row_buf);
                                if let Some(o) = old {
                                    out.add(o.clone(), -1);
                                }
                                out.add(n, 1);
                            }
                            true
                        }
                        _ => {
                            if let Some(o) = old {
                                out.add(o.clone(), -1);
                            }
                            false
                        }
                    };
                    if !alive && !global && groups.get(fp, key.values()).is_some() {
                        groups.remove(fp, key.values());
                    }
                }
                DOut::Owned(out)
            }
            CKind::Distinct { child, state } => {
                let d = &outs[*child];
                let mut out = ZSet::new();
                for (t, c) in d.iter() {
                    bump(stats, count_work, 1);
                    let old = state.weight(t);
                    let new = state.add(t.clone(), c);
                    if new < 0 {
                        return Err(CircuitError::InconsistentDelta(NegativeWeight {
                            tuple: t.clone(),
                            weight: new,
                        }));
                    }
                    if old <= 0 && new > 0 {
                        out.add(t.clone(), 1);
                    } else if old > 0 && new <= 0 {
                        out.add(t.clone(), -1);
                    }
                }
                DOut::Owned(out)
            }
            CKind::Union { left, right } => {
                let dl = &outs[*left];
                let dr = &outs[*right];
                bump(stats, count_work, dr.distinct_len() as u64);
                let mut out = ZSet::with_capacity(dl.distinct_len() + dr.distinct_len());
                merge_dout(&mut out, dl);
                merge_dout(&mut out, dr);
                DOut::Owned(out)
            }
            CKind::SetOp {
                left,
                right,
                kind,
                left_state,
                right_state,
            } => {
                let dl = &outs[*left];
                let dr = &outs[*right];
                let mut out = ZSet::new();
                // Re-derive the output count of every touched tuple.
                for t in dl.iter().map(|(t, _)| t).chain(dr.iter().map(|(t, _)| t)) {
                    bump(stats, count_work, 1);
                    if out.weight(t) != 0 {
                        continue; // handled from the other delta already
                    }
                    let old = kind.out_count(left_state.weight(t), right_state.weight(t));
                    let new = kind.out_count(
                        left_state.weight(t) + dl.count(t),
                        right_state.weight(t) + dr.count(t),
                    );
                    out.add(t.clone(), new - old);
                }
                merge_dout(left_state, dl);
                merge_dout(right_state, dr);
                DOut::Owned(out)
            }
            CKind::Fixpoint(fx) => DOut::Owned(fx.step_batch(input, stats, init, count_work)?),
        })
    }
}

impl Flow {
    fn compile(plan: &Plan, db: &Database, rec: Option<&Arc<str>>) -> Result<Flow, CircuitError> {
        let mut nodes = Vec::new();
        compile_into(plan, db, rec, &mut nodes)?;
        Ok(Flow { nodes })
    }

    /// One bottom-up sweep: every node consumes its children's deltas (by
    /// index into `outs`) and appends its own. The root's delta is the
    /// circuit's output delta for this batch.
    fn run(
        &mut self,
        input: &BatchInput<'_>,
        stats: &mut CircuitStats,
        init: bool,
        count_work: bool,
    ) -> Result<ZSet, CircuitError> {
        let mut outs: Vec<DOut<'_>> = Vec::with_capacity(self.nodes.len());
        for node in &mut self.nodes {
            let out = node.step(input, &outs, stats, init, count_work)?;
            outs.push(out);
        }
        Ok(outs.pop().map(DOut::into_zset).unwrap_or_default())
    }

    /// Clears all operator state, returning the flow to its pre-init form.
    fn reset(&mut self) {
        for node in &mut self.nodes {
            match &mut node.kind {
                CKind::Product {
                    left_state,
                    right_state,
                    ..
                } => {
                    *left_state = ZSet::new();
                    *right_state = ZSet::new();
                }
                CKind::Join {
                    left_state,
                    right_state,
                    ..
                } => {
                    left_state.clear();
                    right_state.clear();
                }
                CKind::Aggregate {
                    groups, touched, ..
                } => {
                    groups.clear();
                    touched.clear();
                }
                CKind::Distinct { state, .. } => *state = ZSet::new(),
                CKind::SetOp {
                    left_state,
                    right_state,
                    ..
                } => {
                    *left_state = ZSet::new();
                    *right_state = ZSet::new();
                }
                CKind::Fixpoint(fx) => {
                    fx.base.reset();
                    fx.step.reset();
                    fx.rels.clear();
                    fx.derived = ZSet::new();
                    fx.out = ZSet::new();
                }
                CKind::Input { .. }
                | CKind::RecInput { .. }
                | CKind::Select { .. }
                | CKind::Project { .. }
                | CKind::Union { .. } => {}
            }
        }
    }
}

fn union_sources(a: &[Arc<str>], b: &[Arc<str>]) -> Vec<Arc<str>> {
    let mut out: Vec<Arc<str>> = a.iter().chain(b.iter()).map(Arc::clone).collect();
    out.sort();
    out.dedup();
    out
}

/// Number of references to the recursive relation `name` within `plan`
/// (not descending into inner fixpoints that rebind the same name).
fn count_rec(plan: &Plan, name: &str) -> usize {
    match plan {
        Plan::Scan { .. } => 0,
        Plan::Select { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Distinct { input } => count_rec(input, name),
        Plan::Product { left, right }
        | Plan::Join { left, right, .. }
        | Plan::Union { left, right }
        | Plan::Difference { left, right }
        | Plan::Intersect { left, right } => count_rec(left, name) + count_rec(right, name),
        Plan::Fixpoint {
            base, step, rec, ..
        } => {
            if rec.as_ref() == name {
                count_rec(base, name)
            } else {
                count_rec(base, name) + count_rec(step, name)
            }
        }
        Plan::Rec { name: n, .. } => usize::from(n.as_ref() == name),
    }
}

/// True when the plan is monotone in its inputs: inserting tuples can only
/// insert (never retract) output tuples. Aggregates and bag difference are
/// the non-monotone operators.
fn is_monotone(plan: &Plan) -> bool {
    match plan {
        Plan::Aggregate { .. } | Plan::Difference { .. } => false,
        Plan::Scan { .. } | Plan::Rec { .. } => true,
        Plan::Select { input, .. } | Plan::Project { input, .. } | Plan::Distinct { input } => {
            is_monotone(input)
        }
        Plan::Product { left, right }
        | Plan::Join { left, right, .. }
        | Plan::Union { left, right }
        | Plan::Intersect { left, right } => is_monotone(left) && is_monotone(right),
        Plan::Fixpoint { base, step, .. } => is_monotone(base) && is_monotone(step),
    }
}

fn compile_into(
    plan: &Plan,
    db: &Database,
    rec: Option<&Arc<str>>,
    nodes: &mut Vec<CNode>,
) -> Result<usize, CircuitError> {
    let (kind, sources) = match plan {
        Plan::Scan { relation, .. } => {
            db.relation(relation)
                .map_err(|_| PlanError::UnknownRelation(relation.to_string()))?;
            (
                CKind::Input {
                    relation: Arc::clone(relation),
                },
                vec![Arc::clone(relation)],
            )
        }
        Plan::Select { input, predicate } => {
            let cols = input.output_columns(db)?;
            let pred = predicate
                .bind(&cols)
                .map_err(|c| ExecError::Plan(PlanError::UnknownColumn(c)))?;
            let child = compile_into(input, db, rec, nodes)?;
            let src = nodes[child].sources.clone();
            (CKind::Select { child, pred }, src)
        }
        Plan::Project { input, columns } => {
            let cols = input.output_columns(db)?;
            let indices = columns
                .iter()
                .map(|c| {
                    resolve_column(&cols, c)
                        .ok_or_else(|| ExecError::Plan(PlanError::UnknownColumn(c.to_string())))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let child = compile_into(input, db, rec, nodes)?;
            let src = nodes[child].sources.clone();
            (CKind::Project { child, indices }, src)
        }
        Plan::Product { left, right } => {
            let l = compile_into(left, db, rec, nodes)?;
            let r = compile_into(right, db, rec, nodes)?;
            let src = union_sources(&nodes[l].sources, &nodes[r].sources);
            (
                CKind::Product {
                    left: l,
                    right: r,
                    left_state: ZSet::new(),
                    right_state: ZSet::new(),
                },
                src,
            )
        }
        Plan::Join { left, right, on } => {
            let l_cols = left.output_columns(db)?;
            let r_cols = right.output_columns(db)?;
            let (lk, rk) = join_key_indices(on, &l_cols, &r_cols)?;
            let l = compile_into(left, db, rec, nodes)?;
            let r = compile_into(right, db, rec, nodes)?;
            let src = union_sources(&nodes[l].sources, &nodes[r].sources);
            (
                CKind::Join {
                    left: l,
                    right: r,
                    lk,
                    rk,
                    left_state: TupleMap::new(),
                    right_state: TupleMap::new(),
                    scratch: Vec::new(),
                },
                src,
            )
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let cols = input.output_columns(db)?;
            let group_idx = group_by
                .iter()
                .map(|c| {
                    resolve_column(&cols, c)
                        .ok_or_else(|| ExecError::Plan(PlanError::UnknownColumn(c.to_string())))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let specs = bind_aggs(aggs, &cols)?;
            let child = compile_into(input, db, rec, nodes)?;
            let src = nodes[child].sources.clone();
            (
                CKind::Aggregate {
                    child,
                    group_idx,
                    specs,
                    groups: TupleMap::new(),
                    scratch: Vec::new(),
                    touched: TupleMap::new(),
                    row_buf: Vec::new(),
                },
                src,
            )
        }
        Plan::Distinct { input } => {
            let child = compile_into(input, db, rec, nodes)?;
            let src = nodes[child].sources.clone();
            (
                CKind::Distinct {
                    child,
                    state: ZSet::new(),
                },
                src,
            )
        }
        Plan::Union { left, right } => {
            plan.output_columns(db)?;
            let l = compile_into(left, db, rec, nodes)?;
            let r = compile_into(right, db, rec, nodes)?;
            let src = union_sources(&nodes[l].sources, &nodes[r].sources);
            (CKind::Union { left: l, right: r }, src)
        }
        Plan::Difference { left, right } | Plan::Intersect { left, right } => {
            plan.output_columns(db)?;
            let kind = if matches!(plan, Plan::Difference { .. }) {
                SetOpKind::Difference
            } else {
                SetOpKind::Intersect
            };
            let l = compile_into(left, db, rec, nodes)?;
            let r = compile_into(right, db, rec, nodes)?;
            let src = union_sources(&nodes[l].sources, &nodes[r].sources);
            (
                CKind::SetOp {
                    left: l,
                    right: r,
                    kind,
                    left_state: ZSet::new(),
                    right_state: ZSet::new(),
                },
                src,
            )
        }
        Plan::Fixpoint {
            base,
            step,
            rec: name,
            all,
            cap,
            ..
        } => {
            if rec.is_some() {
                return Err(CircuitError::NestedRecursion {
                    name: name.to_string(),
                });
            }
            plan.output_columns(db)?; // arity agreement across terms
            if db.relation(name).is_ok() {
                return Err(CircuitError::ShadowedRelation {
                    name: name.to_string(),
                });
            }
            if count_rec(step, name) > 1 {
                return Err(CircuitError::NonLinearRecursion {
                    name: name.to_string(),
                });
            }
            let base_flow = Flow::compile(base, db, None)?;
            let step_flow = Flow::compile(step, db, Some(name))?;
            let monotone = is_monotone(base) && is_monotone(step);
            let sources = union_sources(&base.base_relations(), &step.base_relations());
            let step_sources = step.base_relations();
            (
                CKind::Fixpoint(Box::new(FixpointNode {
                    rec: Arc::clone(name),
                    all: *all,
                    cap: *cap,
                    monotone,
                    sources: sources.clone(),
                    step_sources,
                    base: base_flow,
                    step: step_flow,
                    rels: BTreeMap::new(),
                    derived: ZSet::new(),
                    out: ZSet::new(),
                })),
                sources,
            )
        }
        Plan::Rec { name, .. } => match rec {
            Some(r) if r.as_ref() == name.as_ref() => (
                CKind::RecInput {
                    name: Arc::clone(name),
                },
                vec![Arc::clone(name)],
            ),
            _ => {
                return Err(CircuitError::UnboundRecursion {
                    name: name.to_string(),
                })
            }
        },
    };
    nodes.push(CNode { kind, sources });
    Ok(nodes.len() - 1)
}

/// A query answer maintained incrementally by a Z-set operator circuit.
///
/// The circuit analogue of [`crate::MaterializedView`]: compile once, feed
/// [`DeltaSet`] batches, read the maintained answer. Unlike the legacy
/// engine it supports [`Plan::Fixpoint`] (recursive queries) and surfaces
/// typed errors instead of silently absorbing inconsistent streams.
pub struct Circuit {
    flow: Flow,
    result: CountedSet,
    columns: Vec<Arc<str>>,
    sources: Vec<Arc<str>>,
    stats: CircuitStats,
}

impl Circuit {
    /// Compiles `plan` and runs the one-time full evaluation: every source
    /// relation's contents are fed through the circuit as an insert-only
    /// delta from empty state (initialization *is* the first delta).
    pub fn new(plan: &Plan, db: &Database) -> Result<Self, CircuitError> {
        let columns = plan.output_columns(db)?;
        let mut flow = Flow::compile(plan, db, None)?;
        let sources = plan.base_relations();
        let mut stats = CircuitStats::default();
        let mut full: BTreeMap<Arc<str>, CountedSet> = BTreeMap::new();
        for r in &sources {
            let rel = db
                .relation(r)
                .map_err(|_| PlanError::UnknownRelation(r.to_string()))?;
            stats.init_tuples_scanned += rel.len() as u64;
            full.insert(
                Arc::clone(r),
                CountedSet::from_tuples(rel.tuples().cloned()),
            );
        }
        let input = BatchInput {
            deltas: None,
            full: Some(&full),
            rec: None,
        };
        let result = flow.run(&input, &mut stats, true, false)?.into_counted();
        Ok(Circuit {
            flow,
            result,
            columns,
            sources,
            stats,
        })
    }

    /// Applies a world delta, updating the maintained answer and returning
    /// the answer's own signed delta. Cost is Θ(|Δ|) plus join fan-out (and,
    /// for recursive plans, the frontier iteration or rebuild).
    ///
    /// On error the circuit's state may be partially updated and the answer
    /// should no longer be trusted; rebuild via [`Circuit::new`].
    pub fn apply_delta(&mut self, deltas: &DeltaSet) -> Result<CountedSet, CircuitError> {
        self.stats.deltas_applied += 1;
        if !self
            .sources
            .iter()
            .any(|r| deltas.for_relation(r).is_some())
        {
            return Ok(CountedSet::new());
        }
        let input = BatchInput {
            deltas: Some(deltas),
            full: None,
            rec: None,
        };
        let out = self
            .flow
            .run(&input, &mut self.stats, false, true)?
            .into_counted();
        self.result.merge(&out);
        Ok(out)
    }

    /// The current maintained answer multiset.
    pub fn result(&self) -> &CountedSet {
        &self.result
    }

    /// Output column names.
    pub fn columns(&self) -> &[Arc<str>] {
        &self.columns
    }

    /// Base relations this circuit reads (sorted, deduplicated).
    pub fn source_relations(&self) -> &[Arc<str>] {
        &self.sources
    }

    /// Work counters.
    pub fn stats(&self) -> CircuitStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::DEFAULT_FIXPOINT_CAP;
    use crate::exec::execute;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType;

    fn link_db(edges: &[(i64, i64)]) -> Database {
        let mut db = Database::new();
        let schema =
            Schema::from_pairs(&[("src", ValueType::Int), ("dst", ValueType::Int)]).unwrap();
        db.create_relation("LINK", schema).unwrap();
        for &(s, d) in edges {
            db.relation_mut("LINK")
                .unwrap()
                .insert(tuple![s, d])
                .unwrap();
        }
        db
    }

    fn closure_plan() -> Plan {
        let step = Plan::rec("REACH", &["a", "b"])
            .join_on(Plan::scan("LINK"), &[("b", "src")])
            .project(&["a", "dst"]);
        Plan::scan("LINK").fixpoint(step, "REACH", &["a", "b"])
    }

    fn insert(rel: &Arc<str>, s: i64, d: i64) -> DeltaSet {
        let mut ds = DeltaSet::new();
        ds.record_insert(rel, tuple![s, d]);
        ds
    }

    fn remove(rel: &Arc<str>, s: i64, d: i64) -> DeltaSet {
        let mut ds = DeltaSet::new();
        ds.record_delete(rel, tuple![s, d]);
        ds
    }

    fn delete_row(db: &mut Database, s: i64, d: i64) {
        let rel = db.relation_mut("LINK").unwrap();
        let rid = rel
            .iter()
            .find(|(_, t)| **t == tuple![s, d])
            .map(|(rid, _)| rid)
            .unwrap();
        rel.delete(rid).unwrap();
    }

    #[test]
    fn closure_matches_executor() {
        let db = link_db(&[(1, 2), (2, 3), (3, 4)]);
        let plan = closure_plan();
        let circuit = Circuit::new(&plan, &db).unwrap();
        let (oracle, _) = execute(&plan, &db).unwrap();
        assert_eq!(
            circuit.result().sorted_entries(),
            oracle.rows.sorted_entries()
        );
        assert_eq!(circuit.result().total(), 6);
    }

    #[test]
    fn closure_incremental_insert_matches_recompute() {
        let mut db = link_db(&[(1, 2), (2, 3)]);
        let plan = closure_plan();
        let mut circuit = Circuit::new(&plan, &db).unwrap();
        let rel: Arc<str> = Arc::from("LINK");
        let recomputes = circuit.stats().fixpoint_recomputes;
        circuit.apply_delta(&insert(&rel, 3, 4)).unwrap();
        // Insert-only deltas on a monotone closure never force a rebuild.
        assert_eq!(circuit.stats().fixpoint_recomputes, recomputes);
        db.relation_mut("LINK")
            .unwrap()
            .insert(tuple![3, 4])
            .unwrap();
        let (oracle, _) = execute(&plan, &db).unwrap();
        assert_eq!(
            circuit.result().sorted_entries(),
            oracle.rows.sorted_entries()
        );
    }

    #[test]
    fn closure_incremental_retract_matches_recompute() {
        let mut db = link_db(&[(1, 2), (2, 3), (3, 4), (1, 4)]);
        let plan = closure_plan();
        let mut circuit = Circuit::new(&plan, &db).unwrap();
        let rel: Arc<str> = Arc::from("LINK");
        circuit.apply_delta(&remove(&rel, 2, 3)).unwrap();
        assert!(circuit.stats().fixpoint_recomputes >= 1);
        delete_row(&mut db, 2, 3);
        let (oracle, _) = execute(&plan, &db).unwrap();
        assert_eq!(
            circuit.result().sorted_entries(),
            oracle.rows.sorted_entries()
        );
    }

    #[test]
    fn closure_on_cycle_terminates() {
        // Set semantics converge on cyclic graphs.
        let db = link_db(&[(1, 2), (2, 3), (3, 1)]);
        let plan = closure_plan();
        let circuit = Circuit::new(&plan, &db).unwrap();
        assert_eq!(circuit.result().total(), 9); // complete digraph on the cycle
        let (oracle, _) = execute(&plan, &db).unwrap();
        assert_eq!(
            circuit.result().sorted_entries(),
            oracle.rows.sorted_entries()
        );
    }

    #[test]
    fn bag_closure_on_cycle_hits_cap() {
        let db = link_db(&[(1, 2), (2, 1)]);
        let step = Plan::rec("REACH", &["a", "b"])
            .join_on(Plan::scan("LINK"), &[("b", "src")])
            .project(&["a", "dst"]);
        let mut plan = Plan::scan("LINK").fixpoint(step, "REACH", &["a", "b"]);
        if let Plan::Fixpoint { all, .. } = &mut plan {
            *all = true;
        }
        let plan = plan.with_fixpoint_cap(50);
        let err = Circuit::new(&plan, &db).err().unwrap();
        assert_eq!(err, CircuitError::IterationLimit { cap: 50 });
        // The executor oracle agrees that this diverges.
        assert!(matches!(
            execute(&plan, &db),
            Err(ExecError::FixpointLimit { cap: 50 })
        ));
    }

    #[test]
    fn non_linear_recursion_is_rejected() {
        let db = link_db(&[(1, 2)]);
        // REACH ⋈ REACH: two references to the recursive relation.
        let step = Plan::rec("REACH", &["a", "b"])
            .join_on(Plan::rec("REACH", &["c", "d"]), &[("b", "c")])
            .project(&["a", "d"]);
        let plan = Plan::scan("LINK").fixpoint(step, "REACH", &["a", "b"]);
        let err = Circuit::new(&plan, &db).err().unwrap();
        assert!(
            matches!(err, CircuitError::NonLinearRecursion { .. }),
            "{err}"
        );
    }

    #[test]
    fn shadowing_a_relation_is_rejected() {
        let db = link_db(&[(1, 2)]);
        let step = Plan::rec("LINK", &["src", "dst"]);
        let plan = Plan::scan("LINK").fixpoint(step, "LINK", &["src", "dst"]);
        let err = Circuit::new(&plan, &db).err().unwrap();
        assert!(
            matches!(err, CircuitError::ShadowedRelation { .. }),
            "{err}"
        );
    }

    #[test]
    fn unbound_rec_is_rejected() {
        let db = link_db(&[(1, 2)]);
        let plan = Plan::rec("GHOST", &["a", "b"]);
        let err = Circuit::new(&plan, &db).err().unwrap();
        assert!(
            matches!(err, CircuitError::UnboundRecursion { .. }),
            "{err}"
        );
    }

    #[test]
    fn nested_recursion_is_rejected() {
        let db = link_db(&[(1, 2)]);
        let inner =
            Plan::scan("LINK").fixpoint(Plan::rec("IN", &["src", "dst"]), "IN", &["src", "dst"]);
        let plan = Plan::scan("LINK").fixpoint(inner, "OUT", &["src", "dst"]);
        let err = Circuit::new(&plan, &db).err().unwrap();
        assert!(matches!(err, CircuitError::NestedRecursion { .. }), "{err}");
    }

    #[test]
    fn inconsistent_retraction_surfaces_typed_error() {
        let db = link_db(&[(1, 2)]);
        let plan = Plan::scan("LINK").distinct();
        let mut circuit = Circuit::new(&plan, &db).unwrap();
        let rel: Arc<str> = Arc::from("LINK");
        let err = circuit.apply_delta(&remove(&rel, 9, 9)).unwrap_err();
        assert!(matches!(err, CircuitError::InconsistentDelta(_)), "{err}");
    }

    #[test]
    fn non_monotone_step_matches_executor() {
        // Recursive term with a difference: forces recompute-and-diff on
        // every delta, and the inflationary result must still match the
        // executor's iterated-naive accumulation.
        let db = link_db(&[(1, 2), (2, 3)]);
        let step = Plan::rec("R", &["a", "b"])
            .join_on(Plan::scan("LINK"), &[("b", "src")])
            .project(&["a", "dst"])
            .difference(Plan::scan("LINK"));
        let plan = Plan::scan("LINK").fixpoint(step, "R", &["a", "b"]);
        let mut circuit = Circuit::new(&plan, &db).unwrap();
        let (oracle, _) = execute(&plan, &db).unwrap();
        assert_eq!(
            circuit.result().sorted_entries(),
            oracle.rows.sorted_entries()
        );

        let rel: Arc<str> = Arc::from("LINK");
        circuit.apply_delta(&insert(&rel, 3, 4)).unwrap();
        assert!(circuit.stats().fixpoint_recomputes >= 1);
        let mut db2 = link_db(&[(1, 2), (2, 3), (3, 4)]);
        let (oracle2, _) = execute(&plan, &db2).unwrap();
        assert_eq!(
            circuit.result().sorted_entries(),
            oracle2.rows.sorted_entries()
        );
        delete_row(&mut db2, 1, 2);
        circuit.apply_delta(&remove(&rel, 1, 2)).unwrap();
        let (oracle3, _) = execute(&plan, &db2).unwrap();
        assert_eq!(
            circuit.result().sorted_entries(),
            oracle3.rows.sorted_entries()
        );
    }

    #[test]
    fn default_cap_is_generous() {
        let db = link_db(&[(1, 2)]);
        let plan = closure_plan();
        if let Plan::Fixpoint { cap, .. } = &plan {
            assert_eq!(*cap, DEFAULT_FIXPOINT_CAP);
        } else {
            panic!("expected fixpoint plan");
        }
        Circuit::new(&plan, &db).unwrap();
    }
}
