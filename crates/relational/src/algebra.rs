//! Relational algebra plans.
//!
//! The paper's query evaluation problem (§4) is defined over *arbitrary*
//! relational algebra, "including aggregation", because the stored world is
//! always deterministic. [`Plan`] is that algebra: selection, projection,
//! Cartesian product, equi-join, grouping/aggregation (with per-aggregate
//! filters, which express the correlated COUNT subqueries of Query 3), and
//! duplicate elimination.
//!
//! Plans are built by name against relation schemas and later compiled either
//! by the full executor ([`crate::exec`]) or into an incrementally-maintained
//! materialized view ([`crate::view`]).

use crate::database::Database;
use crate::expr::Expr;
use std::fmt;
use std::sync::Arc;

/// Aggregate functions.
#[derive(Clone, Debug, PartialEq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts input multiplicity.
    Count,
    /// `SUM(column)` over numeric values (NULLs skipped).
    Sum(Arc<str>),
    /// `MIN(column)` (NULLs skipped; NULL when group has no non-null value).
    Min(Arc<str>),
    /// `MAX(column)` (NULLs skipped).
    Max(Arc<str>),
}

/// One aggregate in a [`Plan::Aggregate`] node.
///
/// The optional `filter` restricts which input rows feed the aggregate —
/// SQL's `COUNT(*) FILTER (WHERE …)`. Query 3's two correlated subqueries
/// become two filtered counts over the same grouping.
#[derive(Clone, Debug, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Optional row filter evaluated against the aggregate input.
    pub filter: Option<Expr>,
    /// Output column name.
    pub name: Arc<str>,
}

impl AggExpr {
    /// Unfiltered aggregate.
    pub fn new(func: AggFunc, name: impl Into<Arc<str>>) -> Self {
        AggExpr {
            func,
            filter: None,
            name: name.into(),
        }
    }

    /// `COUNT(*) FILTER (WHERE predicate) AS name`.
    pub fn count_if(predicate: Expr, name: impl Into<Arc<str>>) -> Self {
        AggExpr {
            func: AggFunc::Count,
            filter: Some(predicate),
            name: name.into(),
        }
    }
}

/// A relational algebra plan.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Base relation access; `alias` qualifies output columns as `alias.col`
    /// so that self-joins (Query 4) can disambiguate.
    Scan {
        /// Relation name in the catalog.
        relation: Arc<str>,
        /// Optional alias for column qualification.
        alias: Option<Arc<str>>,
    },
    /// σ — filter rows by a predicate.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Row predicate (SQL three-valued).
        predicate: Expr,
    },
    /// π — project onto named columns (multiset semantics: duplicates kept).
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output column names, resolved against the input.
        columns: Vec<Arc<str>>,
    },
    /// × — Cartesian product.
    Product {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// ⋈ — equi-join on pairs of (left column, right column).
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Equality conditions `(left_col, right_col)`.
        on: Vec<(Arc<str>, Arc<str>)>,
    },
    /// γ — group by columns and compute aggregates. With an empty `group_by`
    /// this is a global aggregate that always emits exactly one row.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping columns.
        group_by: Vec<Arc<str>>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
    },
    /// δ — duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// ∪ — bag union (UNION ALL: multiplicities add).
    Union {
        /// Left input.
        left: Box<Plan>,
        /// Right input (must have the same arity as the left).
        right: Box<Plan>,
    },
    /// ∖ — bag difference (monus: `max(0, L(t) − R(t))`).
    Difference {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// ∩ — bag intersection (`min(L(t), R(t))`).
    Intersect {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// μ — least fixpoint of a linear-recursive query (`WITH RECURSIVE`).
    ///
    /// Evaluates `base`, then repeatedly evaluates `step` with [`Plan::Rec`]
    /// leaves named `rec` bound to the tuples derived so far, until no new
    /// tuples appear (set semantics, `all == false`) or the working table
    /// empties (bag semantics, `all == true`). Iteration is bounded by `cap`;
    /// exceeding it is a typed error, never divergence.
    Fixpoint {
        /// The non-recursive seed term.
        base: Box<Plan>,
        /// The recursive term; may reference `rec` via [`Plan::Rec`].
        step: Box<Plan>,
        /// Name binding [`Plan::Rec`] leaves in `step` to this fixpoint.
        rec: Arc<str>,
        /// Output column names (the recursive relation's schema).
        columns: Vec<Arc<str>>,
        /// `true` for `UNION ALL` (bag) accumulation, `false` for `UNION`
        /// (set) semantics. Set semantics terminate on cyclic data; bag
        /// semantics on a cycle hit `cap`.
        all: bool,
        /// Maximum number of iterations before a typed error.
        cap: usize,
    },
    /// A reference to the enclosing [`Plan::Fixpoint`]'s recursive relation.
    ///
    /// Valid only inside a fixpoint's `step`; carries its column names so
    /// plans remain resolvable without a catalog entry.
    Rec {
        /// The fixpoint name this leaf refers to.
        name: Arc<str>,
        /// Output column names (possibly alias-qualified).
        columns: Vec<Arc<str>>,
    },
}

/// Default iteration cap for [`Plan::Fixpoint`] nodes built by
/// [`Plan::fixpoint`] and the SQL frontend. Generous enough for any closure
/// a realistic entity-link graph produces, small enough that a divergent
/// bag-semantics recursion errors out in milliseconds.
pub const DEFAULT_FIXPOINT_CAP: usize = 10_000;

/// Errors raised while validating or binding a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Relation missing from the catalog.
    UnknownRelation(String),
    /// Column name failed to resolve (or was ambiguous).
    UnknownColumn(String),
    /// The same output column name appears twice.
    DuplicateOutput(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            PlanError::UnknownColumn(c) => write!(f, "unknown or ambiguous column `{c}`"),
            PlanError::DuplicateOutput(c) => write!(f, "duplicate output column `{c}`"),
        }
    }
}

impl std::error::Error for PlanError {}

impl Plan {
    /// Scans a relation.
    pub fn scan(relation: impl Into<Arc<str>>) -> Plan {
        Plan::Scan {
            relation: relation.into(),
            alias: None,
        }
    }

    /// Scans a relation under an alias (columns become `alias.col`).
    pub fn scan_as(relation: impl Into<Arc<str>>, alias: impl Into<Arc<str>>) -> Plan {
        Plan::Scan {
            relation: relation.into(),
            alias: Some(alias.into()),
        }
    }

    /// Adds a σ on top.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Adds a π on top.
    pub fn project(self, columns: &[&str]) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns: columns.iter().map(|c| Arc::from(*c)).collect(),
        }
    }

    /// Cartesian product with another plan.
    pub fn product(self, right: Plan) -> Plan {
        Plan::Product {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Equi-join with another plan.
    pub fn join_on(self, right: Plan, on: &[(&str, &str)]) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on
                .iter()
                .map(|(l, r)| (Arc::from(*l), Arc::from(*r)))
                .collect(),
        }
    }

    /// Group-by + aggregates.
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<AggExpr>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by: group_by.iter().map(|c| Arc::from(*c)).collect(),
            aggs,
        }
    }

    /// Duplicate elimination.
    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    /// Bag union (UNION ALL).
    pub fn union(self, right: Plan) -> Plan {
        Plan::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Bag difference (EXCEPT ALL, monus semantics).
    pub fn difference(self, right: Plan) -> Plan {
        Plan::Difference {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Bag intersection (INTERSECT ALL).
    pub fn intersect(self, right: Plan) -> Plan {
        Plan::Intersect {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Least fixpoint: `self` is the base term, `step` the recursive term
    /// referencing [`Plan::rec`] leaves named `rec`. Set semantics (`UNION`),
    /// cap [`DEFAULT_FIXPOINT_CAP`]; see [`Plan::with_fixpoint_cap`].
    pub fn fixpoint(self, step: Plan, rec: impl Into<Arc<str>>, columns: &[&str]) -> Plan {
        Plan::Fixpoint {
            base: Box::new(self),
            step: Box::new(step),
            rec: rec.into(),
            columns: columns.iter().map(|c| Arc::from(*c)).collect(),
            all: false,
            cap: DEFAULT_FIXPOINT_CAP,
        }
    }

    /// A recursive-relation reference for use inside a fixpoint's step.
    pub fn rec(name: impl Into<Arc<str>>, columns: &[&str]) -> Plan {
        Plan::Rec {
            name: name.into(),
            columns: columns.iter().map(|c| Arc::from(*c)).collect(),
        }
    }

    /// Overrides the iteration cap of a top-level [`Plan::Fixpoint`]
    /// (no-op on other plan shapes).
    pub fn with_fixpoint_cap(mut self, new_cap: usize) -> Plan {
        if let Plan::Fixpoint { cap, .. } = &mut self {
            *cap = new_cap;
        }
        self
    }

    /// Output column names of this plan against a database catalog.
    pub fn output_columns(&self, db: &Database) -> Result<Vec<Arc<str>>, PlanError> {
        match self {
            Plan::Scan { relation, alias } => {
                let rel = db
                    .relation(relation)
                    .map_err(|_| PlanError::UnknownRelation(relation.to_string()))?;
                Ok(rel
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| match alias {
                        Some(a) => Arc::from(format!("{a}.{}", c.name)),
                        None => Arc::clone(&c.name),
                    })
                    .collect())
            }
            Plan::Select { input, .. } => input.output_columns(db),
            Plan::Project { input, columns } => {
                let in_cols = input.output_columns(db)?;
                let mut out = Vec::with_capacity(columns.len());
                for c in columns {
                    crate::expr::resolve_column(&in_cols, c)
                        .ok_or_else(|| PlanError::UnknownColumn(c.to_string()))?;
                    out.push(Arc::clone(c));
                }
                check_unique(&out)?;
                Ok(out)
            }
            Plan::Product { left, right } | Plan::Join { left, right, .. } => {
                let mut out = left.output_columns(db)?;
                out.extend(right.output_columns(db)?);
                check_unique(&out)?;
                Ok(out)
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_cols = input.output_columns(db)?;
                let mut out = Vec::with_capacity(group_by.len() + aggs.len());
                for g in group_by {
                    crate::expr::resolve_column(&in_cols, g)
                        .ok_or_else(|| PlanError::UnknownColumn(g.to_string()))?;
                    out.push(Arc::clone(g));
                }
                for a in aggs {
                    out.push(Arc::clone(&a.name));
                }
                check_unique(&out)?;
                Ok(out)
            }
            Plan::Distinct { input } => input.output_columns(db),
            Plan::Union { left, right }
            | Plan::Difference { left, right }
            | Plan::Intersect { left, right } => {
                let l = left.output_columns(db)?;
                let r = right.output_columns(db)?;
                if l.len() != r.len() {
                    // Arity mismatch is a missing-column-shaped error on the
                    // narrower side's first absent position.
                    return Err(PlanError::UnknownColumn(format!(
                        "set operation arity mismatch: {} vs {}",
                        l.len(),
                        r.len()
                    )));
                }
                Ok(l)
            }
            Plan::Fixpoint {
                base,
                step,
                columns,
                ..
            } => {
                let b = base.output_columns(db)?;
                let s = step.output_columns(db)?;
                if b.len() != columns.len() || s.len() != columns.len() {
                    return Err(PlanError::UnknownColumn(format!(
                        "recursive terms arity mismatch: base {} vs step {} vs declared {}",
                        b.len(),
                        s.len(),
                        columns.len()
                    )));
                }
                check_unique(columns)?;
                Ok(columns.clone())
            }
            Plan::Rec { columns, .. } => {
                check_unique(columns)?;
                Ok(columns.clone())
            }
        }
    }

    /// True when the plan contains a [`Plan::Fixpoint`] (or a stray
    /// [`Plan::Rec`]) anywhere — i.e. it needs an engine that understands
    /// recursion.
    pub fn is_recursive(&self) -> bool {
        match self {
            Plan::Fixpoint { .. } | Plan::Rec { .. } => true,
            Plan::Scan { .. } => false,
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Distinct { input } => input.is_recursive(),
            Plan::Product { left, right }
            | Plan::Join { left, right, .. }
            | Plan::Union { left, right }
            | Plan::Difference { left, right }
            | Plan::Intersect { left, right } => left.is_recursive() || right.is_recursive(),
        }
    }

    /// Base relations referenced by this plan (deduplicated).
    pub fn base_relations(&self) -> Vec<Arc<str>> {
        let mut out = Vec::new();
        self.collect_base_relations(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_base_relations(&self, out: &mut Vec<Arc<str>>) {
        match self {
            Plan::Scan { relation, .. } => out.push(Arc::clone(relation)),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Distinct { input } => input.collect_base_relations(out),
            Plan::Product { left, right }
            | Plan::Join { left, right, .. }
            | Plan::Union { left, right }
            | Plan::Difference { left, right }
            | Plan::Intersect { left, right } => {
                left.collect_base_relations(out);
                right.collect_base_relations(out);
            }
            Plan::Fixpoint { base, step, .. } => {
                base.collect_base_relations(out);
                step.collect_base_relations(out);
            }
            // A Rec leaf names the fixpoint's own output, not a stored
            // relation.
            Plan::Rec { .. } => {}
        }
    }
}

fn check_unique(cols: &[Arc<str>]) -> Result<(), PlanError> {
    for (i, c) in cols.iter().enumerate() {
        if cols[..i].iter().any(|p| p == c) {
            return Err(PlanError::DuplicateOutput(c.to_string()));
        }
    }
    Ok(())
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Scan { relation, alias } => match alias {
                Some(a) => write!(f, "Scan({relation} AS {a})"),
                None => write!(f, "Scan({relation})"),
            },
            Plan::Select { input, .. } => write!(f, "σ({input})"),
            Plan::Project { input, columns } => {
                let cols: Vec<_> = columns.iter().map(|c| c.to_string()).collect();
                write!(f, "π[{}]({input})", cols.join(","))
            }
            Plan::Product { left, right } => write!(f, "({left} × {right})"),
            Plan::Join { left, right, on } => {
                let conds: Vec<_> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                write!(f, "({left} ⋈[{}] {right})", conds.join(","))
            }
            Plan::Aggregate {
                input, group_by, ..
            } => {
                let g: Vec<_> = group_by.iter().map(|c| c.to_string()).collect();
                write!(f, "γ[{}]({input})", g.join(","))
            }
            Plan::Distinct { input } => write!(f, "δ({input})"),
            Plan::Union { left, right } => write!(f, "({left} ∪ {right})"),
            Plan::Difference { left, right } => write!(f, "({left} ∖ {right})"),
            Plan::Intersect { left, right } => write!(f, "({left} ∩ {right})"),
            Plan::Fixpoint {
                base,
                step,
                rec,
                all,
                ..
            } => {
                let sem = if *all { "all" } else { "set" };
                write!(f, "μ[{rec};{sem}]({base}, {step})")
            }
            Plan::Rec { name, .. } => write!(f, "Rec({name})"),
        }
    }
}

/// The four evaluation queries of the paper (§5), as plan constructors over
/// the TOKEN relation `(tok_id, doc_id, string, label, truth)`.
pub mod paper_queries {
    use super::*;

    /// Query 1: `SELECT STRING FROM TOKEN WHERE LABEL='B-PER'`.
    pub fn query1(token: &str) -> Plan {
        Plan::scan(token)
            .filter(Expr::col("label").eq(Expr::lit("B-PER")))
            .project(&["string"])
    }

    /// Query 2: `SELECT COUNT(*) FROM TOKEN WHERE LABEL='B-PER'`.
    ///
    /// Expressed as a single global filtered count so the view-maintained
    /// evaluator keeps one accumulator.
    pub fn query2(token: &str) -> Plan {
        Plan::scan(token).aggregate(
            &[],
            vec![AggExpr::count_if(
                Expr::col("label").eq(Expr::lit("B-PER")),
                "n_person",
            )],
        )
    }

    /// Query 3: documents whose B-PER count equals their B-ORG count.
    ///
    /// The SQL in the paper uses two correlated COUNT subqueries; in algebra
    /// this is one grouping over `doc_id` with two filtered counts, a σ on
    /// count equality, and a π onto `doc_id`. (Per SQL semantics every
    /// document with at least one token appears in the grouping; documents
    /// with zero B-PER *and* zero B-ORG mentions satisfy 0 = 0.)
    pub fn query3(token: &str) -> Plan {
        Plan::scan(token)
            .aggregate(
                &["doc_id"],
                vec![
                    AggExpr::count_if(Expr::col("label").eq(Expr::lit("B-PER")), "n_per"),
                    AggExpr::count_if(Expr::col("label").eq(Expr::lit("B-ORG")), "n_org"),
                ],
            )
            .filter(Expr::col("n_per").eq(Expr::col("n_org")))
            .project(&["doc_id"])
    }

    /// Query 4: person strings co-occurring (same document) with a token
    /// "Boston" labelled B-ORG.
    pub fn query4(token: &str) -> Plan {
        let t1 = Plan::scan_as(token, "T1").filter(
            Expr::col("T1.string")
                .eq(Expr::lit("Boston"))
                .and(Expr::col("T1.label").eq(Expr::lit("B-ORG"))),
        );
        let t2 = Plan::scan_as(token, "T2").filter(Expr::col("T2.label").eq(Expr::lit("B-PER")));
        t1.join_on(t2, &[("T1.doc_id", "T2.doc_id")])
            .project(&["T2.string"])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn db_with_token() -> Database {
        let mut db = Database::new();
        let schema = Schema::from_pairs(&[
            ("tok_id", ValueType::Int),
            ("doc_id", ValueType::Int),
            ("string", ValueType::Str),
            ("label", ValueType::Str),
            ("truth", ValueType::Str),
        ])
        .unwrap()
        .with_primary_key("tok_id")
        .unwrap();
        db.create_relation("TOKEN", schema).unwrap();
        db
    }

    #[test]
    fn scan_output_columns() {
        let db = db_with_token();
        let cols = Plan::scan("TOKEN").output_columns(&db).unwrap();
        let names: Vec<_> = cols.iter().map(|c| c.to_string()).collect();
        assert_eq!(names, vec!["tok_id", "doc_id", "string", "label", "truth"]);
    }

    #[test]
    fn aliased_scan_qualifies_columns() {
        let db = db_with_token();
        let cols = Plan::scan_as("TOKEN", "T1").output_columns(&db).unwrap();
        assert_eq!(&*cols[0], "T1.tok_id");
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let db = db_with_token();
        assert!(matches!(
            Plan::scan("NOPE").output_columns(&db),
            Err(PlanError::UnknownRelation(_))
        ));
    }

    #[test]
    fn project_validates_columns() {
        let db = db_with_token();
        let good = Plan::scan("TOKEN").project(&["string"]);
        assert_eq!(good.output_columns(&db).unwrap().len(), 1);
        let bad = Plan::scan("TOKEN").project(&["nope"]);
        assert!(matches!(
            bad.output_columns(&db),
            Err(PlanError::UnknownColumn(_))
        ));
    }

    #[test]
    fn self_product_without_alias_has_duplicate_columns() {
        let db = db_with_token();
        let p = Plan::scan("TOKEN").product(Plan::scan("TOKEN"));
        assert!(matches!(
            p.output_columns(&db),
            Err(PlanError::DuplicateOutput(_))
        ));
        // Aliased self-product is fine.
        let p = Plan::scan_as("TOKEN", "T1").product(Plan::scan_as("TOKEN", "T2"));
        assert_eq!(p.output_columns(&db).unwrap().len(), 10);
    }

    #[test]
    fn paper_query_plans_validate() {
        let db = db_with_token();
        for (plan, want_cols) in [
            (paper_queries::query1("TOKEN"), vec!["string"]),
            (paper_queries::query2("TOKEN"), vec!["n_person"]),
            (paper_queries::query3("TOKEN"), vec!["doc_id"]),
            (paper_queries::query4("TOKEN"), vec!["T2.string"]),
        ] {
            let cols = plan.output_columns(&db).unwrap();
            let names: Vec<_> = cols.iter().map(|c| c.to_string()).collect();
            assert_eq!(names, want_cols, "{plan}");
        }
    }

    #[test]
    fn base_relations_deduplicated() {
        let q4 = paper_queries::query4("TOKEN");
        let rels = q4.base_relations();
        assert_eq!(rels.len(), 1);
        assert_eq!(&*rels[0], "TOKEN");
    }

    #[test]
    fn aggregate_output_columns() {
        let db = db_with_token();
        let p = Plan::scan("TOKEN").aggregate(
            &["doc_id"],
            vec![
                AggExpr::new(AggFunc::Count, "n"),
                AggExpr::new(AggFunc::Min(Arc::from("tok_id")), "first_tok"),
            ],
        );
        let cols = p.output_columns(&db).unwrap();
        let names: Vec<_> = cols.iter().map(|c| c.to_string()).collect();
        assert_eq!(names, vec!["doc_id", "n", "first_tok"]);
    }

    #[test]
    fn display_renders_tree() {
        let q1 = paper_queries::query1("TOKEN");
        assert_eq!(q1.to_string(), "π[string](σ(Scan(TOKEN)))");
    }
}
