//! Deltas between consecutive possible worlds.
//!
//! Figure 2 of the paper: after k MCMC steps the new world `w'` differs from
//! `w` by a removed set Δ⁻ ⊆ w and an added set Δ⁺ ⊆ w'. The prototype in
//! §5 stores these as "auxiliary tables representing the 'added' and
//! 'deleted' tuples required for applying the efficient modified queries".
//!
//! [`DeltaSet`] is those auxiliary tables. It records per-relation signed
//! tuple multiplicities; because it is backed by [`CountedSet`], a field that
//! is changed and later restored to its original value *cancels out*
//! automatically (the compaction the paper performs when "cleaning and
//! refreshing the tables ... between deterministic query executions").

use crate::counted::CountedSet;
use crate::tuple::Tuple;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Signed per-relation tuple deltas accumulated between query evaluations.
///
/// Record operations are amortized O(1): `CountedSet::add` already cancels
/// ±pairs exactly as they are recorded, so no per-record scan is needed.
/// A relation whose entries have all cancelled may linger as an *empty*
/// per-relation set until [`DeltaSet::compact`] runs; every read accessor
/// treats such entries as absent, and the MCMC bridge compacts once per
/// thinning interval (the paper's "cleaning and refreshing of the tables
/// ... between deterministic query executions", §4.2).
#[derive(Clone, Debug, Default)]
pub struct DeltaSet {
    per_relation: BTreeMap<Arc<str>, CountedSet>,
}

impl DeltaSet {
    /// Creates an empty delta set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a tuple insertion into `relation` (a Δ⁺ entry). Amortized O(1).
    pub fn record_insert(&mut self, relation: &Arc<str>, tuple: Tuple) {
        self.entry(relation).add(tuple, 1);
    }

    /// Records a tuple deletion from `relation` (a Δ⁻ entry). Amortized O(1).
    pub fn record_delete(&mut self, relation: &Arc<str>, tuple: Tuple) {
        self.entry(relation).add(tuple, -1);
    }

    /// Records an in-place update: the old image leaves the world (Δ⁻) and
    /// the new image enters it (Δ⁺). This is the path MCMC takes on every
    /// accepted proposal. Amortized O(1).
    pub fn record_update(&mut self, relation: &Arc<str>, old: Tuple, new: Tuple) {
        if old == new {
            return;
        }
        let set = self.entry(relation);
        set.add(old, -1);
        set.add(new, 1);
    }

    fn entry(&mut self, relation: &Arc<str>) -> &mut CountedSet {
        // Hot path: the relation is almost always present already (every
        // MCMC step updates the same bound relation). Probing by reference
        // first avoids the owned-key `Arc` clone (two atomic ops) that
        // `BTreeMap::entry` would pay per recorded tuple.
        if self.per_relation.contains_key(relation) {
            return self
                .per_relation
                .get_mut(relation)
                .expect("checked contains_key");
        }
        // Pre-size for a typical thinning interval (tens of ± images) so
        // accumulation does not pay repeated grow-and-rehash cycles.
        self.per_relation
            .entry(Arc::clone(relation))
            .or_insert_with(|| CountedSet::with_capacity(32))
    }

    /// Drops per-relation entries whose tuples have all cancelled out.
    /// Called once per thinning interval (not per recorded tuple), keeping
    /// interval accumulation O(|Δ|) instead of O(|Δ|²).
    pub fn compact(&mut self) {
        self.per_relation.retain(|_, set| !set.is_empty());
    }

    /// Signed delta for one relation (`None` when unchanged, including when
    /// all recorded changes for it have cancelled out).
    pub fn for_relation(&self, relation: &str) -> Option<&CountedSet> {
        self.per_relation
            .get(relation)
            .filter(|set| !set.is_empty())
    }

    /// The Δ⁻ view: tuples with negative net multiplicity, as positive counts.
    pub fn removed(&self, relation: &str) -> CountedSet {
        let mut out = CountedSet::new();
        if let Some(set) = self.per_relation.get(relation) {
            for (t, c) in set.iter() {
                if c < 0 {
                    out.add(t.clone(), -c);
                }
            }
        }
        out
    }

    /// The Δ⁺ view: tuples with positive net multiplicity.
    pub fn added(&self, relation: &str) -> CountedSet {
        let mut out = CountedSet::new();
        if let Some(set) = self.per_relation.get(relation) {
            for (t, c) in set.iter() {
                if c > 0 {
                    out.add(t.clone(), c);
                }
            }
        }
        out
    }

    /// Relations with a nonempty delta.
    pub fn relations(&self) -> impl Iterator<Item = &Arc<str>> {
        self.per_relation
            .iter()
            .filter(|(_, set)| !set.is_empty())
            .map(|(rel, _)| rel)
    }

    /// True when no net change is recorded.
    pub fn is_empty(&self) -> bool {
        self.per_relation.values().all(CountedSet::is_empty)
    }

    /// Total number of distinct changed tuples across relations — the |Δ| the
    /// paper's cost analysis compares to |w|.
    pub fn magnitude(&self) -> usize {
        self.per_relation
            .values()
            .map(CountedSet::distinct_len)
            .sum()
    }

    /// Merges another delta set into this one (composition of world changes:
    /// `w →Δ₁→ w' →Δ₂→ w''` composes to `w →Δ₁+Δ₂→ w''`).
    pub fn merge(&mut self, other: &DeltaSet) {
        for (rel, set) in &other.per_relation {
            if set.is_empty() {
                continue;
            }
            self.entry(rel).merge(set);
        }
    }

    /// Merges a sequence of producer delta sets (e.g. the per-shard delta
    /// queues of a sharded sampler) into one interval delta — the **single
    /// merge point** of the multi-producer pipeline. Equivalent to having
    /// recorded every producer's changes sequentially into one set:
    /// relations are unified by name (two producers touching the same
    /// relation accumulate into one entry, never double-count), ± images
    /// cancel across producers exactly as they do within one, and the
    /// result is compacted once at the end, so all-cancelled relations are
    /// invisible to every reader *and* absent from [`DeltaSet::into_parts`].
    pub fn merge_all<I: IntoIterator<Item = DeltaSet>>(producers: I) -> DeltaSet {
        let mut out = DeltaSet::new();
        for d in producers {
            for (rel, set) in d.per_relation {
                if set.is_empty() {
                    continue;
                }
                out.entry(&rel).merge_owned(set);
            }
        }
        out.compact();
        out
    }

    /// Clears all recorded changes ("refreshing of the tables ... between
    /// deterministic query executions", §4.2).
    pub fn clear(&mut self) {
        self.per_relation.clear();
    }

    /// Consumes the delta, returning per-relation signed sets (compacted:
    /// relations whose changes fully cancelled are absent).
    pub fn into_parts(mut self) -> BTreeMap<Arc<str>, CountedSet> {
        self.compact();
        self.per_relation
    }

    /// Rebuilds a delta set from per-relation signed sets — the inverse of
    /// [`DeltaSet::into_parts`], used when decoding a persisted delta.
    /// Compacts on entry so `from_parts(d.into_parts()) == d` holds even for
    /// inputs carrying empty per-relation sets.
    pub fn from_parts(per_relation: BTreeMap<Arc<str>, CountedSet>) -> Self {
        let mut d = DeltaSet { per_relation };
        d.compact();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel(name: &str) -> Arc<str> {
        Arc::from(name)
    }

    #[test]
    fn update_records_both_images() {
        let mut d = DeltaSet::new();
        let r = rel("TOKEN");
        d.record_update(&r, tuple![1i64, "O"], tuple![1i64, "B-PER"]);
        assert_eq!(d.removed("TOKEN").sorted_support(), vec![tuple![1i64, "O"]]);
        assert_eq!(
            d.added("TOKEN").sorted_support(),
            vec![tuple![1i64, "B-PER"]]
        );
        assert_eq!(d.magnitude(), 2);
    }

    #[test]
    fn restoring_original_value_cancels() {
        let mut d = DeltaSet::new();
        let r = rel("TOKEN");
        d.record_update(&r, tuple![1i64, "O"], tuple![1i64, "B-PER"]);
        d.record_update(&r, tuple![1i64, "B-PER"], tuple![1i64, "O"]);
        assert!(d.is_empty());
        assert_eq!(d.magnitude(), 0);
    }

    #[test]
    fn chained_updates_compact_to_net_change() {
        let mut d = DeltaSet::new();
        let r = rel("TOKEN");
        d.record_update(&r, tuple![1i64, "O"], tuple![1i64, "B-PER"]);
        d.record_update(&r, tuple![1i64, "B-PER"], tuple![1i64, "B-ORG"]);
        // Net: O removed, B-ORG added; the intermediate B-PER vanished.
        assert_eq!(d.removed("TOKEN").sorted_support(), vec![tuple![1i64, "O"]]);
        assert_eq!(
            d.added("TOKEN").sorted_support(),
            vec![tuple![1i64, "B-ORG"]]
        );
    }

    #[test]
    fn self_update_is_noop() {
        let mut d = DeltaSet::new();
        d.record_update(&rel("T"), tuple![1i64], tuple![1i64]);
        assert!(d.is_empty());
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut d = DeltaSet::new();
        let r = rel("T");
        d.record_insert(&r, tuple![5i64]);
        d.record_delete(&r, tuple![5i64]);
        assert!(d.is_empty());
    }

    #[test]
    fn deltas_are_per_relation() {
        let mut d = DeltaSet::new();
        d.record_insert(&rel("A"), tuple![1i64]);
        d.record_delete(&rel("B"), tuple![2i64]);
        let rels: Vec<_> = d.relations().map(|r| r.to_string()).collect();
        assert_eq!(rels, vec!["A", "B"]);
        assert!(d.added("A").contains(&tuple![1i64]));
        assert!(d.added("B").is_empty());
        assert!(d.removed("B").contains(&tuple![2i64]));
        assert!(d.for_relation("C").is_none());
    }

    #[test]
    fn merge_composes_changes() {
        let mut d1 = DeltaSet::new();
        let r = rel("T");
        d1.record_update(&r, tuple![1i64, "O"], tuple![1i64, "B-PER"]);
        let mut d2 = DeltaSet::new();
        d2.record_update(&r, tuple![1i64, "B-PER"], tuple![1i64, "O"]);
        d1.merge(&d2);
        assert!(d1.is_empty());
    }

    #[test]
    fn duplicate_tuples_accumulate_multiplicity() {
        // Two different rows can carry identical tuple images (no pk in the
        // projected view); multiset counts keep them distinguishable.
        let mut d = DeltaSet::new();
        let r = rel("T");
        d.record_insert(&r, tuple!["x"]);
        d.record_insert(&r, tuple!["x"]);
        assert_eq!(d.added("T").count(&tuple!["x"]), 2);
        d.record_delete(&r, tuple!["x"]);
        assert_eq!(d.added("T").count(&tuple!["x"]), 1);
    }

    #[test]
    fn clear_resets() {
        let mut d = DeltaSet::new();
        d.record_insert(&rel("T"), tuple![1i64]);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn cancelled_relation_is_invisible_before_and_after_compact() {
        let mut d = DeltaSet::new();
        let r = rel("T");
        d.record_insert(&r, tuple![5i64]);
        d.record_delete(&r, tuple![5i64]);
        // All reads treat the cancelled relation as absent even though the
        // empty per-relation entry may still be allocated pre-compaction.
        assert!(d.is_empty());
        assert!(d.for_relation("T").is_none());
        assert_eq!(d.relations().count(), 0);
        assert_eq!(d.magnitude(), 0);
        d.compact();
        assert!(d.is_empty());
        assert!(d.into_parts().is_empty());
    }

    #[test]
    fn from_parts_inverts_into_parts() {
        let mut d = DeltaSet::new();
        d.record_update(&rel("T"), tuple![1i64, "O"], tuple![1i64, "B-PER"]);
        d.record_insert(&rel("U"), tuple![9i64]);
        let rebuilt = DeltaSet::from_parts(d.clone().into_parts());
        assert_eq!(
            rebuilt.added("T").sorted_entries(),
            d.added("T").sorted_entries()
        );
        assert_eq!(
            rebuilt.removed("T").sorted_entries(),
            d.removed("T").sorted_entries()
        );
        assert_eq!(rebuilt.magnitude(), d.magnitude());
        // Empty per-relation entries are compacted away on entry.
        let mut parts = BTreeMap::new();
        parts.insert(rel("E"), CountedSet::new());
        let e = DeltaSet::from_parts(parts);
        assert!(e.is_empty());
        assert_eq!(e.relations().count(), 0);
    }

    #[test]
    fn merge_all_unifies_relations_without_double_counting() {
        // Two producers touching the same relation name (distinct Arc<str>
        // instances on purpose) plus one touching another relation.
        let mut p1 = DeltaSet::new();
        p1.record_update(&rel("TOKEN"), tuple![1i64, "O"], tuple![1i64, "B-PER"]);
        let mut p2 = DeltaSet::new();
        p2.record_update(&rel("TOKEN"), tuple![2i64, "O"], tuple![2i64, "B-ORG"]);
        let mut p3 = DeltaSet::new();
        p3.record_insert(&rel("OTHER"), tuple![9i64]);

        let merged = DeltaSet::merge_all([p1, p2, p3]);
        assert_eq!(merged.relations().count(), 2);
        assert_eq!(merged.added("TOKEN").distinct_len(), 2);
        assert_eq!(merged.removed("TOKEN").distinct_len(), 2);
        assert_eq!(merged.added("TOKEN").count(&tuple![1i64, "B-PER"]), 1);
        assert_eq!(merged.added("OTHER").count(&tuple![9i64]), 1);
        assert_eq!(merged.magnitude(), 5);
    }

    #[test]
    fn merge_all_cancellation_across_producers_compacts_away() {
        // Producer 2 exactly undoes producer 1: the merged interval must be
        // empty AND hold no lingering per-relation entry (compact contract).
        let mut p1 = DeltaSet::new();
        p1.record_update(&rel("T"), tuple![1i64, "O"], tuple![1i64, "B-PER"]);
        let mut p2 = DeltaSet::new();
        p2.record_update(&rel("T"), tuple![1i64, "B-PER"], tuple![1i64, "O"]);
        let merged = DeltaSet::merge_all([p1, p2]);
        assert!(merged.is_empty());
        assert!(merged.for_relation("T").is_none());
        assert!(merged.into_parts().is_empty());
    }

    #[test]
    fn merge_all_of_nothing_is_empty() {
        let merged = DeltaSet::merge_all(std::iter::empty());
        assert!(merged.is_empty());
        let merged = DeltaSet::merge_all([DeltaSet::new(), DeltaSet::new()]);
        assert!(merged.is_empty());
        assert_eq!(merged.relations().count(), 0);
    }

    #[test]
    fn into_parts_compacts() {
        let mut d = DeltaSet::new();
        d.record_insert(&rel("A"), tuple![1i64]);
        d.record_insert(&rel("B"), tuple![2i64]);
        d.record_delete(&rel("B"), tuple![2i64]);
        let parts = d.into_parts();
        assert_eq!(parts.len(), 1);
        assert!(parts.contains_key("A"));
    }
}
