//! Typed scalar values stored in database fields.
//!
//! Every field of every tuple in the single stored possible world (§3 of the
//! paper) holds a [`Value`]. Values must be hashable and totally ordered so
//! they can serve as keys in counted multisets (needed by the view-maintenance
//! evaluator of §4.2) and in group-by maps. Floats are therefore wrapped in
//! [`F64`], which orders by IEEE total ordering and hashes by bit pattern.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A hashable, totally ordered `f64` wrapper.
///
/// Equality and hashing use the raw bit pattern (so `NaN == NaN` and
/// `-0.0 != 0.0`); ordering uses [`f64::total_cmp`]. This is the standard
/// trick for using floating point values as map keys in query processing.
#[derive(Clone, Copy, Debug)]
pub struct F64(pub f64);

impl F64 {
    /// Returns the wrapped primitive.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for F64 {}

impl PartialOrd for F64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl Hash for F64 {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}
impl From<f64> for F64 {
    #[inline]
    fn from(v: f64) -> Self {
        F64(v)
    }
}
impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The type of a column or value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// SQL NULL; only produced by [`Value::Null`].
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Null => "NULL",
            ValueType::Bool => "BOOL",
            ValueType::Int => "INT",
            ValueType::Float => "FLOAT",
            ValueType::Str => "STR",
        };
        f.write_str(s)
    }
}

/// A scalar value stored in a database field.
///
/// Strings use `Arc<str>` so that cloning a tuple — which the sampling
/// evaluators do constantly when moving tuples into Δ⁻/Δ⁺ auxiliary tables —
/// is a reference-count bump rather than a heap copy.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// SQL NULL. Compares less than every non-null value (derive order).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float with total ordering.
    Float(F64),
    /// Shared UTF-8 string.
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value, sharing the allocation.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Builds a float value.
    pub fn float(f: f64) -> Self {
        Value::Float(F64(f))
    }

    /// The runtime type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
        }
    }

    /// True when this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Float accessor (also widens integers).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(f.0),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison: `None` when either side is NULL,
    /// otherwise the ordering. Cross-type numeric comparisons widen to f64;
    /// any other cross-type comparison is `None` (treated as unknown).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.cmp(b)),
            (Int(a), Float(b)) => Some((*a as f64).total_cmp(&b.0)),
            (Float(a), Int(b)) => Some(a.0.total_cmp(&(*b as f64))),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}
impl<'a> From<Cow<'a, str>> for Value {
    fn from(v: Cow<'a, str>) -> Self {
        Value::str(v.into_owned())
    }
}

/// Interner that deduplicates string allocations.
///
/// The TOKEN relation of §5.1 stores millions of strings drawn from a much
/// smaller vocabulary; interning keeps one `Arc<str>` per distinct string so
/// the heap stays proportional to the vocabulary, not the corpus.
#[derive(Default, Debug)]
pub struct Interner {
    map: std::collections::HashMap<Arc<str>, ()>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared `Arc<str>` for `s`, inserting it on first use.
    pub fn intern(&mut self, s: &str) -> Arc<str> {
        if let Some((k, ())) = self.map.get_key_value(s) {
            return Arc::clone(k);
        }
        let arc: Arc<str> = Arc::from(s);
        self.map.insert(Arc::clone(&arc), ());
        arc
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn f64_total_order_and_hash() {
        assert_eq!(F64(1.0), F64(1.0));
        assert_ne!(F64(1.0), F64(2.0));
        assert_eq!(F64(f64::NAN), F64(f64::NAN));
        assert!(F64(1.0) < F64(2.0));
        assert!(F64(-1.0) < F64(0.0));
        assert_eq!(hash_of(&F64(3.5)), hash_of(&F64(3.5)));
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(3).value_type(), ValueType::Int);
        assert_eq!(Value::str("x").value_type(), ValueType::Str);
        assert_eq!(Value::Null.value_type(), ValueType::Null);
        assert_eq!(Value::Bool(true).value_type(), ValueType::Bool);
        assert_eq!(Value::float(1.5).value_type(), ValueType::Float);
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_numeric_widening() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_strings() {
        assert_eq!(
            Value::str("abc").sql_cmp(&Value::str("abd")),
            Some(Ordering::Less)
        );
        // Cross-type string/int is unknown, not an error.
        assert_eq!(Value::str("1").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("hi").as_int(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn interner_shares_allocations() {
        let mut i = Interner::new();
        let a = i.intern("token");
        let b = i.intern("token");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(i.len(), 1);
        let c = i.intern("other");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn display_round_trip_is_readable() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::float(0.5).to_string(), "0.5");
    }

    #[test]
    fn value_ordering_null_first() {
        let mut vals = [Value::Int(1), Value::Null, Value::Int(0)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
    }
}
