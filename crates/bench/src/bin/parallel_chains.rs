//! `parallel_chains` — the §5.4 headline claim, measured through the
//! [`ParallelEngine`]: on the Fig. 7-style workload (Query 2, the
//! person-mention COUNT whose answer histogram is normal-like), how many
//! samples per chain does an N-chain engine need to reach a fixed
//! marginal-error target?
//!
//! The paper: averaging eight evaluators reduces error "by slightly more
//! than a factor of eight" — super-linear, because cross-chain samples are
//! more independent than within-chain ones. The ideal here is
//! `samples_to_target(N) ≈ samples_to_target(1) / N`; what the harness
//! actually records is capped by the 16-sample checkpoint granularity and
//! by the error floor of the finite ground-truth reference, so read the
//! full error-vs-samples curves (where the 1/N variance trend is visible
//! directly) alongside the cruder samples-to-target summary.
//!
//! Emits `BENCH_parallel_chains.json`: the full error-vs-samples trajectory
//! for 1/2/4/8 chains plus the samples-to-target summary, alongside the
//! printed table/CSV.

use fgdb_bench::{
    estimate_ground_truth_multichain, print_csv, print_table, scaled, timed, NerSetup, Report,
};
use fgdb_core::{ner_proposer, squared_error, EngineConfig, MarginalTable, ParallelEngine};
use fgdb_relational::algebra::paper_queries;

fn main() {
    let tokens = scaled(6_000);
    let k = 2_000;
    let s_max = 256; // samples per chain at full budget
    let checkpoint = 16; // samples between convergence checkpoints
    let replica_burn = 10 * k; // dispersal burn (decorrelates chain starts)
    let chain_counts = [1usize, 2, 4, 8];
    println!(
        "parallel_chains: engine error vs chains, Query 2 (fig7 workload), \
         ~{tokens} tuples, k={k}, ≤{s_max} samples/chain"
    );

    let setup = NerSetup::build_soft(tokens, 11);
    let plan = paper_queries::query2("TOKEN");
    let truth_samples = 2_500;
    let (truth, t_truth) =
        timed(|| estimate_ground_truth_multichain(&setup, &plan, 8, truth_samples, k, 90_000));
    println!("ground truth: 8 × {truth_samples} samples ({t_truth:.1}s)");
    let seed_pdb = setup.pdb_burned(4_242, setup.default_burn());

    let mut report = Report::new(
        "parallel_chains",
        &[
            "chains",
            "samples_per_chain",
            "steps_per_chain",
            "sq_error",
            "r_hat",
        ],
    );
    report
        .param("workload", "fig7/query2 person-mention COUNT")
        .param("tokens", tokens)
        .param("k", k)
        .param("s_max", s_max)
        .param("checkpoint_samples", checkpoint)
        .param("replica_burn_steps", replica_burn)
        .param("seed_bases", 3);

    // One checkpoint of a curve: (samples per chain, sq error, max R̂).
    type Point = (usize, f64, f64);

    // Error trajectory per chain count: run `run_rounds(1)` up to the full
    // budget, measuring the merged-marginal error at every checkpoint.
    // Averaged over three RNG stream bases so one lucky/unlucky chain does
    // not bend the curve (the same de-flaking fig5 uses).
    let seed_bases = [1_000u64, 2_000, 3_000];
    let mut curves: Vec<(usize, Vec<Point>)> = Vec::new();
    for &chains in &chain_counts {
        let rounds = s_max / checkpoint;
        let mut curve: Vec<Point> = Vec::new();
        let (_, secs) = timed(|| {
            for &base_seed in &seed_bases {
                let cfg = EngineConfig {
                    chains,
                    thinning: k,
                    checkpoint_samples: checkpoint,
                    r_hat_threshold: 0.0, // gate off: observe the trajectory
                    min_samples: s_max,
                    max_samples: s_max,
                    replica_burn_steps: replica_burn,
                    base_seed,
                };
                let mut engine = ParallelEngine::new(&seed_pdb, plan.clone(), cfg, |_| {
                    ner_proposer(&setup.data, &Default::default())
                })
                .expect("plan validates");
                for round in 0..rounds {
                    engine.run_rounds(1).expect("round");
                    let tables: Vec<MarginalTable> =
                        engine.chain_marginals().into_iter().cloned().collect();
                    let err = squared_error(&MarginalTable::average(&tables), &truth);
                    let r_hat = engine.r_hat_trajectory().last().expect("pushed").r_hat;
                    match curve.get_mut(round) {
                        Some(point) => {
                            point.1 += err / seed_bases.len() as f64;
                            point.2 += r_hat / seed_bases.len() as f64;
                        }
                        None => curve.push((
                            engine.samples_per_chain(),
                            err / seed_bases.len() as f64,
                            r_hat / seed_bases.len() as f64,
                        )),
                    }
                }
            }
        });
        let final_err = curve.last().expect("ran").1;
        println!("  {chains} chain(s): final sq error {final_err:.4} ({secs:.1}s)");
        for (samples, err, r_hat) in &curve {
            report.row(vec![
                chains.to_string(),
                samples.to_string(),
                (replica_burn + (samples - 1) * k).to_string(),
                format!("{err:.6}"),
                format!("{r_hat:.4}"),
            ]);
        }
        curves.push((chains, curve));
    }

    // Samples-to-target: the target is the single chain's full-budget error
    // — what 1 chain achieves with s_max samples, how fast do N chains get
    // there?
    let target = curves[0].1.last().expect("1-chain curve").1;
    report.param("target_sq_error", format!("{target:.6}"));
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut to_target_1 = None;
    for (chains, curve) in &curves {
        let hit = curve.iter().find(|(_, err, _)| *err <= target);
        let (samples, err) = match hit {
            Some((s, e, _)) => (*s, *e),
            None => {
                let last = curve.last().expect("ran");
                (last.0, last.1)
            }
        };
        let steps = replica_burn + (samples - 1) * k;
        let base = *to_target_1.get_or_insert(samples);
        let speedup = base as f64 / samples as f64;
        report.param(format!("samples_to_target_{chains}").as_str(), samples);
        rows.push(vec![
            chains.to_string(),
            samples.to_string(),
            steps.to_string(),
            format!("{err:.4}"),
            format!("{speedup:.2}"),
            if hit.is_some() { "yes" } else { "NO" }.to_string(),
        ]);
        csv.push(format!("{chains},{samples},{steps},{err:.6},{speedup:.2}"));
    }
    print_table(
        "parallel_chains: samples per chain to reach the 1-chain error target",
        &[
            "chains",
            "samples_to_target",
            "steps_per_chain",
            "sq_error",
            "reduction",
            "reached",
        ],
        &rows,
    );
    print_csv(
        "parallel_chains",
        "chains,samples_to_target,steps_per_chain,sq_error,reduction",
        &csv,
    );
    if let Some(path) = report.write_if_configured() {
        println!("\nwrote {}", path.display());
    }
    println!(
        "\nExpected shape (paper §5.4): the ideal is 1/N of the samples per \
         chain; the recorded reduction is coarser (checkpoint grid + \
         ground-truth noise floor) — the 1/N variance trend reads cleanest \
         off the full error-vs-samples curves above."
    );
}
