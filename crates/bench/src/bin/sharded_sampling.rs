//! Sharded intra-world sampling: samples/sec and view staleness as the
//! factor graph is partitioned by document.
//!
//! One seeded MH walker per shard runs against its own contiguous
//! document-block slice of the world (`TokenSeqData::shard_map`); the
//! merged per-shard delta batches drive the store write-back and a
//! materialized Query-1 view, exactly as in production
//! (`ProbabilisticDB::step_sharded`). Walkers use *uniform* relabel
//! proposals: the single-shard baseline random-walks the entire corpus
//! working set (world + token arrays + skip CSR — tens of MB at 10⁶–10⁷
//! tokens, far beyond L2), while each of N shards touches only a 1/N
//! contiguous slice. On a single core the win is cache and TLB locality,
//! not parallelism; on multi-core hardware the scoped-thread walkers add
//! real concurrency on top.
//!
//! The comparison holds *total proposals per interval* fixed across shard
//! counts, so per-interval merge/write-back/view costs are identical and
//! any throughput difference is the sampling itself.
//!
//! Knobs: `FGDB_SHARDS` (comma list, default `1,2,4,8`), `FGDB_SCALE`
//! (multiplies the corpus sizes, default 1.0 → 10⁶ and 4·10⁶ tokens).
//! Emits `BENCH_sharded_sampling.json`.

use fgdb_bench::{print_csv, print_table, scale_factor, scaled, Report};
use fgdb_core::{MarginalTable, NerProposerConfig, ProbabilisticDB};
use fgdb_ie::{Corpus, CorpusConfig, Crf, TokenSeqData};
use fgdb_mcmc::{Proposer, UniformRelabel};
use fgdb_relational::algebra::paper_queries;
use fgdb_relational::MaterializedView;
use std::sync::Arc;
use std::time::Instant;

/// Proposals per thinning interval, summed over all shards — held fixed
/// across shard counts so interval-boundary costs cancel out of the
/// comparison.
const INTERVAL_PROPOSALS: usize = 32_000;
/// Measured intervals per configuration (plus one untimed warm-up).
const INTERVALS: usize = 14;

fn shard_counts() -> Vec<usize> {
    std::env::var("FGDB_SHARDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

struct Setup {
    corpus: Corpus,
    data: Arc<TokenSeqData>,
    pdb: ProbabilisticDB<Arc<Crf>>,
}

fn build(tokens: usize, seed: u64) -> Setup {
    let mut cfg = CorpusConfig::with_total_tokens(tokens);
    cfg.seed = seed;
    let corpus = Corpus::generate(&cfg);
    let data = TokenSeqData::from_corpus(&corpus, 8);
    let mut model = Crf::skip_chain(Arc::clone(&data));
    // Moment-matched weights (no SampleRank pass): sharpness is irrelevant
    // to throughput, and training at 10⁶⁺ tokens would dwarf the bench.
    model.seed_from_truth(&corpus, 2.0);
    let pdb = fgdb_core::build_ner_pdb(
        &corpus,
        Arc::new(model),
        &NerProposerConfig {
            uniform: true,
            ..Default::default()
        },
        seed,
    );
    Setup { corpus, data, pdb }
}

fn main() {
    let sizes: Vec<usize> = [1_000_000usize, 4_000_000]
        .iter()
        .map(|&n| scaled(n))
        .collect();
    let shards_list = shard_counts();
    println!("Sharded intra-world sampling: shards {shards_list:?}, corpus sizes {sizes:?}");
    println!(
        "interval = {INTERVAL_PROPOSALS} proposals (all shards), {INTERVALS} intervals/config"
    );

    let mut report = Report::new(
        "sharded_sampling",
        &[
            "tokens",
            "shards",
            "proposals",
            "elapsed_s",
            "samples_per_sec",
            "speedup_vs_1shard",
            "staleness_ms",
            "accept_rate",
        ],
    );
    report
        .param("scale", scale_factor())
        .param("shards", format!("{shards_list:?}"))
        .param("interval_proposals", INTERVAL_PROPOSALS)
        .param("intervals", INTERVALS)
        .param(
            "cores",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        );

    let plan = paper_queries::query1("TOKEN");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (si, &tokens) in sizes.iter().enumerate() {
        let (mut setup, build_s) = {
            let t0 = Instant::now();
            let s = build(tokens, 0xBEEF + si as u64);
            (s, t0.elapsed().as_secs_f64())
        };
        let n = setup.corpus.num_tokens();
        println!("\n[{n} tokens] built in {build_s:.1}s; burning in…");
        // One uniform sweep of burn-in so every shard configuration starts
        // from comparably stationary acceptance behaviour.
        setup.pdb.step(n).expect("burn-in");

        let mut baseline: Option<f64> = None;
        for &shards in &shards_list {
            let map = Arc::new(setup.data.shard_map(shards).expect("by-document shards"));
            let mut sampler = setup
                .pdb
                .sharded_sampler(
                    Arc::clone(&map),
                    |_, vars| Box::new(UniformRelabel::new(vars.to_vec())) as Box<dyn Proposer>,
                    42,
                )
                .expect("validated shard map");
            let mut view =
                MaterializedView::new(&plan, setup.pdb.database()).expect("query 1 view");
            let mut marginals = MarginalTable::new();
            let k = INTERVAL_PROPOSALS / shards;

            // Warm-up interval: page the shard slices in, untimed.
            let d = setup.pdb.step_sharded(&mut sampler, k).expect("warm-up");
            view.apply_delta(&d);
            let stats0 = sampler.stats();

            let mut staleness = Vec::with_capacity(INTERVALS);
            let t0 = Instant::now();
            for _ in 0..INTERVALS {
                let ti = Instant::now();
                let d = setup.pdb.step_sharded(&mut sampler, k).expect("interval");
                view.apply_delta(&d);
                marginals.record(view.result());
                staleness.push(ti.elapsed().as_secs_f64());
            }
            let elapsed = t0.elapsed().as_secs_f64();
            let stats = sampler.stats();
            let proposals = stats.proposals - stats0.proposals;
            let accepted = stats.accepted - stats0.accepted;
            let sps = proposals as f64 / elapsed;
            let speedup = sps / *baseline.get_or_insert(sps);
            let stale_ms = staleness.iter().sum::<f64>() / staleness.len().max(1) as f64 * 1_000.0;
            let accept = accepted as f64 / proposals.max(1) as f64;

            // Guard against a dead sampler being reported as "fast".
            assert_eq!(marginals.samples() as usize, INTERVALS);
            assert!(
                shards_agree_with_master(&map, &sampler, setup.pdb.world()),
                "shard world diverged from the merged master world"
            );

            println!(
                "  {shards:>2} shards: {sps:>12.0} proposals/s  ({speedup:.2}x)  \
                 staleness {stale_ms:.1} ms  accept {accept:.3}"
            );
            rows.push(vec![
                n.to_string(),
                shards.to_string(),
                proposals.to_string(),
                format!("{elapsed:.3}"),
                format!("{sps:.0}"),
                format!("{speedup:.3}"),
                format!("{stale_ms:.2}"),
                format!("{accept:.4}"),
            ]);
            csv.push(format!(
                "{n},{shards},{proposals},{elapsed:.3},{sps:.0},{speedup:.3},{stale_ms:.2},{accept:.4}"
            ));
            report.row(rows.last().unwrap().clone());
        }
    }

    print_table(
        "Sharded sampling: proposals/sec by shard count",
        &[
            "tokens",
            "shards",
            "proposals",
            "elapsed_s",
            "samples/s",
            "speedup",
            "staleness_ms",
            "accept",
        ],
        &rows,
    );
    print_csv(
        "sharded_sampling",
        "tokens,shards,proposals,elapsed_s,samples_per_sec,speedup_vs_1shard,staleness_ms,accept_rate",
        &csv,
    );
    if let Some(path) = report.write_if_configured() {
        println!("\nreport: {}", path.display());
    }
}

/// Spot check of the correctness invariant the throughput claim rests on:
/// after the merge point, the master world agrees with every shard's world
/// on that shard's own variables (foreign slots in a shard world stay
/// frozen and never enter its acceptance ratios).
fn shards_agree_with_master(
    map: &fgdb_graph::ShardMap,
    sampler: &fgdb_mcmc::ShardedSampler<Arc<Crf>>,
    master: &fgdb_graph::World,
) -> bool {
    for s in 0..map.num_shards() {
        let local = sampler.shard_world(s).assignment();
        let global = master.assignment();
        let vars = map.variables(s);
        // Sample ~64 variables per shard instead of all 10⁶⁺.
        for &v in vars.iter().step_by(vars.len() / 64 + 1) {
            if local[v.0 as usize] != global[v.0 as usize] {
                return false;
            }
        }
    }
    true
}
