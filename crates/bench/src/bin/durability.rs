//! durability — WAL append throughput and crash-recovery time.
//!
//! Mounts a fig8-style TOKEN probabilistic database on the durable store
//! and measures, per fsync policy (`never`, group commit `every=8`,
//! `always`):
//!
//! * **append throughput** — logged thinning intervals per second and WAL
//!   bytes per second, median over repeated runs;
//! * **recovery time** — wall time of `ProbabilisticDB::recover` replaying
//!   the full WAL, median over repeated runs;
//! * **recovery parity** — after every recovery the four paper queries are
//!   executed on the recovered database and on an undamaged in-memory twin
//!   driven by the same seeds; any mismatch aborts the run (this is the CI
//!   recovery-smoke assertion).
//!
//! Scales with `FGDB_SCALE` (default 1.0). Emits `BENCH_durability.json`.
//!
//! ```sh
//! cargo run --release -p fgdb-bench --bin durability
//! ```

use fgdb_bench::report::Report;
use fgdb_bench::{print_csv, print_table, scaled, timed};
use fgdb_core::fixtures::{biased_token_pdb, relabel_proposer};
use fgdb_core::{DurabilityConfig, FsyncPolicy, ProbabilisticDB};
use fgdb_graph::FactorGraph;
use fgdb_mcmc::UniformRelabel;
use fgdb_relational::parser::paper_sql;
use std::sync::Arc;

const DOC_SIZE: usize = 24;

/// The shared fig8-style TOKEN fixture (same workload as the
/// crash-recovery acceptance suite in `crates/core/tests`, so the CI
/// recovery smoke and that suite cannot drift apart).
fn build_pdb(n_tokens: usize, seed: u64) -> ProbabilisticDB<Arc<FactorGraph>> {
    biased_token_pdb(n_tokens, DOC_SIZE, seed)
}

fn proposer(n_tokens: usize) -> Box<UniformRelabel> {
    relabel_proposer(n_tokens)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    if xs.is_empty() {
        return f64::NAN;
    }
    xs[xs.len() / 2]
}

fn query_fingerprint(pdb: &ProbabilisticDB<Arc<FactorGraph>>) -> Vec<String> {
    [
        paper_sql::query1("TOKEN"),
        paper_sql::query2("TOKEN"),
        paper_sql::query3("TOKEN"),
        paper_sql::query4("TOKEN"),
    ]
    .iter()
    .map(|sql| format!("{:?}", pdb.query(sql).unwrap().rows.sorted_entries()))
    .collect()
}

fn main() {
    let n_tokens = scaled(2_000);
    let intervals = scaled(200);
    let k = 50; // walk steps per interval
    let runs = std::env::var("FGDB_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5usize)
        .max(1);

    let policies: [(&str, FsyncPolicy); 3] = [
        ("never", FsyncPolicy::Never),
        ("every=8", FsyncPolicy::EveryN(8)),
        ("always", FsyncPolicy::Always),
    ];

    let mut report = Report::new(
        "durability",
        &[
            "fsync",
            "intervals",
            "median_append_s",
            "intervals_per_s",
            "wal_mb_per_s",
            "median_recover_s",
            "replayed",
        ],
    );
    report
        .param("n_tokens", n_tokens)
        .param("intervals", intervals)
        .param("k", k)
        .param("runs", runs);

    let mut rows = Vec::new();
    for (name, fsync) in policies {
        // `always` pays a real fsync per interval; cap its interval count
        // so the bench stays in budget at high scales.
        let intervals = if matches!(fsync, FsyncPolicy::Always) {
            intervals.min(scaled(50).max(8))
        } else {
            intervals
        };
        let cfg = DurabilityConfig { fsync };
        let mut append_times = Vec::new();
        let mut recover_times = Vec::new();
        let mut wal_bytes = 0u64;
        let mut replayed = 0u64;
        for run in 0..runs {
            let seed = 42 + run as u64;
            let dir = fgdb_durability::test_dir("bench-durability");

            // Append phase: `intervals` logged thinning intervals.
            let mut durable = build_pdb(n_tokens, seed)
                .open_durable(&dir, cfg)
                .expect("fresh bench dir");
            let (_, append_s) = timed(|| {
                for _ in 0..intervals {
                    durable.step(k).expect("logged interval");
                }
                durable.sync().expect("final sync");
            });
            append_times.push(append_s);
            wal_bytes = std::fs::metadata(dir.join("wal.fgdb"))
                .map(|m| m.len())
                .unwrap_or(0);
            drop(durable);

            // The undamaged twin for the parity check.
            let mut twin = build_pdb(n_tokens, seed);
            for _ in 0..intervals {
                twin.step(k).expect("twin interval");
            }

            // Recovery phase: full WAL replay.
            let model = Arc::clone(twin.model());
            let (recovered, recover_s) = timed(|| {
                ProbabilisticDB::recover(&dir, model, proposer(n_tokens), cfg)
                    .expect("recovery succeeds")
            });
            recover_times.push(recover_s);
            replayed = recovered.1.replayed;

            // Parity: recovered answers ≡ twin answers on the four paper
            // queries, and the worlds agree exactly.
            assert_eq!(
                query_fingerprint(recovered.0.pdb()),
                query_fingerprint(&twin),
                "recovery parity violated (policy {name}, run {run})"
            );
            assert_eq!(
                recovered.0.world().assignment(),
                twin.world().assignment(),
                "recovered world diverged (policy {name}, run {run})"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
        let append_s = median(append_times);
        let recover_s = median(recover_times);
        rows.push(vec![
            name.to_string(),
            intervals.to_string(),
            format!("{append_s:.4}"),
            format!("{:.1}", intervals as f64 / append_s),
            format!("{:.2}", wal_bytes as f64 / append_s / 1e6),
            format!("{recover_s:.4}"),
            replayed.to_string(),
        ]);
    }

    for r in &rows {
        report.row(r.clone());
    }
    print_table(
        "durability: append throughput + recovery time (parity-checked)",
        &[
            "fsync",
            "intervals",
            "append s (med)",
            "intervals/s",
            "WAL MB/s",
            "recover s (med)",
            "replayed",
        ],
        &rows,
    );
    print_csv(
        "durability",
        "fsync,intervals,median_append_s,intervals_per_s,wal_mb_per_s,median_recover_s,replayed",
        &rows.iter().map(|r| r.join(",")).collect::<Vec<_>>(),
    );
    report.write_if_configured();
    println!("\nrecovery parity: OK (all policies, all runs)");
}
