//! E7 — Figure 9 / Appendix 9.2: MH acceptance-ratio locality.
//!
//! "For this model and proposal distribution, the number of factors we ever
//! need to evaluate is constant with respect to the number of tokens in the
//! database." Sweeps the database size over two orders of magnitude and
//! reports (a) factors evaluated per proposal and (b) wall-time per MH
//! walk-step — both should stay flat.

use fgdb_bench::{print_csv, print_table, scaled, timed, NerSetup, Report};

fn main() {
    let sizes: Vec<usize> = [2_000usize, 10_000, 50_000, 200_000]
        .iter()
        .map(|&n| scaled(n))
        .collect();
    let steps = 200_000;
    println!("E7 / Fig 9: per-step factor evaluations vs database size ({steps} steps each)");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let setup = NerSetup::build(n, 300 + i as u64);
        let n_actual = setup.corpus.num_tokens();
        let mut pdb = setup.pdb(9);
        let (_, secs) = timed(|| pdb.step(steps).expect("walk"));
        let stats = pdb.kernel_stats();
        let factors_per_proposal = stats.eval.factors_evaluated as f64 / stats.proposals as f64;
        let ns_per_step = secs * 1e9 / steps as f64;
        rows.push(vec![
            n_actual.to_string(),
            format!("{factors_per_proposal:.2}"),
            format!("{:.1}", ns_per_step),
            format!("{:.3}", stats.acceptance_rate()),
        ]);
        csv.push(format!(
            "{n_actual},{factors_per_proposal:.4},{ns_per_step:.1},{:.4}",
            stats.acceptance_rate()
        ));
        println!(
            "  {n_actual} tuples: {factors_per_proposal:.2} factors/proposal, \
             {ns_per_step:.0} ns/step"
        );
    }
    print_table(
        "Fig 9: MH walk-step locality",
        &["tuples", "factors/proposal", "ns/step", "accept_rate"],
        &rows,
    );
    print_csv(
        "fig9",
        "tuples,factors_per_proposal,ns_per_step,accept_rate",
        &csv,
    );
    let mut report = Report::new(
        "fig9",
        &[
            "tuples",
            "factors_per_proposal",
            "ns_per_step",
            "accept_rate",
        ],
    );
    report
        .param("steps", steps)
        .param("scale", fgdb_bench::scale_factor());
    for row in &rows {
        report.row(row.clone());
    }
    if let Some(path) = report.write_if_configured() {
        println!("json report: {}", path.display());
    }
    println!(
        "\nExpected shape (paper): both factors/proposal and ns/step flat in \
         the number of tuples — the walk-step is O(1) in database size."
    );
}
