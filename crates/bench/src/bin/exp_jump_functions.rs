//! E11 — §4.1 / §6 future work, implemented: better jump functions.
//!
//! The paper: "investigating jump functions that better explore the space of
//! possible worlds appears to be an extremely fruitful venture" and "a query
//! might target an isolated subset of the database, then the proposal
//! distribution only has to sample this subset".
//!
//! Compares three proposal distributions on Query 4 (highly selective: only
//! documents containing "Boston" can contribute answer tuples):
//!
//! * **uniform** — §5.1's baseline, proposals spread over every token;
//! * **targeted** — 90 % of proposals confined to Boston-containing
//!   documents (derived automatically from the query constant), 10 %
//!   background for ergodicity;
//! * **gibbs** — full-conditional resampling of uniformly chosen tokens.
//!
//! Metric: squared error of Query 4 marginals vs a long-run reference,
//! after equal numbers of proposals.

use fgdb_bench::{
    estimate_ground_truth, loss_against, print_csv, print_table, scaled, NerSetup, Report,
};
use fgdb_core::{ner_proposer, FieldBinding, NerProposerConfig, ProbabilisticDB, QueryEvaluator};
use fgdb_ie::Crf;
use fgdb_mcmc::{document_closure, GibbsRelabel, Proposer, TargetedProposer};
use fgdb_relational::algebra::paper_queries;
use fgdb_relational::Value;
use std::sync::Arc;

/// Builds a PDB with an arbitrary proposer (mirrors `build_ner_pdb`).
fn pdb_with(setup: &NerSetup, proposer: Box<dyn Proposer>, seed: u64) -> ProbabilisticDB<Arc<Crf>> {
    let db = setup.corpus.to_database("TOKEN");
    let rel = db.relation("TOKEN").expect("fresh");
    let rows: Vec<_> = (0..setup.corpus.num_tokens())
        .map(|t| rel.find_by_pk(&Value::Int(t as i64)).expect("token row"))
        .collect();
    let binding = FieldBinding::new(&db, "TOKEN", "label", rows).expect("label column");
    let world = setup.model.new_world();
    ProbabilisticDB::new(db, Arc::clone(&setup.model), proposer, world, binding, seed)
        .expect("consistent init")
}

fn main() {
    let tokens = scaled(20_000);
    let k = 2_000;
    let samples = 150;
    println!("E11: jump functions on Query 4, ~{tokens} tuples, {samples} samples, k={k}");

    let setup = NerSetup::build(tokens, 61);
    let plan = paper_queries::query4("TOKEN");
    let truth = estimate_ground_truth(&setup, &plan, 4_000, k, 7);

    // Variables of documents containing the query's anchor string.
    let anchors: Vec<usize> = setup
        .corpus
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| &*t.string == "Boston")
        .map(|(i, _)| i)
        .collect();
    let target = document_closure(setup.data.doc_ranges(), anchors.iter().copied());
    println!(
        "target set: {} of {} variables ({} Boston anchors)",
        target.len(),
        setup.corpus.num_tokens(),
        anchors.len()
    );
    let all = setup.model.variables();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for name in ["uniform", "targeted", "gibbs"] {
        let proposer: Box<dyn Proposer> = match name {
            "uniform" => ner_proposer(
                &setup.data,
                &NerProposerConfig {
                    uniform: true,
                    ..Default::default()
                },
            ),
            "targeted" => Box::new(TargetedProposer::new(target.clone(), all.clone(), 0.1)),
            _ => Box::new(GibbsRelabel::new(Arc::clone(&setup.model), all.clone())),
        };
        let mut pdb = pdb_with(&setup, proposer, 55);
        // Equal burn-in in proposals.
        pdb.step(setup.corpus.num_tokens() * 5).expect("burn");
        let mut eval = QueryEvaluator::materialized(plan.clone(), &pdb, k).expect("plan");
        let t0 = std::time::Instant::now();
        eval.run(&mut pdb, samples).expect("run");
        let secs = t0.elapsed().as_secs_f64();
        let loss = loss_against(eval.marginals(), &truth);
        let accept = pdb.kernel_stats().acceptance_rate();
        rows.push(vec![
            name.to_string(),
            format!("{loss:.4}"),
            format!("{secs:.2}"),
            format!("{accept:.3}"),
        ]);
        csv.push(format!("{name},{loss:.6},{secs:.4},{accept:.4}"));
        println!("  {name:>9}: loss {loss:.4} in {secs:.2}s (accept {accept:.3})");
    }
    print_table(
        "Query 4 squared error after equal proposal budgets",
        &["proposer", "sq_error", "seconds", "accept_rate"],
        &rows,
    );
    print_csv(
        "jump_functions",
        "proposer,sq_error,seconds,accept_rate",
        &csv,
    );
    let mut report = Report::new(
        "jump_functions",
        &["proposer", "sq_error", "seconds", "accept_rate"],
    );
    report
        .param("tokens", tokens)
        .param("samples", samples)
        .param("k", k);
    for row in &rows {
        report.row(row.clone());
    }
    if let Some(path) = report.write_if_configured() {
        println!("json report: {}", path.display());
    }
    println!(
        "\nExpected shape: the targeted proposer spends its budget where the \
         query can observe it and converges fastest on selective queries; \
         Gibbs never rejects but pays |DOM| scorings per proposal."
    );
}
