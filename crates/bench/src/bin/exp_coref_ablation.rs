//! E9 — §3.4 ablation: split-merge vs single-mention proposals for entity
//! resolution.
//!
//! The paper motivates the split-merge proposer as a constraint-preserving
//! block move. This harness runs both proposers on the same coreference
//! instance and reports (a) squared error of sampled pair-probabilities
//! against exact partition enumeration on a small instance, and (b) pairwise
//! F1 over steps on a larger one — showing the block proposer mixes faster
//! on clustered state spaces.

use fgdb_bench::{print_csv, print_table, scaled, timed};
use fgdb_graph::VariableId;
use fgdb_ie::{
    exact_pair_probabilities, pairwise_scores, CorefModel, MentionData, MentionMoveProposer,
    SplitMergeProposer,
};
use fgdb_mcmc::{DynRng, MetropolisHastings, Proposer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn pair_error(
    data: &Arc<MentionData>,
    use_split_merge: bool,
    steps: usize,
    seed: u64,
    exact: &[f64],
) -> f64 {
    let n = data.num_mentions();
    let model = CorefModel::new(Arc::clone(data));
    let mut world = model.singleton_world();
    let proposer: Box<dyn Proposer> = if use_split_merge {
        Box::new(SplitMergeProposer::new(n))
    } else {
        Box::new(MentionMoveProposer::new(n))
    };
    let mut kernel = MetropolisHastings::new(&model, proposer);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rng = DynRng::from(&mut rng);
    let mut together = vec![0u64; n * n];
    for _ in 0..steps {
        kernel.step(&mut world, &mut rng);
        for i in 0..n {
            for j in (i + 1)..n {
                if world.get(VariableId(i as u32)) == world.get(VariableId(j as u32)) {
                    together[i * n + j] += 1;
                }
            }
        }
    }
    let mut err = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let est = together[i * n + j] as f64 / steps as f64;
            err += (est - exact[i * n + j]).powi(2);
        }
    }
    err
}

fn main() {
    println!("E9: split-merge vs mention-move proposers (entity resolution)");

    // (a) Convergence to exact pair probabilities on a 6-mention instance.
    let small = MentionData::generate(2, 3, 0.9, 0.9, 0.4, 17);
    let exact = exact_pair_probabilities(&small);
    let budgets = [1_000usize, 5_000, 25_000, 100_000];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &steps in &budgets {
        let e_sm = pair_error(&small, true, steps, 3, &exact);
        let e_mm = pair_error(&small, false, steps, 3, &exact);
        rows.push(vec![
            steps.to_string(),
            format!("{e_sm:.5}"),
            format!("{e_mm:.5}"),
        ]);
        csv.push(format!("{steps},{e_sm:.6},{e_mm:.6}"));
    }
    print_table(
        "pair-probability squared error vs exact (6 mentions)",
        &["steps", "split-merge", "mention-move"],
        &rows,
    );
    print_csv(
        "coref_small",
        "steps,split_merge_err,mention_move_err",
        &csv,
    );

    // (b) Steps and accepted moves to assemble large clusters. Mention-move
    // must build each k-mention cluster from ≥ k−1 accepted single moves;
    // split-merge assembles whole clusters in O(log k) merges.
    let entities = scaled(5);
    let per_entity = 20;
    let data = MentionData::generate(entities, per_entity, 2.0, 2.0, 0.8, 29);
    let n = data.num_mentions();
    println!(
        "\nlarger instance: {n} mentions, {entities} entities × {per_entity} \
         mentions each, from singleton initialization"
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for use_sm in [true, false] {
        let model = CorefModel::new(Arc::clone(&data));
        let mut world = model.singleton_world();
        let proposer: Box<dyn Proposer> = if use_sm {
            Box::new(SplitMergeProposer::new(n))
        } else {
            Box::new(MentionMoveProposer::new(n))
        };
        let mut kernel = MetropolisHastings::new(&model, proposer);
        let mut rng = StdRng::seed_from_u64(41);
        let max_steps = 400_000usize;
        let ((steps_to_target, final_f1), secs) = timed(|| {
            let mut rng = DynRng::from(&mut rng);
            let mut reached = None;
            let mut step = 0usize;
            while step < max_steps {
                for _ in 0..500 {
                    kernel.step(&mut world, &mut rng);
                }
                step += 500;
                let f1 = pairwise_scores(&world, &data).f1;
                if f1 >= 0.95 && reached.is_none() {
                    reached = Some(step);
                    break;
                }
            }
            (reached, pairwise_scores(&world, &data).f1)
        });
        let name = if use_sm {
            "split-merge"
        } else {
            "mention-move"
        };
        let accepted = kernel.stats().accepted;
        let steps_str = steps_to_target
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!(">{max_steps}"));
        println!(
            "  {name}: F1≥0.95 after {steps_str} steps ({accepted} accepted \
             moves, {secs:.2}s); final F1 {final_f1:.3}"
        );
        rows.push(vec![
            name.to_string(),
            steps_str.clone(),
            accepted.to_string(),
            format!("{final_f1:.3}"),
        ]);
        csv.push(format!("{name},{steps_str},{accepted},{final_f1:.4}"));
    }
    print_table(
        "steps to F1 ≥ 0.95 from singletons",
        &["proposer", "steps", "accepted moves", "final F1"],
        &rows,
    );
    print_csv(
        "coref_large",
        "proposer,steps_to_f1_95,accepted,final_f1",
        &csv,
    );
    println!(
        "\nExpected shape: both proposers are valid MH kernels and converge \
         to the same posterior; the block split-merge proposer needs far \
         fewer accepted moves to assemble large clusters."
    );
}
