//! E5 — Figure 7 (Appendix 9.1): the distribution of Query 2's answer.
//!
//! A long MCMC run collecting the person-mention COUNT every k steps. The
//! paper observes the mass "appears to be normally distributed" and is
//! concentrated around a small subset of values — the property that lets
//! MCMC converge quickly on aggregate queries.

use fgdb_bench::{print_csv, scaled, NerSetup};
use fgdb_core::{QueryEvaluator, ValueDistribution};
use fgdb_relational::algebra::paper_queries;

fn main() {
    let tokens = scaled(30_000);
    let k = 2_000;
    let samples = 2_000;
    println!("E5 / Fig 7: Query 2 answer histogram, ~{tokens} tuples, {samples} samples");

    let setup = NerSetup::build(tokens, 33);
    let plan = paper_queries::query2("TOKEN");
    let mut pdb = setup.pdb_burned(77, setup.default_burn());
    let mut eval = QueryEvaluator::materialized(plan, &pdb, k).expect("plan");
    eval.run(&mut pdb, samples).expect("histogram run");

    let dist = ValueDistribution::from_table(eval.marginals());
    let mean = dist.mean();
    let std = dist.variance().sqrt();
    println!(
        "mean {mean:.1}, std {std:.2}, mode {}",
        dist.mode().map(|t| t.to_string()).unwrap_or_default()
    );

    // Concentration check: the ±2σ window should hold ~95% of the mass if
    // the distribution is normal-like.
    let within: f64 = dist
        .entries()
        .iter()
        .filter(|(t, _)| {
            t.get(0)
                .as_float()
                .is_some_and(|v| (v - mean).abs() <= 2.0 * std)
        })
        .map(|(_, p)| p)
        .sum();
    println!("mass within ±2σ: {:.1}% (normal ⇒ ~95%)", within * 100.0);

    let peak = dist.entries().iter().map(|(_, p)| *p).fold(0.0, f64::max);
    println!("\ncount  probability");
    for (t, p) in dist.entries() {
        if *p < peak / 20.0 {
            continue;
        }
        let bar = "#".repeat((p / peak * 50.0).round() as usize);
        println!("{t:>6} {p:6.4} {bar}");
    }

    let rows: Vec<String> = dist
        .entries()
        .iter()
        .map(|(t, p)| format!("{t},{p:.6}"))
        .collect();
    print_csv("fig7", "count,probability", &rows);
    println!(
        "\nExpected shape (paper): approximately normal, highly peaked around \
         the center — the concentration of measure MCMC exploits."
    );
}
