//! planner_opt — naive vs optimized plan execution on the fig8 join
//! workload.
//!
//! The SQL frontend lowers Query 4 ("person strings co-occurring with an
//! org-sense Boston") to its literal shape: a TOKEN × TOKEN cross product
//! under one conjunction. This harness measures what the cost-based planner
//! buys over executing that naive plan verbatim: predicate pushdown,
//! product→hash-join rewrite, and join ordering, on the same synthetic
//! TOKEN relation the fig8 experiment uses. Queries 1–3 ride along to show
//! the optimizer is a no-loss pass on plans that are already tight.
//!
//! Reported per query and variant: executor work counters (tuples scanned,
//! rows processed, intermediate tuples constructed) and median wall time
//! over `FGDB_BENCH_SAMPLES` runs (default 15). Emits
//! `BENCH_planner_opt.json`.
//!
//! ```sh
//! cargo run --release -p fgdb-bench --bin planner_opt
//! ```

use fgdb_bench::report::Report;
use fgdb_bench::{print_csv, print_table, scaled};
use fgdb_relational::parser::{paper_sql, parse_plan};
use fgdb_relational::planner::{optimize_with_report, PlannerReport};
use fgdb_relational::{execute, Database, ExecStats, Plan, Schema, Tuple, Value, ValueType};
use std::time::Instant;

const LABELS: [&str; 4] = ["O", "B-PER", "B-ORG", "B-LOC"];

/// The fig8-style TOKEN world: periodic labels, a Zipf-ish vocabulary, and
/// a sprinkling of ambiguous "Boston" mentions.
fn build_token_db(n: usize) -> Database {
    let schema = Schema::from_pairs(&[
        ("tok_id", ValueType::Int),
        ("doc_id", ValueType::Int),
        ("string", ValueType::Str),
        ("label", ValueType::Str),
        ("truth", ValueType::Str),
    ])
    .unwrap()
    .with_primary_key("tok_id")
    .unwrap();
    let mut db = Database::new();
    db.create_relation("TOKEN", schema).unwrap();
    let rel = db.relation_mut("TOKEN").unwrap();
    for i in 0..n {
        let label = LABELS[i % 4];
        let string = if i % 97 == 0 {
            "Boston".to_string()
        } else {
            format!("w{}", i % 500)
        };
        rel.insert(Tuple::new(vec![
            Value::Int(i as i64),
            // 48-token documents: the 4-periodic labels balance exactly, so
            // Query 3 (B-PER count = B-ORG count) has a non-empty answer.
            Value::Int((i / 48) as i64),
            Value::str(string),
            Value::str(label),
            Value::str(label),
        ]))
        .unwrap();
    }
    db
}

fn samples() -> usize {
    std::env::var("FGDB_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(15)
        .max(1)
}

/// Median wall-clock milliseconds and the (identical-per-run) exec stats.
fn measure(plan: &Plan, db: &Database, reps: usize) -> (f64, ExecStats, usize) {
    let mut times: Vec<f64> = Vec::with_capacity(reps);
    let mut stats = ExecStats::default();
    let mut answer_rows = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (res, s) = execute(plan, db).expect("valid plan");
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        stats = s;
        answer_rows = res.rows.distinct_len();
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], stats, answer_rows)
}

fn main() {
    // The naive Query 4 plan materializes the full TOKEN × TOKEN product —
    // quadratic in the relation. 1k tokens (1M product pairs) keeps the
    // naive baseline measurable in seconds; FGDB_SCALE raises it (the
    // optimized plan would happily run at fig8's 30k, the baseline not).
    let tokens = scaled(1_000);
    let reps = samples();
    let db = build_token_db(tokens);
    println!(
        "planner_opt: naive vs optimized plans, {tokens} TOKEN tuples, {reps} runs per variant\n"
    );

    let queries = [
        ("q1", paper_sql::query1("TOKEN")),
        ("q2", paper_sql::query2("TOKEN")),
        ("q3", paper_sql::query3("TOKEN")),
        ("q4_fig8_join", paper_sql::query4("TOKEN")),
    ];

    let mut report = Report::new(
        "planner_opt",
        &[
            "query",
            "variant",
            "tuples_scanned",
            "rows_processed",
            "intermediate_tuples",
            "median_ms",
            "answer_rows",
        ],
    );
    report
        .param("tokens", tokens)
        .param("runs_per_variant", reps);

    let mut table_rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (name, sql) in &queries {
        let naive = parse_plan(sql).expect("paper SQL parses");
        let (opt, rewrites): (Plan, PlannerReport) =
            optimize_with_report(&naive, &db).expect("paper SQL optimizes");
        let (naive_ms, naive_stats, naive_rows) = measure(&naive, &db, reps);
        let (opt_ms, opt_stats, opt_rows) = measure(&opt, &db, reps);
        assert_eq!(naive_rows, opt_rows, "optimizer changed the answer");
        assert!(
            opt_stats.intermediate_tuples <= naive_stats.intermediate_tuples,
            "optimizer increased intermediate tuples on {name}"
        );
        println!("{name}: {sql}");
        println!("  naive:     {naive}");
        println!("  optimized: {opt}   [{rewrites}]");
        for (variant, ms, stats, rows) in [
            ("naive", naive_ms, naive_stats, naive_rows),
            ("optimized", opt_ms, opt_stats, opt_rows),
        ] {
            let cells = vec![
                (*name).to_string(),
                variant.to_string(),
                stats.tuples_scanned.to_string(),
                stats.rows_processed.to_string(),
                stats.intermediate_tuples.to_string(),
                format!("{ms:.3}"),
                rows.to_string(),
            ];
            csv_rows.push(cells.join(","));
            report.row(cells.clone());
            table_rows.push(cells);
        }
        let dx = naive_stats.intermediate_tuples.max(1) as f64
            / opt_stats.intermediate_tuples.max(1) as f64;
        println!(
            "  intermediate tuples {} → {} ({dx:.1}×), median {naive_ms:.2} ms → {opt_ms:.2} ms\n",
            naive_stats.intermediate_tuples, opt_stats.intermediate_tuples
        );
    }

    print_table(
        "planner_opt: naive vs optimized executor work",
        &[
            "query",
            "variant",
            "scanned",
            "rows",
            "intermediate",
            "median_ms",
            "answers",
        ],
        &table_rows,
    );
    print_csv(
        "planner_opt",
        "query,variant,tuples_scanned,rows_processed,intermediate_tuples,median_ms,answer_rows",
        &csv_rows,
    );
    if let Some(path) = report.write_if_configured() {
        println!("\nwrote {}", path.display());
    }
}
