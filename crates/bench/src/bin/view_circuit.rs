//! Circuit-vs-legacy view maintenance, plus recursive-closure curves.
//!
//! Two experiments back the Z-set circuit backend's two claims:
//!
//! 1. **Parity** — on the paper's four queries the circuit applies the same
//!    MCMC interval deltas no slower than the legacy operator tree (CI
//!    enforces a ≤ 25% + fixed-slack bound; the two backends implement the
//!    same delta algebra, so a real gap is a regression, not noise).
//! 2. **Δ-proportionality** — incrementally maintaining a recursive
//!    transitive closure costs Θ(|Δ| · affected paths) per batch while full
//!    re-execution pays for the whole closure every time (Eq. 6's argument,
//!    extended to fixpoints by semi-naive evaluation).
//!
//! Emits `BENCH_view_circuit.json` to the workspace root (redirect or
//! disable via `FGDB_JSON_OUT`). Exits nonzero when the parity bound fails.

use fgdb_bench::{print_table, scaled, Report};
use fgdb_relational::algebra::paper_queries;
use fgdb_relational::parser::parse_plan;
use fgdb_relational::planner::optimize;
use fgdb_relational::{
    execute, Database, DeltaSet, MaterializedView, Plan, Schema, Tuple, Value, ValueType,
    ViewBackend,
};
use std::sync::Arc;
use std::time::Instant;

const LABELS: [&str; 4] = ["O", "B-PER", "B-ORG", "B-LOC"];

/// Allow this much absolute slack (µs/interval) on top of the 25% relative
/// parity bound, so sub-microsecond queries don't fail on timer noise.
const PARITY_SLACK_US: f64 = 2.0;

fn build_token_db(n: usize) -> Database {
    let schema = Schema::from_pairs(&[
        ("tok_id", ValueType::Int),
        ("doc_id", ValueType::Int),
        ("string", ValueType::Str),
        ("label", ValueType::Str),
        ("truth", ValueType::Str),
    ])
    .unwrap()
    .with_primary_key("tok_id")
    .unwrap();
    let mut db = Database::new();
    db.create_relation("TOKEN", schema).unwrap();
    let rel = db.relation_mut("TOKEN").unwrap();
    for i in 0..n {
        let label = LABELS[i % 4];
        let string = if i % 97 == 0 {
            "Boston".to_string()
        } else {
            format!("w{}", i % 500)
        };
        rel.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Int((i / 50) as i64),
            Value::str(string),
            Value::str(label),
            Value::str(label),
        ]))
        .unwrap();
    }
    db
}

/// One MCMC-shaped interval delta: `delta_size` relabels, coalesced.
fn make_delta(db: &mut Database, delta_size: usize, tick: &mut usize) -> DeltaSet {
    let mut deltas = DeltaSet::new();
    let name: Arc<str> = Arc::from("TOKEN");
    let rel = db.relation_mut("TOKEN").unwrap();
    let n = rel.len();
    for j in 0..delta_size {
        *tick += 1;
        let rid = rel
            .find_by_pk(&Value::Int(((*tick * 31 + j) % n) as i64))
            .unwrap();
        let new_label = LABELS[(*tick + j) % 4];
        let (old, new) = rel.update_field(rid, 3, Value::str(new_label)).unwrap();
        deltas.record_update(&name, old, new);
    }
    deltas
}

/// Times applying `deltas` in order on a fresh view of `backend`.
fn time_apply(plan: &Plan, db: &Database, deltas: &[DeltaSet], backend: ViewBackend) -> f64 {
    let mut view = MaterializedView::with_backend(plan, db, backend).expect("compile view");
    let t = Instant::now();
    for d in deltas {
        std::hint::black_box(view.apply_delta(d));
    }
    assert!(
        view.error().is_none(),
        "maintenance errored: {:?}",
        view.error()
    );
    t.elapsed().as_secs_f64() * 1e6 / deltas.len() as f64
}

/// `chains` disjoint chains of `len` nodes each: LINK i→i+1 within a chain.
/// Node ids leave headroom so chains can grow during the experiment.
fn chain_db(chains: usize, len: usize, headroom: usize) -> Database {
    let schema = Schema::from_pairs(&[("src", ValueType::Int), ("dst", ValueType::Int)]).unwrap();
    let mut db = Database::new();
    db.create_relation("LINK", schema).unwrap();
    let stride = (len + headroom) as i64;
    let rel = db.relation_mut("LINK").unwrap();
    for c in 0..chains as i64 {
        for i in 0..(len as i64 - 1) {
            rel.insert(Tuple::new(vec![
                Value::Int(c * stride + i),
                Value::Int(c * stride + i + 1),
            ]))
            .unwrap();
        }
    }
    db
}

fn main() {
    let mut report = Report::new(
        "view_circuit",
        &[
            "section",
            "name",
            "delta_size",
            "legacy_us_per_batch",
            "circuit_us_per_batch",
            "reexec_us_per_batch",
        ],
    );

    // ---------------------------------------------- parity: paper queries --
    let n = scaled(20_000);
    let rounds = scaled(300).max(20);
    let delta_size = 16;
    report
        .param("db_rows", n)
        .param("rounds", rounds)
        .param("delta_size", delta_size)
        .param("parity_bound", "1.25x + 2us");

    let mut table = Vec::new();
    let mut violations = Vec::new();
    for (qname, plan) in [
        ("query1_select_project", paper_queries::query1("TOKEN")),
        ("query2_distinct", paper_queries::query2("TOKEN")),
        ("query3_grouped_counts", paper_queries::query3("TOKEN")),
        ("query4_self_join", paper_queries::query4("TOKEN")),
    ] {
        // Pre-produce the delta stream once, then replay it against a fresh
        // copy of the same (deterministic) initial database per backend.
        let mut db = build_token_db(n);
        let mut tick = 0usize;
        let deltas: Vec<DeltaSet> = (0..rounds)
            .map(|_| make_delta(&mut db, delta_size, &mut tick))
            .collect();
        let db0 = build_token_db(n);
        // Warm-up pass (page in the plan state), then timed passes.
        let _ = time_apply(
            &plan,
            &db0,
            &deltas[..deltas.len().min(8)],
            ViewBackend::Circuit,
        );
        let legacy_us = time_apply(&plan, &db0, &deltas, ViewBackend::Legacy);
        let circuit_us = time_apply(&plan, &db0, &deltas, ViewBackend::Circuit);

        let bound = legacy_us * 1.25 + PARITY_SLACK_US;
        if circuit_us > bound {
            violations.push(format!(
                "{qname}: circuit {circuit_us:.2} µs > bound {bound:.2} µs (legacy {legacy_us:.2} µs)"
            ));
        }
        table.push(vec![
            qname.to_string(),
            format!("{legacy_us:.2}"),
            format!("{circuit_us:.2}"),
            format!("{:.2}x", circuit_us / legacy_us.max(1e-9)),
        ]);
        report.row(vec![
            "parity".into(),
            qname.into(),
            delta_size.to_string(),
            format!("{legacy_us:.3}"),
            format!("{circuit_us:.3}"),
            String::new(),
        ]);
    }
    print_table(
        &format!("circuit vs legacy delta-apply ({n} rows, |Δ|={delta_size}, {rounds} intervals)"),
        &["query", "legacy µs", "circuit µs", "ratio"],
        &table,
    );

    // ------------------------------------- recursive closure: Δ vs re-exec --
    // Chain length is clamped: the *re-exec* baseline is quadratic in it
    // (iterated-naive fixpoint), so letting it scale freely makes the bench
    // measure the oracle, not the circuit.
    let chains = 8;
    let len = scaled(24).clamp(8, 24);
    let batches = 6;
    let closure_sql = "WITH RECURSIVE R (a, b) AS \
        (SELECT src, dst FROM LINK \
         UNION SELECT r.a, l.dst FROM R r JOIN LINK l ON r.b = l.src) \
        SELECT * FROM R";
    report
        .param("closure_chains", chains)
        .param("closure_chain_len", len)
        .param("closure_batches", batches);

    let naive = parse_plan(closure_sql).expect("closure SQL parses");
    let mut table = Vec::new();
    for batch_edges in [1usize, 2, 4, 8, 16] {
        let headroom = batches * batch_edges + 1;
        let mut db = chain_db(chains, len, headroom);
        let opt = optimize(&naive, &db).expect("closure plan optimizes");
        let mut view = MaterializedView::new(&opt, &db).expect("closure circuit compiles");
        let name: Arc<str> = Arc::from("LINK");
        let stride = (len + headroom) as i64;
        let mut tips: Vec<i64> = (0..chains as i64)
            .map(|c| c * stride + len as i64 - 1)
            .collect();

        let mut circuit_us = 0.0;
        let mut reexec_us = 0.0;
        for b in 0..batches {
            // Extend chains round-robin by `batch_edges` fresh edges.
            let mut deltas = DeltaSet::new();
            {
                let rel = db.relation_mut("LINK").unwrap();
                for e in 0..batch_edges {
                    let c = (b * batch_edges + e) % chains;
                    let t = Tuple::new(vec![Value::Int(tips[c]), Value::Int(tips[c] + 1)]);
                    tips[c] += 1;
                    rel.insert(t.clone()).unwrap();
                    deltas.record_insert(&name, t);
                }
            }
            let t = Instant::now();
            view.try_apply_delta(&deltas).expect("closure maintenance");
            circuit_us += t.elapsed().as_secs_f64() * 1e6;

            let t = Instant::now();
            std::hint::black_box(execute(&opt, &db).expect("full re-exec"));
            reexec_us += t.elapsed().as_secs_f64() * 1e6;
        }
        circuit_us /= batches as f64;
        reexec_us /= batches as f64;

        table.push(vec![
            batch_edges.to_string(),
            format!("{circuit_us:.1}"),
            format!("{reexec_us:.1}"),
            format!("{:.0}x", reexec_us / circuit_us.max(1e-9)),
        ]);
        report.row(vec![
            "closure".into(),
            "transitive_closure".into(),
            batch_edges.to_string(),
            String::new(),
            format!("{circuit_us:.3}"),
            format!("{reexec_us:.3}"),
        ]);
    }
    print_table(
        &format!("recursive closure: incremental vs re-exec ({chains} chains × {len} nodes)"),
        &["|Δ| edges", "circuit µs", "re-exec µs", "speedup"],
        &table,
    );

    if let Some(path) = report.write_if_configured() {
        println!("\nwrote {}", path.display());
    }
    if !violations.is_empty() {
        eprintln!("\nPARITY BOUND FAILED:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
