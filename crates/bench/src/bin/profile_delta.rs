//! Delta-pipeline cost breakdown: where does one MCMC→view interval go?
//!
//! Splits the `view_maintenance/delta_apply` benchmark's timed loop into its
//! two halves — producing the interval delta (storage `update_field` +
//! `DeltaSet::record_update`) and consuming it (`MaterializedView::
//! apply_delta`) — per paper query, so regressions can be attributed to the
//! write path or the view path without a profiler.

use fgdb_bench::report::Report;
use fgdb_relational::algebra::paper_queries;
use fgdb_relational::{Database, DeltaSet, MaterializedView, Schema, Tuple, Value, ValueType};
use std::sync::Arc;
use std::time::Instant;

const LABELS: [&str; 4] = ["O", "B-PER", "B-ORG", "B-LOC"];

fn build_token_db(n: usize) -> Database {
    let schema = Schema::from_pairs(&[
        ("tok_id", ValueType::Int),
        ("doc_id", ValueType::Int),
        ("string", ValueType::Str),
        ("label", ValueType::Str),
        ("truth", ValueType::Str),
    ])
    .unwrap()
    .with_primary_key("tok_id")
    .unwrap();
    let mut db = Database::new();
    db.create_relation("TOKEN", schema).unwrap();
    let rel = db.relation_mut("TOKEN").unwrap();
    for i in 0..n {
        let label = LABELS[i % 4];
        let string = if i % 97 == 0 {
            "Boston".to_string()
        } else {
            format!("w{}", i % 500)
        };
        rel.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Int((i / 50) as i64),
            Value::str(string),
            Value::str(label),
            Value::str(label),
        ]))
        .unwrap();
    }
    db
}

fn make_delta(db: &mut Database, delta_size: usize, tick: &mut usize) -> DeltaSet {
    let mut deltas = DeltaSet::new();
    let name: Arc<str> = Arc::from("TOKEN");
    let rel = db.relation_mut("TOKEN").unwrap();
    let n = rel.len();
    for j in 0..delta_size {
        *tick += 1;
        let rid = rel
            .find_by_pk(&Value::Int(((*tick * 31 + j) % n) as i64))
            .unwrap();
        let new_label = LABELS[(*tick + j) % 4];
        let (old, new) = rel.update_field(rid, 3, Value::str(new_label)).unwrap();
        deltas.record_update(&name, old, new);
    }
    deltas
}

/// Sub-phase breakdown of the produce half: pk lookup vs field update vs
/// delta recording, measured over the same access sequence.
fn produce_breakdown(n: usize, delta_size: usize, rounds: usize) {
    let mut db = build_token_db(n);
    let name: Arc<str> = Arc::from("TOKEN");
    let total = rounds * delta_size;

    // Phase A: pk probes only.
    let rel = db.relation_mut("TOKEN").unwrap();
    let mut tick = 0usize;
    let t = Instant::now();
    let mut rids = Vec::with_capacity(total);
    for _ in 0..rounds {
        for j in 0..delta_size {
            tick += 1;
            rids.push(
                rel.find_by_pk(&Value::Int(((tick * 31 + j) % n) as i64))
                    .unwrap(),
            );
        }
    }
    let pk_us = t.elapsed().as_secs_f64() * 1e6 / rounds as f64;

    // Phase B: field updates only.
    let t = Instant::now();
    let mut images = Vec::with_capacity(total);
    for (k, rid) in rids.iter().enumerate() {
        let new_label = LABELS[k % 4];
        images.push(rel.update_field(*rid, 3, Value::str(new_label)).unwrap());
    }
    let upd_us = t.elapsed().as_secs_f64() * 1e6 / rounds as f64;

    // Phase C: delta recording only.
    let t = Instant::now();
    let mut chunks = images.chunks(delta_size);
    let mut sink = 0usize;
    for _ in 0..rounds {
        let mut d = DeltaSet::new();
        for (old, new) in chunks.next().unwrap().iter().cloned() {
            d.record_update(&name, old, new);
        }
        sink += d.magnitude();
    }
    let rec_us = t.elapsed().as_secs_f64() * 1e6 / rounds as f64;
    std::hint::black_box(sink);

    // Phase D: raw copy-on-write tuple mutation (the alloc+fingerprint core
    // of update_field) over one resident row.
    let sample = rel.get(rids[0]).unwrap().clone();
    let t = Instant::now();
    for k in 0..total {
        std::hint::black_box(sample.with_value(3, Value::str(LABELS[k % 4])));
    }
    let cow_us = t.elapsed().as_secs_f64() * 1e6 / rounds as f64;

    println!(
        "produce breakdown @{n}: pk {pk_us:.2} µs  update_field {upd_us:.2} µs  (cow core {cow_us:.2} µs)  record {rec_us:.2} µs / interval"
    );
}

fn main() {
    let n: usize = std::env::var("FGDB_PROFILE_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let delta_size = 16;
    let rounds = 2_000;
    produce_breakdown(n, delta_size, rounds);
    let mut report = Report::new(
        "profile_delta",
        &["query", "produce_us_per_interval", "apply_us_per_interval"],
    );
    report
        .param("db_rows", n)
        .param("delta_size", delta_size)
        .param("rounds", rounds);
    println!("delta pipeline split over {n} rows, |Δ|={delta_size}, {rounds} intervals\n");
    for (qname, plan) in [
        ("query1_select_project", paper_queries::query1("TOKEN")),
        ("query3_grouped_counts", paper_queries::query3("TOKEN")),
        ("query4_self_join", paper_queries::query4("TOKEN")),
    ] {
        let mut db = build_token_db(n);
        let mut view = MaterializedView::new(&plan, &db).unwrap();
        let mut tick = 0usize;

        // Phase 1: produce all interval deltas (timed), db evolving as in
        // the real pipeline.
        let t = Instant::now();
        let deltas: Vec<DeltaSet> = (0..rounds)
            .map(|_| make_delta(&mut db, delta_size, &mut tick))
            .collect();
        let produce_us = t.elapsed().as_secs_f64() * 1e6 / rounds as f64;

        // Phase 2: apply them in order (timed) — identical state evolution
        // to interleaved produce/apply.
        let t = Instant::now();
        for d in &deltas {
            std::hint::black_box(view.apply_delta(d));
        }
        let apply_us = t.elapsed().as_secs_f64() * 1e6 / rounds as f64;

        println!("{qname:<28} produce {produce_us:>8.2} µs   apply {apply_us:>8.2} µs");
        report.row(vec![
            qname.to_string(),
            format!("{produce_us:.3}"),
            format!("{apply_us:.3}"),
        ]);
    }
    if let Some(path) = report.write_if_configured() {
        println!("\nwrote {}", path.display());
    }
}
