//! E6 — Figure 8 (Appendix 9.1): Query 4, a self-join with ambiguity.
//!
//! "SELECT T2.STRING FROM TOKEN T1, TOKEN T2 WHERE T1.STRING='Boston' AND
//! T1.LABEL='B-ORG' AND T1.DOC_ID=T2.DOC_ID AND T2.LABEL='B-PER'" — person
//! strings co-occurring with an *organization*-sense "Boston". The paper
//! finds baseball-affiliated people because the Boston Red Sox are an org
//! named after a city; our synthetic corpus plants the same ORG/LOC
//! ambiguity.

use fgdb_bench::{print_csv, print_table, scaled, NerSetup};
use fgdb_core::QueryEvaluator;
use fgdb_relational::algebra::paper_queries;
use fgdb_relational::{execute_simple, Value};

fn main() {
    let tokens = scaled(30_000);
    let k = 2_000;
    let samples = 1_000;
    println!("E6 / Fig 8: Query 4 marginals, ~{tokens} tuples, {samples} samples");

    let setup = NerSetup::build(tokens, 55);

    // How often does "Boston" truly occur, and in which senses?
    let truth_db = fgdb_core::truth_database(&setup.corpus);
    for label in ["B-ORG", "B-LOC"] {
        let q = fgdb_relational::Plan::scan("TOKEN")
            .filter(
                fgdb_relational::Expr::col("string")
                    .eq(fgdb_relational::Expr::lit("Boston"))
                    .and(fgdb_relational::Expr::col("label").eq(fgdb_relational::Expr::lit(label))),
            )
            .project(&["tok_id"]);
        let n = execute_simple(&q, &truth_db)
            .expect("truth query")
            .rows
            .total();
        println!("  truth: Boston as {label}: {n} tokens");
    }

    let plan = paper_queries::query4("TOKEN");
    let mut pdb = setup.pdb_burned(77, setup.default_burn());
    let mut eval = QueryEvaluator::materialized(plan, &pdb, k).expect("plan");
    eval.run(&mut pdb, samples).expect("run");

    let mut rows: Vec<(Value, f64)> = eval
        .marginals()
        .probabilities()
        .into_iter()
        .map(|(t, p)| (t.get(0).clone(), p))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));

    print_table(
        "Fig 8: P(person string co-occurs with org-sense Boston)",
        &["string", "probability"],
        &rows
            .iter()
            .take(15)
            .map(|(s, p)| vec![s.to_string(), format!("{p:.3}")])
            .collect::<Vec<_>>(),
    );
    print_csv(
        "fig8",
        "string,probability",
        &rows
            .iter()
            .map(|(s, p)| format!("{s},{p:.6}"))
            .collect::<Vec<_>>(),
    );
    println!(
        "\nExpected shape (paper): a mix of high-probability (genuinely \
         co-occurring) person strings and mid-range ambiguous ones."
    );
}
