//! serving — concurrent read latency over a live sampler, and the
//! sampler-throughput cost of serving.
//!
//! Reproduces the PR-6 serving deliverable: a [`LiveSampler`] publishes
//! snapshot-isolated epochs while `fgdb-serve` fronts it on localhost TCP
//! and N concurrent clients issue the paper's SQL at a fixed pace.
//! Measures:
//!
//! * **unserved baseline** — sampler walk-steps/second with no server and
//!   no clients attached;
//! * **serving** — client-observed request latency (p50/p95/p99) and
//!   aggregate queries/second at N concurrent connections, plus the
//!   sampler's walk-steps/second *during* that load;
//! * **degradation** — the serving-vs-baseline sampler throughput drop.
//!   The acceptance bound for this PR is ≤ 25% under paced load (the
//!   harness machine is single-core, so clients and sampler share one
//!   CPU; an unpaced closed loop would measure CPU division, not serving
//!   overhead — the `saturate` row reports that regime separately);
//! * **degraded mode** — the `degraded` row runs a [`SupervisedSampler`]
//!   over a faulty WAL parked in its restart-backoff window: pinned
//!   clients keep reading their immutable epochs (their latency is the
//!   row), fresh-state requests shed with typed `Unavailable` frames
//!   (counted in the `degraded_sheds` param), and the sampler's steps/s
//!   is ~0 by construction, so its 100% degradation is reported but
//!   exempt from the 25% bound.
//!
//! Scales with `FGDB_SCALE` (default 1.0); `FGDB_SERVE_CLIENTS` overrides
//! the client count (default 8). Emits `BENCH_serving.json`.
//!
//! ```sh
//! cargo run --release -p fgdb-bench --bin serving
//! ```

use fgdb_bench::report::Report;
use fgdb_bench::{print_csv, print_table, scaled};
use fgdb_core::fixtures::{biased_token_pdb, relabel_proposer};
use fgdb_core::supervise::{ModelFactory, SupervisedSampler, SupervisorConfig};
use fgdb_core::{DurabilityConfig, FsyncPolicy, LiveSampler, ServingConfig};
use fgdb_durability::{FaultKind, FaultSchedule, FaultyIo, StoreIo};
use fgdb_graph::FactorGraph;
use fgdb_relational::parser::paper_sql;
use fgdb_serve::{Client, ClientError, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DOC_SIZE: usize = 24;
/// Pace between requests on each client connection (paced regime).
const PACE: Duration = Duration::from_millis(25);

fn build_sampler(n_tokens: usize, config: &ServingConfig) -> LiveSampler<Arc<FactorGraph>> {
    let pdb = biased_token_pdb(n_tokens, DOC_SIZE, 0xBE7C);
    let q1 = paper_sql::query1("TOKEN");
    LiveSampler::spawn(pdb, &[("q1", q1.as_str())], config.clone()).expect("spawn sampler")
}

/// Sampler walk-steps/second over a sleep window.
fn steps_per_sec(sampler: &LiveSampler<Arc<FactorGraph>>, window: Duration) -> f64 {
    let start = sampler.reader().status().steps;
    let t0 = Instant::now();
    std::thread::sleep(window);
    let steps = sampler.reader().status().steps - start;
    steps as f64 / t0.elapsed().as_secs_f64()
}

/// One client thread: issue the query mix against `addr` until the
/// deadline, optionally pacing between requests. Returns per-request
/// latencies in milliseconds.
fn client_loop(
    addr: &str,
    queries: &[String],
    deadline: Instant,
    pace: Option<Duration>,
) -> Vec<f64> {
    let mut client = Client::connect(addr).expect("client connect");
    let mut latencies = Vec::new();
    let mut i = 0usize;
    while Instant::now() < deadline {
        let sql = &queries[i % queries.len()];
        i += 1;
        let t0 = Instant::now();
        client.query(sql).expect("query under load");
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        if let Some(p) = pace {
            std::thread::sleep(p);
        }
    }
    latencies
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives one serving regime; returns (latencies_ms sorted, qps, sampler steps/s).
fn run_regime(
    n_tokens: usize,
    config: &ServingConfig,
    n_clients: usize,
    window: Duration,
    pace: Option<Duration>,
) -> (Vec<f64>, f64, f64) {
    let sampler = build_sampler(n_tokens, config);
    let server = Server::start(sampler.reader(), "127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();
    let queries: Arc<Vec<String>> = Arc::new(vec![
        paper_sql::query1("TOKEN"),
        paper_sql::query2("TOKEN"),
        paper_sql::query3("TOKEN"),
        paper_sql::query4("TOKEN"),
    ]);

    let t0 = Instant::now();
    let deadline = t0 + window;
    let handles: Vec<_> = (0..n_clients)
        .map(|_| {
            let addr = addr.clone();
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || client_loop(&addr, &queries, deadline, pace))
        })
        .collect();

    let steps_start = sampler.reader().status().steps;
    let mut latencies: Vec<f64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let steps = sampler.reader().status().steps - steps_start;

    server.stop();
    sampler.stop().expect("clean sampler stop");

    let qps = latencies.len() as f64 / elapsed;
    latencies.sort_by(f64::total_cmp);
    (latencies, qps, steps as f64 / elapsed)
}

/// Degraded-mode regime: a supervised sampler over a faulty WAL, parked
/// in a restart backoff longer than the measurement window. Pinned
/// clients pace queries against their immutable epochs (these must all
/// answer); an unpinned probe counts typed sheds. Returns
/// (pinned latencies ms sorted, qps, sampler steps/s, sheds).
fn run_degraded(
    n_tokens: usize,
    config: &ServingConfig,
    n_clients: usize,
    window: Duration,
) -> (Vec<f64>, f64, f64, u64) {
    let dir = fgdb_durability::test_dir("bench-serving-degraded");
    let fio = FaultyIo::new(FaultSchedule::none());
    let io: Arc<dyn StoreIo> = Arc::new(fio.clone());
    let pdb = biased_token_pdb(n_tokens, DOC_SIZE, 0xBE7C);
    let model = Arc::clone(pdb.model());
    let durable = pdb
        .open_durable_with_io(
            io,
            &dir,
            DurabilityConfig {
                fsync: FsyncPolicy::Always,
            },
        )
        .expect("mount durable store");
    let factory: ModelFactory<Arc<FactorGraph>> =
        Box::new(move || (Arc::clone(&model), relabel_proposer(n_tokens)));
    let q1 = paper_sql::query1("TOKEN");
    let sampler = SupervisedSampler::spawn(
        durable,
        &[("q1", q1.as_str())],
        SupervisorConfig {
            serving: config.clone(),
            max_restarts: 3,
            // Park the degraded window wide open: the whole measurement
            // happens inside the first restart backoff.
            restart_backoff_ms: window.as_millis() as u64 * 4,
            checkpoint_every: 0,
        },
        factory,
    )
    .expect("spawn supervised sampler");
    let server = Server::start(sampler.reader(), "127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();

    // Pin every measurement client while the sampler is still healthy.
    let mut pinned: Vec<Client> = (0..n_clients)
        .map(|_| {
            let mut c = Client::connect(&addr).expect("client connect");
            c.pin().expect("pin a healthy epoch");
            c
        })
        .collect();

    // Break the WAL, then wait for the supervisor to park degraded.
    fio.inject_now(FaultKind::WriteErr);
    let mut probe = Client::connect(&addr).expect("probe connect");
    while !probe.stats().expect("stats while degrading").degraded {
        std::thread::sleep(Duration::from_millis(2));
    }

    let queries: Arc<Vec<String>> = Arc::new(vec![
        paper_sql::query1("TOKEN"),
        paper_sql::query2("TOKEN"),
        paper_sql::query3("TOKEN"),
        paper_sql::query4("TOKEN"),
    ]);
    let t0 = Instant::now();
    let deadline = t0 + window;
    let steps_start = probe.stats().expect("stats").steps;
    let handles: Vec<_> = pinned
        .drain(..)
        .map(|mut client| {
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                let mut i = 0usize;
                while Instant::now() < deadline {
                    let sql = &queries[i % queries.len()];
                    i += 1;
                    let t = Instant::now();
                    client.query(sql).expect("pinned read while degraded");
                    latencies.push(t.elapsed().as_secs_f64() * 1e3);
                    std::thread::sleep(PACE);
                }
                latencies
            })
        })
        .collect();

    // Meanwhile, fresh-state requests must shed typed — count them.
    let mut sheds = 0u64;
    while Instant::now() < deadline {
        match probe.query(&queries[0]) {
            Err(ClientError::Unavailable { .. }) => sheds += 1,
            Ok(_) => {} // supervisor recovered early; freshness is back
            Err(e) => panic!("degraded server must shed, not fail: {e}"),
        }
        std::thread::sleep(PACE);
    }

    let mut latencies: Vec<f64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("pinned client thread"));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let steps = probe.stats().expect("stats").steps - steps_start;

    server.stop();
    // Stopping mid-backoff surfaces the parked fault — expected here.
    let _ = sampler.stop();

    let qps = latencies.len() as f64 / elapsed;
    latencies.sort_by(f64::total_cmp);
    (latencies, qps, steps as f64 / elapsed, sheds)
}

fn main() {
    let n_tokens = scaled(400).max(24);
    let window = Duration::from_millis(scaled(3_000).max(500) as u64);
    let n_clients = std::env::var("FGDB_SERVE_CLIENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8usize)
        .max(1);
    let config = ServingConfig {
        thinning: 50,
        publish_every: 4,
        window: 128,
        ..Default::default()
    };

    // Unserved baseline: the sampler alone on the box.
    let baseline = build_sampler(n_tokens, &config);
    std::thread::sleep(window / 4); // warm-up: JIT-free but cache-warm
    let baseline_sps = steps_per_sec(&baseline, window);
    baseline.stop().expect("clean baseline stop");

    let mut report = Report::new(
        "serving",
        &[
            "regime",
            "clients",
            "queries",
            "qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "sampler_steps_per_s",
            "degradation_pct",
        ],
    );
    report
        .param("n_tokens", n_tokens)
        .param("window_ms", window.as_millis())
        .param("pace_ms", PACE.as_millis())
        .param("thinning", config.thinning)
        .param("publish_every", config.publish_every)
        .param("baseline_steps_per_s", format!("{baseline_sps:.0}"));

    let mut rows = Vec::new();
    let mut paced_degradation = f64::NAN;
    for (regime, pace) in [("paced", Some(PACE)), ("saturate", None)] {
        let (lat, qps, sps) = run_regime(n_tokens, &config, n_clients, window, pace);
        let degradation = (1.0 - sps / baseline_sps) * 100.0;
        if regime == "paced" {
            paced_degradation = degradation;
        }
        rows.push(vec![
            regime.to_string(),
            n_clients.to_string(),
            lat.len().to_string(),
            format!("{qps:.1}"),
            format!("{:.3}", percentile(&lat, 0.50)),
            format!("{:.3}", percentile(&lat, 0.95)),
            format!("{:.3}", percentile(&lat, 0.99)),
            format!("{sps:.0}"),
            format!("{degradation:.1}"),
        ]);
    }

    // Degraded mode: pinned reads stay served while the sampler is down.
    // Its ~100% sampler degradation is by construction and exempt from
    // the paced bound.
    let (lat, qps, sps, sheds) = run_degraded(n_tokens, &config, n_clients, window);
    report.param("degraded_sheds", sheds);
    rows.push(vec![
        "degraded".to_string(),
        n_clients.to_string(),
        lat.len().to_string(),
        format!("{qps:.1}"),
        format!("{:.3}", percentile(&lat, 0.50)),
        format!("{:.3}", percentile(&lat, 0.95)),
        format!("{:.3}", percentile(&lat, 0.99)),
        format!("{sps:.0}"),
        format!("{:.1}", (1.0 - sps / baseline_sps) * 100.0),
    ]);

    for r in &rows {
        report.row(r.clone());
    }
    print_table(
        "serving: concurrent read latency + sampler cost",
        &[
            "regime",
            "clients",
            "queries",
            "qps",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "sampler steps/s",
            "degradation %",
        ],
        &rows,
    );
    print_csv(
        "serving",
        "regime,clients,queries,qps,p50_ms,p95_ms,p99_ms,sampler_steps_per_s,degradation_pct",
        &rows.iter().map(|r| r.join(",")).collect::<Vec<_>>(),
    );
    report.write_if_configured();
    println!(
        "\nbaseline sampler: {baseline_sps:.0} steps/s; paced degradation: {paced_degradation:.1}% (bound: 25%)"
    );
    if paced_degradation > 25.0 {
        eprintln!("WARNING: paced serving degraded the sampler beyond the 25% bound");
        std::process::exit(1);
    }
}
