//! serving — concurrent read latency over a live sampler, and the
//! sampler-throughput cost of serving.
//!
//! Reproduces the PR-6 serving deliverable: a [`LiveSampler`] publishes
//! snapshot-isolated epochs while `fgdb-serve` fronts it on localhost TCP
//! and N concurrent clients issue the paper's SQL at a fixed pace.
//! Measures:
//!
//! * **unserved baseline** — sampler walk-steps/second with no server and
//!   no clients attached;
//! * **serving** — client-observed request latency (p50/p95/p99) and
//!   aggregate queries/second at N concurrent connections, plus the
//!   sampler's walk-steps/second *during* that load;
//! * **degradation** — the serving-vs-baseline sampler throughput drop.
//!   The acceptance bound for this PR is ≤ 25% under paced load (the
//!   harness machine is single-core, so clients and sampler share one
//!   CPU; an unpaced closed loop would measure CPU division, not serving
//!   overhead — the `saturate` row reports that regime separately).
//!
//! Scales with `FGDB_SCALE` (default 1.0); `FGDB_SERVE_CLIENTS` overrides
//! the client count (default 8). Emits `BENCH_serving.json`.
//!
//! ```sh
//! cargo run --release -p fgdb-bench --bin serving
//! ```

use fgdb_bench::report::Report;
use fgdb_bench::{print_csv, print_table, scaled};
use fgdb_core::fixtures::biased_token_pdb;
use fgdb_core::{LiveSampler, ServingConfig};
use fgdb_graph::FactorGraph;
use fgdb_relational::parser::paper_sql;
use fgdb_serve::{Client, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DOC_SIZE: usize = 24;
/// Pace between requests on each client connection (paced regime).
const PACE: Duration = Duration::from_millis(25);

fn build_sampler(n_tokens: usize, config: &ServingConfig) -> LiveSampler<Arc<FactorGraph>> {
    let pdb = biased_token_pdb(n_tokens, DOC_SIZE, 0xBE7C);
    let q1 = paper_sql::query1("TOKEN");
    LiveSampler::spawn(pdb, &[("q1", q1.as_str())], config.clone()).expect("spawn sampler")
}

/// Sampler walk-steps/second over a sleep window.
fn steps_per_sec(sampler: &LiveSampler<Arc<FactorGraph>>, window: Duration) -> f64 {
    let start = sampler.reader().status().steps;
    let t0 = Instant::now();
    std::thread::sleep(window);
    let steps = sampler.reader().status().steps - start;
    steps as f64 / t0.elapsed().as_secs_f64()
}

/// One client thread: issue the query mix against `addr` until the
/// deadline, optionally pacing between requests. Returns per-request
/// latencies in milliseconds.
fn client_loop(
    addr: &str,
    queries: &[String],
    deadline: Instant,
    pace: Option<Duration>,
) -> Vec<f64> {
    let mut client = Client::connect(addr).expect("client connect");
    let mut latencies = Vec::new();
    let mut i = 0usize;
    while Instant::now() < deadline {
        let sql = &queries[i % queries.len()];
        i += 1;
        let t0 = Instant::now();
        client.query(sql).expect("query under load");
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        if let Some(p) = pace {
            std::thread::sleep(p);
        }
    }
    latencies
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives one serving regime; returns (latencies_ms sorted, qps, sampler steps/s).
fn run_regime(
    n_tokens: usize,
    config: &ServingConfig,
    n_clients: usize,
    window: Duration,
    pace: Option<Duration>,
) -> (Vec<f64>, f64, f64) {
    let sampler = build_sampler(n_tokens, config);
    let server = Server::start(sampler.reader(), "127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();
    let queries: Arc<Vec<String>> = Arc::new(vec![
        paper_sql::query1("TOKEN"),
        paper_sql::query2("TOKEN"),
        paper_sql::query3("TOKEN"),
        paper_sql::query4("TOKEN"),
    ]);

    let t0 = Instant::now();
    let deadline = t0 + window;
    let handles: Vec<_> = (0..n_clients)
        .map(|_| {
            let addr = addr.clone();
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || client_loop(&addr, &queries, deadline, pace))
        })
        .collect();

    let steps_start = sampler.reader().status().steps;
    let mut latencies: Vec<f64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let steps = sampler.reader().status().steps - steps_start;

    server.stop();
    sampler.stop().expect("clean sampler stop");

    let qps = latencies.len() as f64 / elapsed;
    latencies.sort_by(f64::total_cmp);
    (latencies, qps, steps as f64 / elapsed)
}

fn main() {
    let n_tokens = scaled(400).max(24);
    let window = Duration::from_millis(scaled(3_000).max(500) as u64);
    let n_clients = std::env::var("FGDB_SERVE_CLIENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8usize)
        .max(1);
    let config = ServingConfig {
        thinning: 50,
        publish_every: 4,
        window: 128,
        ..Default::default()
    };

    // Unserved baseline: the sampler alone on the box.
    let baseline = build_sampler(n_tokens, &config);
    std::thread::sleep(window / 4); // warm-up: JIT-free but cache-warm
    let baseline_sps = steps_per_sec(&baseline, window);
    baseline.stop().expect("clean baseline stop");

    let mut report = Report::new(
        "serving",
        &[
            "regime",
            "clients",
            "queries",
            "qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "sampler_steps_per_s",
            "degradation_pct",
        ],
    );
    report
        .param("n_tokens", n_tokens)
        .param("window_ms", window.as_millis())
        .param("pace_ms", PACE.as_millis())
        .param("thinning", config.thinning)
        .param("publish_every", config.publish_every)
        .param("baseline_steps_per_s", format!("{baseline_sps:.0}"));

    let mut rows = Vec::new();
    let mut paced_degradation = f64::NAN;
    for (regime, pace) in [("paced", Some(PACE)), ("saturate", None)] {
        let (lat, qps, sps) = run_regime(n_tokens, &config, n_clients, window, pace);
        let degradation = (1.0 - sps / baseline_sps) * 100.0;
        if regime == "paced" {
            paced_degradation = degradation;
        }
        rows.push(vec![
            regime.to_string(),
            n_clients.to_string(),
            lat.len().to_string(),
            format!("{qps:.1}"),
            format!("{:.3}", percentile(&lat, 0.50)),
            format!("{:.3}", percentile(&lat, 0.95)),
            format!("{:.3}", percentile(&lat, 0.99)),
            format!("{sps:.0}"),
            format!("{degradation:.1}"),
        ]);
    }

    for r in &rows {
        report.row(r.clone());
    }
    print_table(
        "serving: concurrent read latency + sampler cost",
        &[
            "regime",
            "clients",
            "queries",
            "qps",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "sampler steps/s",
            "degradation %",
        ],
        &rows,
    );
    print_csv(
        "serving",
        "regime,clients,queries,qps,p50_ms,p95_ms,p99_ms,sampler_steps_per_s,degradation_pct",
        &rows.iter().map(|r| r.join(",")).collect::<Vec<_>>(),
    );
    report.write_if_configured();
    println!(
        "\nbaseline sampler: {baseline_sps:.0} steps/s; paced degradation: {paced_degradation:.1}% (bound: 25%)"
    );
    if paced_degradation > 25.0 {
        eprintln!("WARNING: paced serving degraded the sampler beyond the 25% bound");
        std::process::exit(1);
    }
}
