//! E4 — Figure 6: aggregate query evaluation, Queries 2 and 3.
//!
//! Query 2 — `SELECT COUNT(*) FROM TOKEN WHERE LABEL='B-PER'` — converges
//! rapidly because the count distribution is concentrated (Fig. 7).
//! Query 3 — documents with equal B-PER and B-ORG counts (correlated COUNT
//! subqueries) — converges "at a respectable rate".
//!
//! Both run through the materialized evaluator: the grouped/filtered COUNT
//! views are maintained incrementally under MCMC deltas.

use fgdb_bench::{estimate_ground_truth, loss_against, print_csv, scaled, NerSetup};
use fgdb_core::{LossCurve, QueryEvaluator};
use fgdb_relational::algebra::paper_queries;
use fgdb_relational::Plan;
use std::time::Instant;

fn main() {
    let tokens = scaled(30_000);
    let k = 2_000;
    let samples = 300;
    println!("E4 / Fig 6: aggregate queries, ~{tokens} tuples, k={k}");

    let setup = NerSetup::build(tokens, 21);
    let queries: Vec<(&str, Plan)> = vec![
        ("query2", paper_queries::query2("TOKEN")),
        ("query3", paper_queries::query3("TOKEN")),
    ];

    for (name, plan) in queries {
        let truth = estimate_ground_truth(&setup, &plan, 2_500, k, 7);
        let mut pdb = setup.pdb_burned(55, setup.default_burn());
        let mut eval = QueryEvaluator::materialized(plan.clone(), &pdb, k).expect("plan");
        let mut curve = LossCurve::new();
        let t0 = Instant::now();
        for s in 0..samples {
            eval.sample(&mut pdb).expect("sample");
            curve.push(
                t0.elapsed(),
                s as u64 + 1,
                loss_against(eval.marginals(), &truth),
            );
        }
        let norm = curve.normalized();
        println!(
            "{name}: initial {:.4} → final {:.4} ({} samples, {:.2}s); \
             normalized final {:.4}",
            curve.initial_loss().unwrap_or(f64::NAN),
            curve.final_loss().unwrap_or(f64::NAN),
            samples,
            t0.elapsed().as_secs_f64(),
            norm.final_loss().unwrap_or(f64::NAN),
        );
        let rows: Vec<String> = norm
            .points()
            .iter()
            .map(|p| format!("{:.4},{},{:.6}", p.elapsed.as_secs_f64(), p.samples, p.loss))
            .collect();
        print_csv(
            &format!("fig6_{name}"),
            "elapsed_s,samples,normalized_loss",
            &rows,
        );
    }
    println!(
        "\nExpected shape (paper): Query 2 rapidly approaches zero loss \
         (concentration of measure); Query 3 converges more slowly but \
         steadily."
    );
}
