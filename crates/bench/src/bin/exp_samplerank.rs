//! E8 — §5.2: SampleRank training speed and quality.
//!
//! "We train the model using one-million steps of SampleRank … The method is
//! extremely quick, learning all parameters in a matter of minutes." This
//! harness trains the skip-chain CRF from scratch at several corpus sizes
//! and reports wall time, update counts, and token accuracy of the chain's
//! final world, plus a decode-accuracy comparison of the linear-chain vs
//! skip-chain models (the paper's motivation for skip edges).

use fgdb_bench::{print_csv, print_table, scaled, timed, NerSetup};
use fgdb_core::train_ner_model;
use fgdb_ie::{Corpus, CorpusConfig, Crf, TokenSeqData};
use std::sync::Arc;

fn main() {
    let sizes: Vec<usize> = [5_000usize, 20_000, 100_000]
        .iter()
        .map(|&n| scaled(n))
        .collect();
    let steps = 1_000_000;
    println!("E8 / §5.2: SampleRank training, {steps} steps");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let mut cfg = CorpusConfig::with_total_tokens(n);
        cfg.seed = 400 + i as u64;
        let corpus = Corpus::generate(&cfg);
        let data = TokenSeqData::from_corpus(&corpus, 8);
        let mut model = Crf::skip_chain(Arc::clone(&data));
        let (stats, secs) =
            timed(|| train_ner_model(&corpus, &mut model, steps, 11).expect("training"));
        let acc = stats.final_objective / corpus.num_tokens() as f64;
        rows.push(vec![
            corpus.num_tokens().to_string(),
            format!("{secs:.1}"),
            stats.updates.to_string(),
            format!("{:.1}%", acc * 100.0),
        ]);
        csv.push(format!(
            "{},{secs:.3},{},{acc:.4}",
            corpus.num_tokens(),
            stats.updates
        ));
        println!(
            "  {} tokens: {secs:.1}s, {} updates, {:.1}% accuracy",
            corpus.num_tokens(),
            stats.updates,
            acc * 100.0
        );
    }
    print_table(
        "SampleRank training (1M steps, from zero weights)",
        &["tokens", "seconds", "updates", "chain accuracy"],
        &rows,
    );
    print_csv("samplerank", "tokens,seconds,updates,accuracy", &csv);

    // Ablation: linear-chain vs skip-chain on ambiguous strings. Both are
    // trained identically; accuracy is measured on tokens whose string is
    // ambiguous in truth (appears under more than one label).
    println!("\n== ablation: skip edges and ambiguous strings ==");
    let setup = NerSetup::build(scaled(20_000), 71);
    let corpus = &setup.corpus;
    let mut by_string: std::collections::HashMap<u32, std::collections::HashSet<u8>> =
        Default::default();
    for t in &corpus.tokens {
        by_string
            .entry(t.string_id)
            .or_default()
            .insert(t.truth.index() as u8);
    }
    let ambiguous: std::collections::HashSet<u32> = by_string
        .iter()
        .filter(|(_, l)| l.len() > 1)
        .map(|(s, _)| *s)
        .collect();
    println!(
        "{} of {} strings are truth-ambiguous",
        ambiguous.len(),
        by_string.len()
    );

    // Decode with the *model-driven* sampler: accuracy of a posterior
    // sample reflects the model, not the training proposer.
    let decode_accuracy = |model: &Crf, steps: usize| -> (f64, f64) {
        use fgdb_mcmc::{DynRng, MetropolisHastings, UniformRelabel};
        use rand::SeedableRng;
        let vars = model.variables();
        let mut world = model.new_world();
        let mut kernel = MetropolisHastings::new(model, Box::new(UniformRelabel::new(vars)));
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut rng = DynRng::from(&mut rng);
        for _ in 0..steps {
            kernel.step(&mut world, &mut rng);
        }
        let truth = corpus.truth_indexes();
        let all = corpus
            .tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| world.get(fgdb_graph::VariableId(*i as u32)) == truth[*i] as usize)
            .count() as f64
            / corpus.num_tokens() as f64;
        // Uncued ambiguous tokens: the string is truth-ambiguous and no cue
        // word immediately precedes — only document context (skip edges from
        // a cued occurrence elsewhere) can disambiguate these.
        let uncued_ambiguous = |i: usize, t: &fgdb_ie::Token| {
            ambiguous.contains(&t.string_id)
                && !(i > 0 && corpus.tokens[i - 1].string.starts_with("cue"))
        };
        let amb_total = corpus
            .tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| uncued_ambiguous(*i, t))
            .count()
            .max(1);
        let amb = corpus
            .tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                uncued_ambiguous(*i, t)
                    && world.get(fgdb_graph::VariableId(*i as u32)) == truth[*i] as usize
            })
            .count() as f64
            / amb_total as f64;
        (all, amb)
    };

    for skip in [false, true] {
        let data = TokenSeqData::from_corpus(corpus, 8);
        let mut model = if skip {
            Crf::skip_chain(data)
        } else {
            Crf::linear_chain(data)
        };
        train_ner_model(corpus, &mut model, 300_000, 5).expect("training");
        let (all, amb) = decode_accuracy(&model, corpus.num_tokens() * 20);
        println!(
            "  {}: posterior-sample accuracy {:.2}% overall, {:.2}% on \
             ambiguous strings",
            if skip { "skip-chain  " } else { "linear-chain" },
            all * 100.0,
            amb * 100.0
        );
    }
    println!(
        "\nExpected shape (paper): training completes in minutes even at \
         large sizes; skip edges help on documents with repeated strings."
    );
}
