//! E1 — Figure 4(a) + §5.3 inline numbers: scalability of query evaluation.
//!
//! For database sizes spanning orders of magnitude, measures the time each
//! evaluator (naive Algorithm 3 vs materialized Algorithm 1) takes to halve
//! the squared error of Query 1's marginals from the initial single-sample
//! approximation.
//!
//! Paper-reported shape: comparable at 10⁴ tuples (naive 19 s vs 21 s —
//! the diff-table overhead visible), crossover by 10⁵ (178 s vs 162 s),
//! then orders-of-magnitude separation (projected 227 h vs 2.5 h at 10⁷).
//!
//! Sizes default to laptop scale; multiply with `FGDB_SCALE`.

use fgdb_bench::{estimate_ground_truth, loss_against, print_csv, print_table, scaled, NerSetup};
use fgdb_core::{LossCurve, QueryEvaluator};
use fgdb_relational::algebra::paper_queries;
use std::time::Instant;

fn main() {
    let sizes: Vec<usize> = [1_000usize, 5_000, 20_000, 100_000]
        .iter()
        .map(|&n| scaled(n))
        .collect();
    let k = 2_000; // thinning steps between samples
    let truth_samples = 1_500;
    let max_samples = 400;

    println!("E1 / Fig 4(a): time to half squared error, Query 1");
    println!("sizes: {sizes:?}, k = {k}");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let setup = NerSetup::build(n, 100 + i as u64);
        let n_actual = setup.corpus.num_tokens();
        let plan = paper_queries::query1("TOKEN");
        let truth = estimate_ground_truth(&setup, &plan, truth_samples, k, 7);
        let burn = setup.default_burn();

        // [naive, materialized] times to half loss.
        let mut t_half = [f64::NAN; 2];
        for (slot, naive) in [(0usize, true), (1usize, false)] {
            let mut pdb = setup.pdb_burned(55, burn);
            let mut eval = if naive {
                QueryEvaluator::naive(plan.clone(), &pdb, k).expect("plan")
            } else {
                QueryEvaluator::materialized(plan.clone(), &pdb, k).expect("plan")
            };
            let mut curve = LossCurve::new();
            let t0 = Instant::now();
            for s in 0..max_samples {
                eval.sample(&mut pdb).expect("sample");
                let loss = loss_against(eval.marginals(), &truth);
                curve.push(t0.elapsed(), s as u64 + 1, loss);
                if curve.time_to_half_loss().is_some() {
                    break;
                }
            }
            t_half[slot] = curve
                .time_to_half_loss()
                .map(|d| d.as_secs_f64())
                .unwrap_or(f64::NAN);
        }
        rows.push(vec![
            n_actual.to_string(),
            format!("{:.3}", t_half[0]),
            format!("{:.3}", t_half[1]),
            format!("{:.1}x", t_half[0] / t_half[1]),
        ]);
        csv.push(format!("{n_actual},{:.6},{:.6}", t_half[0], t_half[1]));
        println!(
            "  {n_actual} tuples: naive {:.3}s, materialized {:.3}s",
            t_half[0], t_half[1]
        );
    }
    print_table(
        "Fig 4(a): time to half squared error (seconds)",
        &["tuples", "naive_s", "materialized_s", "naive/mat"],
        &rows,
    );
    print_csv("fig4a", "tuples,naive_s,materialized_s", &csv);
    println!(
        "\nExpected shape (paper): near-parity at the smallest size, the \
         materialized evaluator pulling ahead by ~10^5 tuples and winning by \
         orders of magnitude beyond."
    );
}
