//! chaos — the seeded fault-injection sweep as a reportable experiment.
//!
//! Runs the same recovery oracle as `crates/core/tests/chaos.rs` —
//! durable database lock-step with an undamaged twin, one seeded fault
//! per schedule through the failpoint I/O layer, recovery through a
//! fresh handle — but as a sweep that *reports* instead of stopping at
//! the first failure: every schedule runs under `catch_unwind`, the
//! violations are tallied with their seeds, and the process exits
//! non-zero if any oracle was violated. Emits `BENCH_chaos.json`.
//!
//! Knobs: `FGDB_CHAOS_SCHEDULES` (seeds, default `scaled(32)`),
//! `FGDB_CHAOS_SEED` (base seed, default fixed). Any violation row
//! carries its seed, so a red sweep replays with
//! `FGDB_CHAOS_SEED=<seed> FGDB_CHAOS_SCHEDULES=1`.
//!
//! ```sh
//! cargo run --release -p fgdb-bench --bin chaos
//! ```

use fgdb_bench::report::Report;
use fgdb_bench::{print_csv, print_table, scaled};
use fgdb_core::fixtures::{biased_token_pdb, relabel_proposer};
use fgdb_core::{DurabilityConfig, DurablePdb, FsyncPolicy, ProbabilisticDB};
use fgdb_durability::{FaultKind, FaultSchedule, FaultyIo, StoreIo};
use fgdb_graph::FactorGraph;
use fgdb_relational::parser::paper_sql;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

const N_TOKENS: usize = 24;
const DOC_SIZE: usize = 6;
const K: usize = 40;
const MAX_INTERVALS: usize = 20;
const CHECKPOINT_EVERY: usize = 5;
const OP_WINDOW: u64 = 48;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn build_pdb(seed: u64) -> ProbabilisticDB<Arc<FactorGraph>> {
    biased_token_pdb(N_TOKENS, DOC_SIZE, seed)
}

fn assert_observationally_equal(
    a: &ProbabilisticDB<Arc<FactorGraph>>,
    b: &ProbabilisticDB<Arc<FactorGraph>>,
    seed: u64,
) {
    assert_eq!(
        a.world().assignment(),
        b.world().assignment(),
        "world divergence under schedule seed {seed:#x}"
    );
    assert_eq!(a.steps_taken(), b.steps_taken(), "seed {seed:#x}");
    assert_eq!(a.kernel_stats(), b.kernel_stats(), "seed {seed:#x}");
    a.check_synchronized().unwrap();
    b.check_synchronized().unwrap();
    for sql in [
        paper_sql::query1("TOKEN"),
        paper_sql::query2("TOKEN"),
        paper_sql::query3("TOKEN"),
        paper_sql::query4("TOKEN"),
    ] {
        assert_eq!(
            a.query(&sql).unwrap().rows.sorted_entries(),
            b.query(&sql).unwrap().rows.sorted_entries(),
            "query parity failed for {sql} under schedule seed {seed:#x}"
        );
    }
}

/// What one schedule did — the sweep's row categories.
enum Outcome {
    /// Oracle held; `Some(kind)` if the scheduled fault fired mid-run.
    Verified(Option<FaultKind>),
    /// The fault hit the mount; recovery correctly reported either a
    /// typed error or the pristine initial state.
    MountFailed,
}

/// One seeded schedule end to end; panics on any oracle violation.
fn run_schedule(seed: u64) -> Outcome {
    let dir = fgdb_durability::test_dir(&format!("bench-chaos-{seed:x}"));
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::Always,
    };
    let fio = FaultyIo::new(FaultSchedule::from_seed(seed, OP_WINDOW));
    let io: Arc<dyn StoreIo> = Arc::new(fio.clone());

    let chain_seed = seed ^ 0x0BAD_5EED;
    let seed_pdb = build_pdb(chain_seed);
    let model = Arc::clone(seed_pdb.model());
    let mut twin = build_pdb(chain_seed);

    let mut durable: DurablePdb<Arc<FactorGraph>> = match seed_pdb
        .open_durable_with_io(io, &dir, cfg)
    {
        Ok(d) => d,
        Err(_) => {
            if let Ok((recovered, _)) =
                ProbabilisticDB::recover(&dir, Arc::clone(&model), relabel_proposer(N_TOKENS), cfg)
            {
                assert_eq!(
                    recovered.steps_taken(),
                    0,
                    "a failed mount must not acknowledge intervals, seed {seed:#x}"
                );
                assert_observationally_equal(recovered.pdb(), &twin, seed);
            }
            return Outcome::MountFailed;
        }
    };

    let mut acked = 0u64;
    for i in 0..MAX_INTERVALS {
        match durable.step(K) {
            Ok(_) => {
                twin.step(K).unwrap();
                acked += 1;
            }
            Err(_) => break,
        }
        if (i + 1) % CHECKPOINT_EVERY == 0 && durable.checkpoint().is_err() {
            break;
        }
    }
    drop(durable);
    let (mut recovered, _) =
        ProbabilisticDB::recover(&dir, Arc::clone(&model), relabel_proposer(N_TOKENS), cfg)
            .unwrap_or_else(|e| panic!("recovery failed under schedule seed {seed:#x}: {e}"));

    let recovered_intervals = recovered.steps_taken() / K as u64;
    assert!(
        recovered_intervals >= acked,
        "acked interval lost under seed {seed:#x}: acked {acked}, recovered {recovered_intervals}"
    );
    assert!(
        recovered_intervals <= acked + 1,
        "recovery fabricated intervals under seed {seed:#x}"
    );
    for _ in acked..recovered_intervals {
        twin.step(K).unwrap();
    }
    assert_observationally_equal(recovered.pdb(), &twin, seed);
    for _ in 0..3 {
        recovered.step(K).unwrap();
        twin.step(K).unwrap();
    }
    assert_observationally_equal(recovered.pdb(), &twin, seed);

    Outcome::Verified(fio.fired().first().map(|(_, k)| *k))
}

fn kind_label(kind: Option<FaultKind>) -> &'static str {
    match kind {
        None => "clean",
        Some(FaultKind::ShortWrite) => "short_write",
        Some(FaultKind::WriteErr) => "write_err",
        Some(FaultKind::SyncErr) => "sync_err",
        Some(FaultKind::Crash {
            partial_write: true,
        }) => "crash_partial",
        Some(FaultKind::Crash {
            partial_write: false,
        }) => "crash",
    }
}

fn main() {
    let schedules = env_u64("FGDB_CHAOS_SCHEDULES", scaled(32) as u64);
    let base = env_u64("FGDB_CHAOS_SEED", 0xC4A0_5000);

    let mut by_label: Vec<(&'static str, u64, f64)> = Vec::new(); // label, count, total_ms
    let mut violations: Vec<(u64, String)> = Vec::new();
    let t0 = Instant::now();
    for i in 0..schedules {
        let seed = base.wrapping_add(i);
        let t = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_schedule(seed)));
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let label = match outcome {
            Ok(Outcome::Verified(kind)) => kind_label(kind),
            Ok(Outcome::MountFailed) => "mount_failed",
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".into());
                eprintln!("VIOLATION seed {seed:#x}: {msg}");
                violations.push((seed, msg));
                "violation"
            }
        };
        match by_label.iter_mut().find(|(l, _, _)| *l == label) {
            Some(entry) => {
                entry.1 += 1;
                entry.2 += ms;
            }
            None => by_label.push((label, 1, ms)),
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let mut report = Report::new("chaos", &["outcome", "schedules", "avg_ms"]);
    report
        .param("schedules", schedules)
        .param("base_seed", format!("{base:#x}"))
        .param("op_window", OP_WINDOW)
        .param("intervals", MAX_INTERVALS)
        .param("k", K)
        .param("elapsed_s", format!("{elapsed:.2}"))
        .param("violations", violations.len());
    let rows: Vec<Vec<String>> = by_label
        .iter()
        .map(|(label, count, total_ms)| {
            vec![
                label.to_string(),
                count.to_string(),
                format!("{:.2}", total_ms / *count as f64),
            ]
        })
        .collect();
    for r in &rows {
        report.row(r.clone());
    }
    print_table(
        "chaos: seeded fault schedules vs the recovery oracle",
        &["outcome", "schedules", "avg ms"],
        &rows,
    );
    print_csv(
        "chaos",
        "outcome,schedules,avg_ms",
        &rows.iter().map(|r| r.join(",")).collect::<Vec<_>>(),
    );
    report.write_if_configured();

    let fired: u64 = by_label
        .iter()
        .filter(|(l, _, _)| !matches!(*l, "clean" | "violation"))
        .map(|(_, c, _)| *c)
        .sum();
    println!(
        "\n{schedules} schedules in {elapsed:.2}s: {fired} injected damage, {} violations",
        violations.len()
    );
    if !violations.is_empty() {
        for (seed, msg) in &violations {
            eprintln!("  seed {seed:#x}: {msg}");
        }
        eprintln!("replay one with: FGDB_CHAOS_SEED=<seed> FGDB_CHAOS_SCHEDULES=1");
        std::process::exit(1);
    }
    if fired == 0 {
        eprintln!("WARNING: vacuous sweep — no schedule injected damage");
        std::process::exit(1);
    }
}
