//! E2 — Figure 4(b): normalized squared loss over time for both evaluators
//! on a fixed database (paper: 1M tuples; default here 30k × FGDB_SCALE).
//!
//! The comparison is at equal *wall-clock budget*: the naive evaluator runs
//! a fixed number of samples; the materialized evaluator runs for the same
//! elapsed time. Because a materialized sample costs Θ(|Δ|) instead of
//! Θ(|w|), it fits vastly more samples into the budget and drives the loss
//! far lower — the paper: "the efficient evaluator nearly zeroes the error
//! before the naive approach can even half the error".

use fgdb_bench::{estimate_ground_truth, loss_against, print_csv, scaled, NerSetup};
use fgdb_core::{LossCurve, QueryEvaluator};
use fgdb_relational::algebra::paper_queries;
use std::time::Instant;

fn main() {
    let tokens = scaled(30_000);
    let k = 2_000;
    let naive_samples = 120;
    println!("E2 / Fig 4(b): loss vs time, Query 1, ~{tokens} tuples, k={k}");

    let setup = NerSetup::build(tokens, 42);
    let plan = paper_queries::query1("TOKEN");
    let truth = estimate_ground_truth(&setup, &plan, 4_000, k, 7);
    let burn = setup.default_burn();

    // Naive first, to establish the time budget.
    let mut pdb = setup.pdb_burned(55, burn);
    let mut naive = QueryEvaluator::naive(plan.clone(), &pdb, k).expect("plan");
    let mut naive_curve = LossCurve::new();
    let t0 = Instant::now();
    for s in 0..naive_samples {
        naive.sample(&mut pdb).expect("sample");
        naive_curve.push(
            t0.elapsed(),
            s as u64 + 1,
            loss_against(naive.marginals(), &truth),
        );
    }
    let budget = t0.elapsed();
    println!(
        "        naive: {} samples in {:.2}s, loss {:.4} → {:.4}",
        naive_samples,
        budget.as_secs_f64(),
        naive_curve.initial_loss().unwrap_or(f64::NAN),
        naive_curve.final_loss().unwrap_or(f64::NAN)
    );

    // Materialized for the same wall-clock budget.
    let mut pdb = setup.pdb_burned(55, burn);
    let mut mat = QueryEvaluator::materialized(plan.clone(), &pdb, k).expect("plan");
    let mut mat_curve = LossCurve::new();
    let t0 = Instant::now();
    let mut s = 0u64;
    while t0.elapsed() < budget {
        mat.sample(&mut pdb).expect("sample");
        s += 1;
        // Record loss sparsely (loss computation itself costs time).
        if s.is_multiple_of(10) {
            mat_curve.push(t0.elapsed(), s, loss_against(mat.marginals(), &truth));
        }
    }
    println!(
        " materialized: {} samples in the same {:.2}s, loss {:.4} → {:.4}",
        s,
        budget.as_secs_f64(),
        mat_curve.initial_loss().unwrap_or(f64::NAN),
        mat_curve.final_loss().unwrap_or(f64::NAN)
    );

    // Joint normalization (paper scales the max point to 1).
    let max = naive_curve
        .points()
        .iter()
        .chain(mat_curve.points())
        .map(|p| p.loss)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    for (name, curve) in [("naive", &naive_curve), ("materialized", &mat_curve)] {
        let rows: Vec<String> = curve
            .points()
            .iter()
            .map(|p| {
                format!(
                    "{:.4},{},{:.6}",
                    p.elapsed.as_secs_f64(),
                    p.samples,
                    p.loss / max
                )
            })
            .collect();
        print_csv(
            &format!("fig4b_{name}"),
            "elapsed_s,samples,normalized_loss",
            &rows,
        );
    }
    let ratio =
        naive_curve.final_loss().unwrap_or(f64::NAN) / mat_curve.final_loss().unwrap_or(f64::NAN);
    println!(
        "\nloss ratio at budget end (naive / materialized): {ratio:.1}x\n\
         Expected shape (paper): the materialized curve sits far below the \
         naive one at every time point."
    );
}
