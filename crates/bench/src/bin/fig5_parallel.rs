//! E3 — Figure 5: parallelizing query evaluation.
//!
//! Runs 1–8 parallel MCMC chains (identical copies of the initial world,
//! distinct seeds, each burned in), 100 samples per chain on Query 1, and
//! reports the squared error of the averaged marginals against a
//! multi-chain long-run ground truth (the paper's own reference is "eight
//! parallel chains for ten-thousand samples each"), next to the ideal 1/n
//! line.
//!
//! Paper-reported shape: error drops at least linearly with chains; eight
//! chains reduce it "by slightly more than a factor of eight" (super-linear,
//! because cross-chain samples are more independent than within-chain).

use fgdb_bench::{estimate_ground_truth_multichain, print_csv, print_table, scaled, NerSetup};
use fgdb_core::{evaluate_parallel, squared_error, QueryEvaluator};
use fgdb_relational::algebra::paper_queries;

fn main() {
    let tokens = scaled(20_000);
    let k = 10_000;
    let samples_per_chain = 100;
    let max_chains = 8;
    println!(
        "E3 / Fig 5: parallel evaluation, Query 1, ~{tokens} tuples, \
         {samples_per_chain} samples/chain, k={k}"
    );

    let setup = NerSetup::build_soft(tokens, 5);
    let plan = paper_queries::query1("TOKEN");
    let truth = estimate_ground_truth_multichain(&setup, &plan, 8, 1_500, k, 90_000);
    let burn = setup.default_burn();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut err1 = None;
    for chains in 1..=max_chains {
        // Average the marginals of `chains` burned-in evaluators.
        let tables = fgdb_mcmc::run_chains(chains, |c| {
            let mut pdb = setup.pdb_burned(1_000 + c as u64, burn);
            let mut eval = QueryEvaluator::materialized(plan.clone(), &pdb, k).expect("plan");
            eval.run(&mut pdb, samples_per_chain).expect("chain run");
            eval.marginals().clone()
        });
        let avg = fgdb_core::MarginalTable::average(&tables);
        let err = squared_error(&avg, &truth);
        let base = *err1.get_or_insert(err);
        let ideal = base / chains as f64;
        rows.push(vec![
            chains.to_string(),
            format!("{err:.4}"),
            format!("{ideal:.4}"),
            format!("{:.2}", base / err),
        ]);
        csv.push(format!("{chains},{err:.6},{ideal:.6}"));
        println!("  {chains} chain(s): squared error {err:.4}");
    }
    print_table(
        "Fig 5: squared error vs number of chains",
        &["chains", "sq_error", "ideal_1_over_n", "improvement"],
        &rows,
    );
    print_csv("fig5", "chains,sq_error,ideal", &csv);

    // Keep the library's one-call parallel API exercised too.
    let _ = evaluate_parallel(
        2,
        |c| setup.pdb_burned(7_000 + c as u64, burn),
        &plan,
        10,
        k,
    )
    .expect("parallel API");

    println!(
        "\nExpected shape (paper): error at n chains tracks (or beats) the \
         ideal 1/n line — super-linear gains from cross-chain independence."
    );
}
