//! # fgdb-bench — experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md §4
//! and EXPERIMENTS.md). This library holds the shared plumbing: scaled
//! corpus construction, trained-model caching, ground-truth estimation by
//! long sampler runs (the paper's §5.2 methodology), and text/CSV reporting.
//!
//! Every binary accepts the `FGDB_SCALE` environment variable (default 1.0):
//! experiment sizes are multiplied by it, so `FGDB_SCALE=50` approaches
//! paper scale while the default finishes in minutes on a laptop.

pub mod report;

pub use report::Report;

use fgdb_core::{
    build_ner_pdb, train_ner_model, MarginalTable, NerProposerConfig, ProbabilisticDB,
    QueryEvaluator,
};
use fgdb_ie::{Corpus, CorpusConfig, Crf, TokenSeqData};
use fgdb_relational::{Plan, Tuple};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Reads the global scale factor from `FGDB_SCALE` (default 1.0).
pub fn scale_factor() -> f64 {
    std::env::var("FGDB_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scales a size by `FGDB_SCALE`.
pub fn scaled(n: usize) -> usize {
    ((n as f64) * scale_factor()).round().max(1.0) as usize
}

/// A corpus plus a trained skip-chain CRF at a given token count.
pub struct NerSetup {
    /// The synthetic corpus.
    pub corpus: Corpus,
    /// Shared observed data.
    pub data: Arc<TokenSeqData>,
    /// Trained model (shared across chains).
    pub model: Arc<Crf>,
}

impl NerSetup {
    /// Generates a corpus of ≈ `tokens` tokens and trains a skip-chain CRF
    /// with SampleRank (§5.2). Deterministic in `seed`.
    pub fn build(tokens: usize, seed: u64) -> NerSetup {
        let mut cfg = CorpusConfig::with_total_tokens(tokens);
        cfg.seed = seed;
        let corpus = Corpus::generate(&cfg);
        let data = TokenSeqData::from_corpus(&corpus, 8);
        let mut model = Crf::skip_chain(Arc::clone(&data));
        // Moment-matching initialization + a SampleRank refinement pass.
        model.seed_from_truth(&corpus, 2.0);
        let steps = 50_000.min(corpus.num_tokens() * 10);
        train_ner_model(&corpus, &mut model, steps, seed ^ 0x7a11).expect("SampleRank training");
        NerSetup {
            corpus,
            data,
            model: Arc::new(model),
        }
    }

    /// Like [`NerSetup::build`] but with a *softer* model: moment-matched
    /// weights only, no SampleRank sharpening. The posterior is flatter, so
    /// chains mix quickly — the right regime for experiments that study
    /// sampler variance (Fig. 5) rather than answer quality.
    pub fn build_soft(tokens: usize, seed: u64) -> NerSetup {
        let mut cfg = CorpusConfig::with_total_tokens(tokens);
        cfg.seed = seed;
        let corpus = Corpus::generate(&cfg);
        let data = TokenSeqData::from_corpus(&corpus, 8);
        let mut model = Crf::skip_chain(Arc::clone(&data));
        model.seed_from_truth(&corpus, 1.0);
        NerSetup {
            corpus,
            data,
            model: Arc::new(model),
        }
    }

    /// Mounts a fresh probabilistic database (its own copy of the stored
    /// world) with the given chain seed.
    pub fn pdb(&self, chain_seed: u64) -> ProbabilisticDB<Arc<Crf>> {
        build_ner_pdb(
            &self.corpus,
            Arc::clone(&self.model),
            &NerProposerConfig::default(),
            chain_seed,
        )
    }

    /// Mounts a probabilistic database and burns it in for `burn` MH steps
    /// before any evaluator attaches. All worlds start at the deterministic
    /// all-"O" labelling; discarding the approach to the stationary region
    /// keeps initialization bias out of marginal estimates (standard MCMC
    /// practice; the paper's very long runs amortize it implicitly).
    pub fn pdb_burned(&self, chain_seed: u64, burn: usize) -> ProbabilisticDB<Arc<Crf>> {
        let mut pdb = self.pdb(chain_seed);
        pdb.step(burn).expect("burn-in");
        pdb
    }

    /// A reasonable burn-in for this corpus: enough steps for several full
    /// sweeps over the hidden variables.
    pub fn default_burn(&self) -> usize {
        self.corpus.num_tokens() * 10
    }
}

/// Estimates ground-truth marginals the way the paper does (§5.2): a long
/// run of the (materialized) sampler, burned in. Returns the probability map.
pub fn estimate_ground_truth(
    setup: &NerSetup,
    plan: &Plan,
    samples: usize,
    k: usize,
    seed: u64,
) -> HashMap<Tuple, f64> {
    let mut pdb = setup.pdb_burned(seed, setup.default_burn());
    let mut eval = QueryEvaluator::materialized(plan.clone(), &pdb, k).expect("plan validates");
    eval.run(&mut pdb, samples).expect("ground truth run");
    eval.marginals().as_map()
}

/// Ground truth averaged over several burned-in chains (the paper obtains
/// its Fig. 5 reference "by averaging eight parallel chains").
pub fn estimate_ground_truth_multichain(
    setup: &NerSetup,
    plan: &Plan,
    chains: usize,
    samples_per_chain: usize,
    k: usize,
    seed: u64,
) -> HashMap<Tuple, f64> {
    let tables: Vec<MarginalTable> = fgdb_mcmc::run_chains(chains, |c| {
        let mut pdb = setup.pdb_burned(seed + c as u64, setup.default_burn());
        let mut eval = QueryEvaluator::materialized(plan.clone(), &pdb, k).expect("plan validates");
        eval.run(&mut pdb, samples_per_chain).expect("truth chain");
        eval.marginals().clone()
    });
    MarginalTable::average(&tables)
}

/// Squared error of a marginal table against a truth map.
pub fn loss_against(table: &MarginalTable, truth: &HashMap<Tuple, f64>) -> f64 {
    fgdb_core::squared_error(&table.as_map(), truth)
}

/// Pretty-prints an aligned table with a header.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Emits a CSV block to stdout, fenced so humans can grep it out.
pub fn print_csv(name: &str, header: &str, rows: &[String]) {
    println!("\n--- csv:{name} ---");
    println!("{header}");
    for r in rows {
        println!("{r}");
    }
    println!("--- end:{name} ---");
}

/// Runs a closure and returns `(result, elapsed seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdb_relational::algebra::paper_queries;

    #[test]
    fn setup_builds_and_samples() {
        let setup = NerSetup::build(800, 1);
        assert!(setup.corpus.num_tokens() >= 400);
        let mut pdb = setup.pdb(2);
        let plan = paper_queries::query1("TOKEN");
        let mut eval = QueryEvaluator::materialized(plan.clone(), &pdb, 100).unwrap();
        eval.run(&mut pdb, 5).unwrap();
        assert_eq!(eval.marginals().samples(), 6);

        let truth = estimate_ground_truth(&setup, &plan, 20, 100, 3);
        let loss = loss_against(eval.marginals(), &truth);
        assert!(loss.is_finite());
    }

    #[test]
    fn scale_factor_defaults_to_one() {
        // May be overridden by the environment in CI; just sanity-check.
        let s = scale_factor();
        assert!(s > 0.0);
        assert_eq!(scaled(100), ((100_f64) * s).round() as usize);
    }
}
