//! Machine-readable experiment reports.
//!
//! Every harness binary prints human tables and fenced CSV, and by default
//! additionally writes a structured `BENCH_<experiment>.json` report to the
//! current directory (the repo root under `cargo run`/`cargo bench`), so
//! perf numbers accrue per run without scraping stdout. Set the
//! `FGDB_JSON_OUT` environment variable to redirect the output directory,
//! or to the empty string to disable file output.

use serde::Serialize;
use std::path::PathBuf;

/// One experiment's structured result: a named table of rows.
#[derive(Serialize, Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. "fig4a").
    pub experiment: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows, stringly-typed to match the CSV the binaries print.
    pub rows: Vec<Vec<String>>,
    /// Free-form parameters (scale factor, k, sizes…).
    pub params: Vec<(String, String)>,
}

impl Report {
    /// Creates a report.
    pub fn new(experiment: &str, columns: &[&str]) -> Self {
        Report {
            experiment: experiment.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            params: Vec::new(),
        }
    }

    /// Records a parameter.
    pub fn param(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
        self
    }

    /// Serializes to a JSON string.
    ///
    /// The sanctioned dependency set includes `serde` (the derive above
    /// makes [`Report`] consumable by any serde backend downstream) but not
    /// `serde_json`, so this small fixed-shape emitter handles the built-in
    /// file output. All leaf values are strings; escaping covers the JSON
    /// string escapes.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let str_list = |items: &[String]| {
            items
                .iter()
                .map(|s| format!("\"{}\"", esc(s)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let rows = self
            .rows
            .iter()
            .map(|r| format!("    [{}]", str_list(r)))
            .collect::<Vec<_>>()
            .join(",\n");
        let params = self
            .params
            .iter()
            .map(|(k, v)| format!("    {{\"key\": \"{}\", \"value\": \"{}\"}}", esc(k), esc(v)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"experiment\": \"{}\",\n  \"columns\": [{}],\n  \"rows\": [\n{}\n  ],\n  \"params\": [\n{}\n  ]\n}}\n",
            esc(&self.experiment),
            str_list(&self.columns),
            rows,
            params
        )
    }

    /// Writes `<dir>/BENCH_<experiment>.json`, where `dir` defaults to the
    /// workspace root and can be redirected via the `FGDB_JSON_OUT`
    /// environment variable (empty value disables file output) — the same
    /// resolution the criterion shim uses, via [`criterion::json_out_dir`].
    /// Returns the path written.
    pub fn write_if_configured(&self) -> Option<PathBuf> {
        let dir = criterion::json_out_dir()?;
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, self.to_json()).ok()?;
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("fig_test", &["x", "y"]);
        r.param("k", 2000).param("scale", 1.0);
        r.row(vec!["1".into(), "2.5".into()]);
        r.row(vec!["2".into(), "1.25".into()]);
        r
    }

    #[test]
    fn json_round_trips_structure() {
        let j = sample().to_json();
        assert!(j.contains("\"experiment\": \"fig_test\""));
        assert!(j.contains("\"columns\""));
        assert!(j.contains("2.5"));
        assert!(j.contains("\"k\""));
    }

    #[test]
    fn write_respects_env() {
        let dir = std::env::temp_dir().join("fgdb_report_test");
        // Empty value → explicit opt-out.
        std::env::set_var("FGDB_JSON_OUT", "");
        assert!(sample().write_if_configured().is_none());
        // Set → BENCH_-prefixed file written there.
        std::env::set_var("FGDB_JSON_OUT", &dir);
        let path = sample().write_if_configured().expect("written");
        assert!(path.ends_with("BENCH_fig_test.json"));
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("fig_test"));
        std::env::remove_var("FGDB_JSON_OUT");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
