//! Criterion bench E10: view-maintenance delta application vs full
//! recomputation, per operator family, across database sizes and delta
//! sizes — the microscopic version of Fig. 4's macro result, and the
//! ablation for the design choice of maintaining every operator
//! incrementally (selection, grouped filtered aggregates, self-join).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgdb_relational::algebra::paper_queries;
use fgdb_relational::{
    execute_simple, Database, DeltaSet, MaterializedView, Plan, Schema, Tuple, Value, ValueType,
};
use std::sync::Arc;

const LABELS: [&str; 4] = ["O", "B-PER", "B-ORG", "B-LOC"];

fn build_token_db(n: usize) -> Database {
    let schema = Schema::from_pairs(&[
        ("tok_id", ValueType::Int),
        ("doc_id", ValueType::Int),
        ("string", ValueType::Str),
        ("label", ValueType::Str),
        ("truth", ValueType::Str),
    ])
    .unwrap()
    .with_primary_key("tok_id")
    .unwrap();
    let mut db = Database::new();
    db.create_relation("TOKEN", schema).unwrap();
    let rel = db.relation_mut("TOKEN").unwrap();
    for i in 0..n {
        let label = LABELS[i % 4];
        let string = if i % 97 == 0 {
            "Boston".to_string()
        } else {
            format!("w{}", i % 500)
        };
        rel.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Int((i / 50) as i64),
            Value::str(string),
            Value::str(label),
            Value::str(label),
        ]))
        .unwrap();
    }
    db
}

/// Applies `delta_size` round-trip label flips as one batch.
fn make_delta(db: &mut Database, delta_size: usize, tick: &mut usize) -> DeltaSet {
    let mut deltas = DeltaSet::new();
    let name: Arc<str> = Arc::from("TOKEN");
    let rel = db.relation_mut("TOKEN").unwrap();
    let n = rel.len();
    for j in 0..delta_size {
        *tick += 1;
        let rid = rel
            .find_by_pk(&Value::Int(((*tick * 31 + j) % n) as i64))
            .unwrap();
        let new_label = LABELS[(*tick + j) % 4];
        let (old, new) = rel.update_field(rid, 3, Value::str(new_label)).unwrap();
        deltas.record_update(&name, old, new);
    }
    deltas
}

fn bench_view_vs_exec(c: &mut Criterion) {
    for (qname, plan) in [
        ("query1_select_project", paper_queries::query1("TOKEN")),
        ("query3_grouped_counts", paper_queries::query3("TOKEN")),
        ("query4_self_join", paper_queries::query4("TOKEN")),
    ] {
        let mut group = c.benchmark_group(format!("view_maintenance/{qname}"));
        for &n in &[10_000usize, 100_000] {
            // Full recomputation cost at this size.
            let db = build_token_db(n);
            let plan_for_exec: Plan = plan.clone();
            group.bench_with_input(BenchmarkId::new("full_exec", n), &(), |b, ()| {
                b.iter(|| execute_simple(&plan_for_exec, &db).unwrap());
            });
            // Delta-apply cost (|Δ| = 16) at this size.
            let mut db = build_token_db(n);
            let mut view = MaterializedView::new(&plan, &db).unwrap();
            let mut tick = 0usize;
            group.bench_with_input(BenchmarkId::new("delta_apply_16", n), &(), |b, ()| {
                b.iter(|| {
                    let d = make_delta(&mut db, 16, &mut tick);
                    view.apply_delta(&d)
                });
            });
        }
        group.finish();
    }
}

fn bench_delta_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_maintenance/delta_size_sweep_q1");
    let plan = paper_queries::query1("TOKEN");
    let mut db = build_token_db(50_000);
    let mut view = MaterializedView::new(&plan, &db).unwrap();
    let mut tick = 0usize;
    for &delta in &[1usize, 8, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(delta), &(), |b, ()| {
            b.iter(|| {
                let d = make_delta(&mut db, delta, &mut tick);
                view.apply_delta(&d)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_view_vs_exec, bench_delta_size_sweep
}
criterion_main!(benches);
