//! Criterion bench: synthetic corpus generation and database loading
//! throughput — the substrate setup cost amortized across every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fgdb_ie::{Corpus, CorpusConfig, TokenSeqData};

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus");
    for &tokens in &[10_000usize, 100_000] {
        let cfg = CorpusConfig::with_total_tokens(tokens);
        group.throughput(Throughput::Elements(tokens as u64));
        group.bench_with_input(BenchmarkId::new("generate", tokens), &(), |b, ()| {
            b.iter(|| Corpus::generate(&cfg));
        });
        let corpus = Corpus::generate(&cfg);
        group.bench_with_input(BenchmarkId::new("to_database", tokens), &(), |b, ()| {
            b.iter(|| corpus.to_database("TOKEN"));
        });
        group.bench_with_input(BenchmarkId::new("token_seq_data", tokens), &(), |b, ()| {
            b.iter(|| TokenSeqData::from_corpus(&corpus, 8));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generate
}
criterion_main!(benches);
