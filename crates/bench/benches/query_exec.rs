//! Criterion bench: the full (naive) executor — the per-sample cost
//! Algorithm 3 pays, broken down by query shape. Linear growth here is the
//! denominator of Fig. 4's speedups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fgdb_relational::algebra::paper_queries;
use fgdb_relational::{execute_simple, Database, Expr, Plan, Schema, Tuple, Value, ValueType};

const LABELS: [&str; 4] = ["O", "B-PER", "B-ORG", "B-LOC"];

fn build_token_db(n: usize, with_string_index: bool) -> Database {
    let schema = Schema::from_pairs(&[
        ("tok_id", ValueType::Int),
        ("doc_id", ValueType::Int),
        ("string", ValueType::Str),
        ("label", ValueType::Str),
        ("truth", ValueType::Str),
    ])
    .unwrap()
    .with_primary_key("tok_id")
    .unwrap();
    let mut db = Database::new();
    db.create_relation("TOKEN", schema).unwrap();
    {
        let rel = db.relation_mut("TOKEN").unwrap();
        for i in 0..n {
            let label = LABELS[i % 4];
            rel.insert(Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int((i / 50) as i64),
                Value::str(format!("w{}", i % 300)),
                Value::str(label),
                Value::str(label),
            ]))
            .unwrap();
        }
        if with_string_index {
            rel.create_index("string").unwrap();
        }
    }
    db
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_exec");
    for &n in &[10_000usize, 50_000] {
        let db = build_token_db(n, false);
        for (name, plan) in [
            ("query1", paper_queries::query1("TOKEN")),
            ("query2", paper_queries::query2("TOKEN")),
            ("query3", paper_queries::query3("TOKEN")),
            ("query4", paper_queries::query4("TOKEN")),
        ] {
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(name, n), &(), |b, ()| {
                b.iter(|| execute_simple(&plan, &db).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_index_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_vs_scan");
    let n = 50_000;
    let plan = Plan::scan("TOKEN").filter(Expr::col("string").eq(Expr::lit("w42")));
    for (name, indexed) in [("scan", false), ("index_probe", true)] {
        let db = build_token_db(n, indexed);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| execute_simple(&plan, &db).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_queries, bench_index_vs_scan
}
criterion_main!(benches);
