//! Criterion bench: MH walk-step cost vs database size.
//!
//! The flatness of these curves is the operational content of Fig. 9 /
//! Appendix 9.2 — a walk step evaluates a constant number of factors, so
//! its cost must not grow with the number of tuples. Benchmarks both the
//! linear-chain and the (denser) skip-chain model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fgdb_ie::{Corpus, CorpusConfig, Crf, TokenSeqData};
use fgdb_mcmc::{Chain, UniformRelabel};
use std::sync::Arc;

fn bench_mh_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("mh_walk_step");
    for &tokens in &[2_000usize, 20_000, 100_000] {
        let corpus = Corpus::generate(&CorpusConfig::with_total_tokens(tokens));
        let data = TokenSeqData::from_corpus(&corpus, 8);
        for skip in [false, true] {
            let mut model = if skip {
                Crf::skip_chain(Arc::clone(&data))
            } else {
                Crf::linear_chain(Arc::clone(&data))
            };
            model.seed_from_truth(&corpus, 1.0);
            let model = Arc::new(model);
            let vars = model.variables();
            let world = model.new_world();
            let mut chain = Chain::new(
                Arc::clone(&model),
                Box::new(UniformRelabel::new(vars)),
                world,
                7,
            );
            let name = if skip { "skip_chain" } else { "linear_chain" };
            group.throughput(Throughput::Elements(1_000));
            group.bench_with_input(BenchmarkId::new(name, corpus.num_tokens()), &(), |b, ()| {
                b.iter(|| chain.run(1_000));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mh_step
}
criterion_main!(benches);
