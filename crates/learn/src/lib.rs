//! # fgdb-learn — SampleRank parameter estimation
//!
//! §5.2 of Wick, McCallum & Miklau (VLDB 2010): factor weights are learned
//! with SampleRank (reference 32 of the paper), a perceptron-style method riding the MH proposal
//! stream — "avoiding the need to tune weights by hand" (§3). [`objective`]
//! defines ground-truth scoring (the TRUTH column of the TOKEN relation);
//! [`samplerank`] performs the atomic-gradient updates.

pub mod objective;
pub mod samplerank;

pub use objective::{HammingObjective, Objective};
pub use samplerank::{train, Drive, SampleRankConfig, TrainStats, WeightAverager};
