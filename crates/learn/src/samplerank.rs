//! SampleRank — learning factor weights from atomic gradients (§5.2, reference 32 of the paper).
//!
//! "We train the model using one-million steps of SampleRank, a training
//! method based on MH. The method is extremely quick, learning all
//! parameters in a matter of minutes."
//!
//! SampleRank piggybacks on the MH walk: every proposal yields a *pair* of
//! neighboring worlds (w, w'). Whenever the model's ranking of the pair
//! (by neighborhood score) disagrees with the ground-truth objective's
//! ranking, the weights take a perceptron step toward the truth-preferred
//! world:
//!
//! ```text
//! θ ← θ + η · (φ(w_good) − φ(w_bad))
//! ```
//!
//! where φ are the neighborhood sufficient statistics — because the two
//! worlds differ only locally, the feature difference is sparse and each
//! update is O(|neighborhood|), independent of database size.

use crate::objective::Objective;
use fgdb_graph::{EvalStats, FeatureVector, Learnable, ModelError, VariableId, World};
use fgdb_mcmc::{DynRng, Proposer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the training chain decides to move to the proposed world.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Drive {
    /// Move when the objective does not get worse (oracle-guided; fast,
    /// the common choice for SampleRank training runs).
    Objective,
    /// Move by the model's own MH accept test (uses the weights as they are
    /// being learned).
    Model,
}

/// Configuration for a SampleRank run.
#[derive(Clone, Debug)]
pub struct SampleRankConfig {
    /// Perceptron learning rate η.
    pub learning_rate: f64,
    /// Number of proposals (the paper uses one million).
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
    /// Chain transition policy.
    pub drive: Drive,
    /// Required score separation: the truth-preferred world must outscore
    /// the other by at least this much, or an update fires. A margin of 0
    /// reproduces the bare perceptron; positive margins keep pushing until
    /// wrong moves are *confidently* down-ranked, which is what makes the
    /// learned posterior sharp at query time.
    pub margin: f64,
}

impl Default for SampleRankConfig {
    fn default() -> Self {
        SampleRankConfig {
            learning_rate: 0.1,
            steps: 10_000,
            seed: 0x5a3717,
            drive: Drive::Objective,
            margin: 1.0,
        }
    }
}

/// Counters reported by a training run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrainStats {
    /// Proposals examined.
    pub steps: u64,
    /// Weight updates performed (model/objective ranking disagreements).
    pub updates: u64,
    /// Proposals the chain moved on.
    pub moves: u64,
    /// Objective value of the final world.
    pub final_objective: f64,
}

/// Trains `model` in place against `objective`, walking `world` with
/// `proposer`. Returns counters; the world ends wherever the chain left it.
///
/// # Errors
/// Propagates [`ModelError`] from the model's gradient application (e.g. a
/// feature id outside the weight layout). The walk stops at the failing
/// step; weights hold the last successfully applied update.
pub fn train<M, O>(
    model: &mut M,
    world: &mut World,
    proposer: &mut dyn Proposer,
    objective: &O,
    config: &SampleRankConfig,
) -> Result<TrainStats, ModelError>
where
    M: Learnable,
    O: Objective + ?Sized,
{
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stats = TrainStats::default();
    let mut eval = EvalStats::default();
    let mut touched: Vec<VariableId> = Vec::new();

    for _ in 0..config.steps {
        stats.steps += 1;
        let proposal = {
            let mut dyn_rng = DynRng::from(&mut rng);
            proposer.propose(world, &mut dyn_rng)
        };

        touched.clear();
        for (v, _) in &proposal.changes {
            if !touched.contains(v) {
                touched.push(*v);
            }
        }

        // Before-state: model score, objective, features over the touched
        // neighborhood.
        let score_before = model.score_neighborhood(world, &touched, &mut eval);
        let obj_before = objective.score_local(world, &touched);
        let feats_before = model.features_neighborhood(world, &touched);

        // Apply the proposal.
        let mut applied: Vec<(VariableId, usize)> = Vec::with_capacity(proposal.changes.len());
        for &(v, new) in &proposal.changes {
            let old = world.set(v, new);
            applied.push((v, old));
        }

        let score_after = model.score_neighborhood(world, &touched, &mut eval);
        let obj_after = objective.score_local(world, &touched);
        let feats_after = model.features_neighborhood(world, &touched);

        // Margin-perceptron update on ranking disagreement: the
        // truth-preferred world must win by at least `margin`.
        if obj_after > obj_before && score_after - score_before < config.margin {
            let grad = feats_after.minus(&feats_before);
            model.apply_gradient(&grad, config.learning_rate)?;
            stats.updates += 1;
        } else if obj_after < obj_before && score_before - score_after < config.margin {
            let grad = feats_before.minus(&feats_after);
            model.apply_gradient(&grad, config.learning_rate)?;
            stats.updates += 1;
        }

        // Chain transition.
        let accept = match config.drive {
            Drive::Objective => obj_after >= obj_before,
            Drive::Model => {
                let log_alpha = (score_after - score_before) + proposal.log_q_ratio;
                log_alpha >= 0.0 || rng.gen::<f64>().ln() < log_alpha
            }
        };
        if accept {
            stats.moves += 1;
        } else {
            for &(v, old) in applied.iter().rev() {
                world.set(v, old);
            }
        }
    }

    stats.final_objective = objective.score(world);
    Ok(stats)
}

/// Averaged-perceptron helper: accumulates weight snapshots so callers can
/// retrieve an averaged weight vector, which is markedly more stable than
/// the final iterate.
#[derive(Default, Debug, Clone)]
pub struct WeightAverager {
    sum: FeatureVector,
    snapshots: u64,
}

impl WeightAverager {
    /// Creates an empty averager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the current value of the listed features.
    ///
    /// # Errors
    /// Propagates [`ModelError`] for ids outside the model's layout. The
    /// failing snapshot contributes nothing — weights are read before any
    /// of them accumulate, so an error cannot leave a partial snapshot.
    pub fn record<M: Learnable>(
        &mut self,
        model: &M,
        feature_ids: impl Iterator<Item = u64>,
    ) -> Result<(), ModelError> {
        let mut read = Vec::new();
        for id in feature_ids {
            read.push((id, model.weight(id)?));
        }
        for (id, w) in read {
            self.sum.add(id, w);
        }
        self.snapshots += 1;
        Ok(())
    }

    /// Number of snapshots recorded.
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// Averaged weight of a feature.
    pub fn averaged(&self, feature: u64) -> f64 {
        if self.snapshots == 0 {
            0.0
        } else {
            self.sum.get(feature) / self.snapshots as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::HammingObjective;
    use fgdb_graph::{Domain, Model, VariableId};
    use fgdb_mcmc::UniformRelabel;

    /// A learnable unigram model: weight per (domain index) shared across
    /// variables; feature id = domain index; score of a neighborhood = sum
    /// of weights of the labels assigned there.
    struct Unigram {
        weights: Vec<f64>,
    }

    impl Model for Unigram {
        fn score_world(&self, world: &World, stats: &mut EvalStats) -> f64 {
            stats.factors_evaluated += world.num_variables() as u64;
            world.variables().map(|v| self.weights[world.get(v)]).sum()
        }
        fn score_neighborhood(
            &self,
            world: &World,
            vars: &[VariableId],
            stats: &mut EvalStats,
        ) -> f64 {
            stats.factors_evaluated += vars.len() as u64;
            vars.iter().map(|&v| self.weights[world.get(v)]).sum()
        }
    }

    impl Learnable for Unigram {
        fn features_neighborhood(&self, world: &World, vars: &[VariableId]) -> FeatureVector {
            let mut f = FeatureVector::new();
            for &v in vars {
                f.add(world.get(v) as u64, 1.0);
            }
            f
        }
        fn apply_gradient(&mut self, grad: &FeatureVector, lr: f64) -> Result<(), ModelError> {
            for (id, _) in grad.iter() {
                if id as usize >= self.weights.len() {
                    return Err(ModelError::FeatureOutOfRange {
                        id,
                        num_features: self.weights.len() as u64,
                    });
                }
            }
            for (id, g) in grad.iter() {
                self.weights[id as usize] += lr * g;
            }
            Ok(())
        }
        fn weight(&self, feature: u64) -> Result<f64, ModelError> {
            self.weights
                .get(feature as usize)
                .copied()
                .ok_or(ModelError::FeatureOutOfRange {
                    id: feature,
                    num_features: self.weights.len() as u64,
                })
        }
    }

    fn setup(n: usize) -> (Unigram, World, HammingObjective) {
        let d = Domain::of_labels(&["wrong", "right", "other"]);
        let w = World::new(vec![d; n]);
        // Truth: everything labelled index 1.
        let obj = HammingObjective::new(vec![1; n]);
        (
            Unigram {
                weights: vec![0.0; 3],
            },
            w,
            obj,
        )
    }

    #[test]
    fn samplerank_learns_truth_preferring_weights() {
        let (mut model, mut world, obj) = setup(20);
        let vars: Vec<_> = (0..20).map(VariableId).collect();
        let mut proposer = UniformRelabel::new(vars);
        let cfg = SampleRankConfig {
            steps: 5000,
            seed: 7,
            ..Default::default()
        };
        let stats = train(&mut model, &mut world, &mut proposer, &obj, &cfg).unwrap();
        assert!(
            stats.updates > 0,
            "ranking disagreements must trigger updates"
        );
        // The "right" label's weight must dominate.
        assert!(
            model.weight(1).unwrap() > model.weight(0).unwrap()
                && model.weight(1).unwrap() > model.weight(2).unwrap(),
            "weights: {:?}",
            model.weights
        );
        // Objective-driven chain should reach (near) perfect accuracy.
        assert!(
            obj.accuracy(&world) > 0.9,
            "accuracy {}",
            obj.accuracy(&world)
        );
    }

    #[test]
    fn learned_model_ranks_truth_above_corruption() {
        let (mut model, mut world, obj) = setup(10);
        let vars: Vec<_> = (0..10).map(VariableId).collect();
        let mut proposer = UniformRelabel::new(vars.clone());
        let cfg = SampleRankConfig {
            steps: 4000,
            seed: 3,
            ..Default::default()
        };
        train(&mut model, &mut world, &mut proposer, &obj, &cfg).unwrap();
        // Score the all-truth world vs one with a wrong label.
        let mut truth_world = world.clone();
        for &v in &vars {
            truth_world.set(v, 1);
        }
        let mut corrupted = truth_world.clone();
        corrupted.set(VariableId(0), 0);
        let mut s = EvalStats::default();
        assert!(model.score_world(&truth_world, &mut s) > model.score_world(&corrupted, &mut s));
    }

    #[test]
    fn model_drive_also_trains() {
        let (mut model, mut world, obj) = setup(15);
        let vars: Vec<_> = (0..15).map(VariableId).collect();
        let mut proposer = UniformRelabel::new(vars);
        let cfg = SampleRankConfig {
            steps: 8000,
            seed: 11,
            drive: Drive::Model,
            ..Default::default()
        };
        let stats = train(&mut model, &mut world, &mut proposer, &obj, &cfg).unwrap();
        assert!(stats.updates > 0);
        assert!(model.weight(1).unwrap() > model.weight(0).unwrap());
    }

    #[test]
    fn zero_steps_is_a_noop() {
        let (mut model, mut world, obj) = setup(5);
        let mut proposer = UniformRelabel::new((0..5).map(VariableId).collect());
        let cfg = SampleRankConfig {
            steps: 0,
            ..Default::default()
        };
        let stats = train(&mut model, &mut world, &mut proposer, &obj, &cfg).unwrap();
        assert_eq!(stats.steps, 0);
        assert_eq!(stats.updates, 0);
        assert_eq!(model.weight(0).unwrap(), 0.0);
    }

    #[test]
    fn weight_averager_averages() {
        let (mut model, _, _) = setup(1);
        let mut avg = WeightAverager::new();
        avg.record(&model, 0..3u64).unwrap();
        model.weights[1] = 2.0;
        avg.record(&model, 0..3u64).unwrap();
        assert!(avg.record(&model, 0..99u64).is_err());
        assert_eq!(avg.snapshots(), 2);
        assert_eq!(avg.averaged(1), 1.0);
        assert_eq!(avg.averaged(0), 0.0);
        assert_eq!(WeightAverager::new().averaged(5), 0.0);
    }
}
