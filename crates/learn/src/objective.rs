//! Training objectives — the ground-truth preference SampleRank learns from.
//!
//! §5.2 of the paper trains against labels stored in the TOKEN relation's
//! TRUTH attribute. An [`Objective`] scores how well a world agrees with
//! that truth; SampleRank only ever needs objective *differences* between a
//! world and its proposed modification, so objectives expose a local scoring
//! method over the changed variables — mirroring how the model itself is
//! scored by neighborhood.

use fgdb_graph::{VariableId, World};

/// A ground-truth scoring function over worlds (higher is better).
pub trait Objective: Send + Sync {
    /// Global objective value (used for reporting/eval).
    fn score(&self, world: &World) -> f64;

    /// Objective restricted to `vars`: the contribution of just those
    /// variables. Differences of this quantity across a local change equal
    /// differences of the global objective.
    fn score_local(&self, world: &World, vars: &[VariableId]) -> f64;
}

/// Per-variable agreement with a fixed truth assignment (Hamming objective):
/// the number of variables set to their true value.
pub struct HammingObjective {
    truth: Vec<u16>,
}

impl HammingObjective {
    /// Builds the objective from a truth assignment (domain indexes, one per
    /// variable).
    pub fn new(truth: Vec<u16>) -> Self {
        HammingObjective { truth }
    }

    /// Builds from a world holding the truth (e.g. a world initialized from
    /// the TRUTH column).
    pub fn from_world(truth_world: &World) -> Self {
        HammingObjective {
            truth: truth_world.assignment().to_vec(),
        }
    }

    /// True value (domain index) of a variable.
    pub fn truth_of(&self, v: VariableId) -> usize {
        self.truth[v.index()] as usize
    }

    /// Fraction of variables correct — the accuracy reported in training
    /// experiments.
    pub fn accuracy(&self, world: &World) -> f64 {
        if self.truth.is_empty() {
            return 1.0;
        }
        self.score(world) / self.truth.len() as f64
    }
}

impl Objective for HammingObjective {
    fn score(&self, world: &World) -> f64 {
        assert_eq!(world.num_variables(), self.truth.len());
        world
            .assignment()
            .iter()
            .zip(&self.truth)
            .filter(|(a, t)| a == t)
            .count() as f64
    }

    fn score_local(&self, world: &World, vars: &[VariableId]) -> f64 {
        vars.iter()
            .filter(|v| world.get(**v) == self.truth[v.index()] as usize)
            .count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdb_graph::Domain;

    fn world3() -> World {
        let d = Domain::of_labels(&["a", "b", "c"]);
        World::new(vec![d; 3])
    }

    #[test]
    fn global_score_counts_matches() {
        let mut w = world3();
        let obj = HammingObjective::new(vec![0, 1, 2]);
        assert_eq!(obj.score(&w), 1.0); // only var 0 matches
        w.set(VariableId(1), 1);
        assert_eq!(obj.score(&w), 2.0);
        assert!((obj.accuracy(&w) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn local_differences_equal_global_differences() {
        let mut w = world3();
        let obj = HammingObjective::new(vec![2, 1, 0]);
        let vars = [VariableId(0), VariableId(2)];
        let g0 = obj.score(&w);
        let l0 = obj.score_local(&w, &vars);
        w.set(VariableId(0), 2);
        let g1 = obj.score(&w);
        let l1 = obj.score_local(&w, &vars);
        assert_eq!(g1 - g0, l1 - l0);
    }

    #[test]
    fn from_world_snapshot() {
        let mut truth = world3();
        truth.set(VariableId(2), 1);
        let obj = HammingObjective::from_world(&truth);
        assert_eq!(obj.truth_of(VariableId(2)), 1);
        assert_eq!(obj.score(&truth), 3.0);
    }
}
