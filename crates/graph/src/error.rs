//! Typed errors for model/world operations.
//!
//! The query/serving path must never abort an engine thread on malformed
//! input: a proposal naming a value outside a variable's domain, or a model
//! addressed with a feature id outside its weight layout, are *data* errors
//! and surface as [`ModelError`] instead of panics. `fgdb-core` propagates
//! them through its `EvaluateError`.

use crate::variable::VariableId;
use std::fmt;

/// A recoverable model/world addressing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A value was assigned to a variable whose domain does not contain it.
    ValueNotInDomain {
        /// The variable being assigned.
        variable: VariableId,
        /// The offending value, rendered.
        value: String,
    },
    /// A feature id outside the model's weight layout was addressed.
    FeatureOutOfRange {
        /// The offending feature id.
        id: u64,
        /// Number of features the model actually has.
        num_features: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ValueNotInDomain { variable, value } => {
                write!(f, "value {value} not in domain of {variable}")
            }
            ModelError::FeatureOutOfRange { id, num_features } => {
                write!(f, "feature id {id} out of range (model has {num_features})")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = ModelError::ValueNotInDomain {
            variable: VariableId(3),
            value: "B-ORG".into(),
        };
        assert!(e.to_string().contains("B-ORG"));
        let e = ModelError::FeatureOutOfRange {
            id: 99,
            num_features: 10,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("10"));
    }
}
