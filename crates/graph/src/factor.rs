//! Factors — compatibility functions over variable subsets (§3.1).
//!
//! A factor `ψ : xᵐ × yⁿ → ℝ⁺` scores an assignment to its argument
//! variables. The paper computes factors as log-linear combinations
//! `ψₖ = exp(φₖ · θₖ)` of feature functions and learned weights; we store
//! log-scores directly (`log ψ = φ · θ`).
//!
//! This module provides the explicit-factor machinery used by the generic
//! [`crate::graph::FactorGraph`]: a [`Factor`] trait plus two concrete
//! factor kinds — dense [`TableFactor`]s (a score per joint assignment, the
//! workhorse of small pedagogical graphs and exact-inference tests) and
//! [`FnFactor`]s wrapping arbitrary closures (how deterministic constraint
//! factors that "output 1 if the constraint is satisfied, and 0 if it is
//! violated" are expressed: log 0 = −∞ renders a world impossible).

use crate::variable::VariableId;
use crate::world::World;

/// A factor: a log-score over the joint assignment of its argument variables.
pub trait Factor: Send + Sync {
    /// The argument (hidden) variables of this factor.
    fn variables(&self) -> &[VariableId];

    /// Log-score of the factor under the current world.
    fn log_score(&self, world: &World) -> f64;

    /// Human-readable factor kind, for debugging.
    fn name(&self) -> &str {
        "factor"
    }
}

/// A dense factor table: one log-score per joint assignment, in row-major
/// order over the argument variables' domain indexes.
pub struct TableFactor {
    vars: Vec<VariableId>,
    /// Domain cardinalities of the argument variables, in order.
    card: Vec<usize>,
    /// Row-major log-score table of size `∏ card`.
    table: Vec<f64>,
    label: String,
}

impl TableFactor {
    /// Builds a table factor.
    ///
    /// # Panics
    /// Panics when the table size does not equal the product of cardinalities.
    pub fn new(
        vars: Vec<VariableId>,
        card: Vec<usize>,
        table: Vec<f64>,
        label: impl Into<String>,
    ) -> Self {
        assert_eq!(vars.len(), card.len(), "one cardinality per variable");
        let expect: usize = card.iter().product();
        assert_eq!(table.len(), expect, "table must cover the joint domain");
        TableFactor {
            vars,
            card,
            table,
            label: label.into(),
        }
    }

    /// Row-major index of the current joint assignment.
    fn index(&self, world: &World) -> usize {
        let mut idx = 0;
        for (v, c) in self.vars.iter().zip(&self.card) {
            let a = world.get(*v);
            debug_assert!(a < *c);
            idx = idx * c + a;
        }
        idx
    }

    /// Log-score for an explicit joint assignment (used by tests).
    pub fn log_score_for(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.vars.len());
        let mut idx = 0;
        for (a, c) in assignment.iter().zip(&self.card) {
            idx = idx * c + a;
        }
        self.table[idx]
    }
}

impl Factor for TableFactor {
    fn variables(&self) -> &[VariableId] {
        &self.vars
    }

    fn log_score(&self, world: &World) -> f64 {
        self.table[self.index(world)]
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// A factor computed by an arbitrary closure over the world.
///
/// Deterministic constraints return `f64::NEG_INFINITY` for violating
/// assignments, which zeroes the world's probability (Eq. 2: worlds with
/// `π(w) = 0` are impossible).
pub struct FnFactor<F> {
    vars: Vec<VariableId>,
    f: F,
    label: String,
}

impl<F: Fn(&World) -> f64 + Send + Sync> FnFactor<F> {
    /// Wraps a closure as a factor over `vars`.
    pub fn new(vars: Vec<VariableId>, f: F, label: impl Into<String>) -> Self {
        FnFactor {
            vars,
            f,
            label: label.into(),
        }
    }
}

impl<F: Fn(&World) -> f64 + Send + Sync> Factor for FnFactor<F> {
    fn variables(&self) -> &[VariableId] {
        &self.vars
    }

    fn log_score(&self, world: &World) -> f64 {
        (self.f)(world)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Builds the log-linear score `φ · θ` from feature values and weights —
/// the paper's `ψₖ(xᵐ, yⁿ) = exp(φₖ(xᵐ, yⁿ) · θₖ)` in log space.
#[inline]
pub fn log_linear(features: &[f64], weights: &[f64]) -> f64 {
    debug_assert_eq!(features.len(), weights.len());
    features.iter().zip(weights).map(|(f, w)| f * w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::Domain;

    fn two_var_world() -> World {
        let d = Domain::of_labels(&["a", "b", "c"]);
        World::new(vec![d.clone(), d])
    }

    #[test]
    fn table_factor_indexes_row_major() {
        let mut w = two_var_world();
        // table[i*3 + j] = 10i + j
        let table: Vec<f64> = (0..9).map(|k| (k / 3 * 10 + k % 3) as f64).collect();
        let f = TableFactor::new(
            vec![VariableId(0), VariableId(1)],
            vec![3, 3],
            table,
            "pair",
        );
        w.set(VariableId(0), 2);
        w.set(VariableId(1), 1);
        assert_eq!(f.log_score(&w), 21.0);
        assert_eq!(f.log_score_for(&[2, 1]), 21.0);
        assert_eq!(f.name(), "pair");
        assert_eq!(f.variables(), &[VariableId(0), VariableId(1)]);
    }

    #[test]
    #[should_panic(expected = "table must cover")]
    fn table_size_mismatch_panics() {
        TableFactor::new(vec![VariableId(0)], vec![3], vec![0.0; 2], "bad");
    }

    #[test]
    fn fn_factor_expresses_constraints() {
        let mut w = two_var_world();
        // Deterministic agreement constraint: both variables equal.
        let f = FnFactor::new(
            vec![VariableId(0), VariableId(1)],
            |w: &World| {
                if w.get(VariableId(0)) == w.get(VariableId(1)) {
                    0.0
                } else {
                    f64::NEG_INFINITY
                }
            },
            "agree",
        );
        assert_eq!(f.log_score(&w), 0.0);
        w.set(VariableId(1), 2);
        assert_eq!(f.log_score(&w), f64::NEG_INFINITY);
    }

    #[test]
    fn log_linear_dot_product() {
        assert_eq!(log_linear(&[1.0, 0.0, 2.0], &[0.5, 9.0, 0.25]), 1.0);
        assert_eq!(log_linear(&[], &[]), 0.0);
    }
}
