//! Random variables and their domains (§3.1 of the paper).
//!
//! Each uncertain database field is a hidden random variable `Yᵢ` with a
//! finite domain `DOM(Yᵢ)`; deterministic fields are observed variables fixed
//! to a constant. We represent hidden variables by dense integer ids and
//! their values by *indexes into a shared [`Domain`]* — a world is then a
//! compact vector of small integers, which keeps the MCMC inner loop free of
//! allocation.

use fgdb_relational::Value;
use std::fmt;
use std::sync::Arc;

/// Dense identifier of a hidden random variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VariableId(pub u32);

impl VariableId {
    /// Index into per-variable arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VariableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Y{}", self.0)
    }
}

/// A finite domain: the range of values a hidden variable may take.
///
/// Domains are shared (`Arc`) across the typically many variables that use
/// the same label set — e.g. all LABEL fields share the nine-value BIO
/// domain of §5.1.
#[derive(Debug, PartialEq, Eq)]
pub struct Domain {
    values: Vec<Value>,
}

impl Domain {
    /// Builds a domain from distinct values.
    ///
    /// # Panics
    /// Panics if values are empty or contain duplicates — a domain is a set.
    pub fn new(values: Vec<Value>) -> Arc<Self> {
        assert!(!values.is_empty(), "domain must be non-empty");
        for (i, v) in values.iter().enumerate() {
            assert!(!values[..i].contains(v), "duplicate domain value {v}");
        }
        Arc::new(Domain { values })
    }

    /// Builds a string-valued domain from labels.
    pub fn of_labels(labels: &[&str]) -> Arc<Self> {
        Domain::new(labels.iter().map(|l| Value::str(*l)).collect())
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Domains are never empty, but clippy likes the pair.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Value at index.
    #[inline]
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Checked value lookup: `None` when `idx` is outside the domain (the
    /// non-panicking accessor for paths fed by untrusted proposals).
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Index of a value, if present.
    pub fn index_of(&self, v: &Value) -> Option<usize> {
        self.values.iter().position(|x| x == v)
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_round_trips_values() {
        let d = Domain::of_labels(&["O", "B-PER", "I-PER"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.value(1).as_str(), Some("B-PER"));
        assert_eq!(d.index_of(&Value::str("I-PER")), Some(2));
        assert_eq!(d.index_of(&Value::str("nope")), None);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        Domain::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_domain_value_panics() {
        Domain::of_labels(&["a", "a"]);
    }

    #[test]
    fn variable_id_display_and_index() {
        let v = VariableId(7);
        assert_eq!(v.to_string(), "Y7");
        assert_eq!(v.index(), 7);
    }

    #[test]
    fn mixed_type_domain() {
        let d = Domain::new(vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
        assert_eq!(d.index_of(&Value::Int(2)), Some(2));
        assert_eq!(d.values().len(), 3);
    }
}
