//! Sparse feature vectors and the learnable-model interface.
//!
//! The paper's factors are log-linear, `ψₖ = exp(φₖ · θₖ)`, with weights θ
//! learned by SampleRank (§5.2, reference 32 of the paper). SampleRank needs, for any world and
//! changed-variable set, the *sufficient statistics* φ of the neighborhood
//! factors — so it can take perceptron-style steps `θ ← θ + η(φ(w⁺) − φ(w⁻))`
//! toward the world preferred by the ground-truth objective.
//!
//! [`FeatureVector`] is a sparse map from a model-defined feature id to its
//! value; [`Learnable`] is implemented by models whose weights live in a
//! flat addressable space.

use crate::error::ModelError;
use crate::model::Model;
use crate::variable::VariableId;
use crate::world::World;
use std::collections::HashMap;

/// A sparse vector over a model's feature space.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FeatureVector {
    values: HashMap<u64, f64>,
}

impl FeatureVector {
    /// Empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to feature `id` (entries cancel at zero).
    pub fn add(&mut self, id: u64, delta: f64) {
        let e = self.values.entry(id).or_insert(0.0);
        *e += delta;
        if *e == 0.0 {
            self.values.remove(&id);
        }
    }

    /// Feature value (zero when absent).
    pub fn get(&self, id: u64) -> f64 {
        self.values.get(&id).copied().unwrap_or(0.0)
    }

    /// Number of nonzero features.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when all features are zero.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(feature id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// `self − other`, the gradient direction of a SampleRank update.
    pub fn minus(&self, other: &FeatureVector) -> FeatureVector {
        let mut out = self.clone();
        for (id, v) in other.iter() {
            out.add(id, -v);
        }
        out
    }

    /// Scales all entries in place.
    pub fn scale(&mut self, s: f64) {
        if s == 0.0 {
            self.values.clear();
            return;
        }
        for v in self.values.values_mut() {
            *v *= s;
        }
    }

    /// Dot product with another sparse vector.
    pub fn dot(&self, other: &FeatureVector) -> f64 {
        let (small, big) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.iter().map(|(id, v)| v * big.get(id)).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.values.values().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// A model with learnable log-linear weights.
pub trait Learnable: Model {
    /// Sufficient statistics of all factors adjacent to `vars` under the
    /// current world — the φ that pair with the model's θ such that
    /// `score_neighborhood = φ · θ`.
    fn features_neighborhood(&self, world: &World, vars: &[VariableId]) -> FeatureVector;

    /// Applies `θ ← θ + lr · grad` for every feature id in `grad`.
    ///
    /// # Errors
    /// Returns [`ModelError::FeatureOutOfRange`] when `grad` addresses a
    /// feature id outside the model's weight layout — a malformed gradient
    /// must not abort the training thread. Implementations must leave the
    /// weights unchanged on error.
    fn apply_gradient(&mut self, grad: &FeatureVector, lr: f64) -> Result<(), ModelError>;

    /// Current weight of a feature (for inspection and tests).
    ///
    /// # Errors
    /// Returns [`ModelError::FeatureOutOfRange`] for ids outside the
    /// model's weight layout.
    fn weight(&self, feature: u64) -> Result<f64, ModelError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_cancel() {
        let mut f = FeatureVector::new();
        f.add(3, 1.5);
        f.add(3, -1.5);
        assert!(f.is_empty());
        assert_eq!(f.get(3), 0.0);
    }

    #[test]
    fn minus_is_gradient_direction() {
        let mut a = FeatureVector::new();
        a.add(1, 2.0);
        a.add(2, 1.0);
        let mut b = FeatureVector::new();
        b.add(2, 1.0);
        b.add(3, 4.0);
        let d = a.minus(&b);
        assert_eq!(d.get(1), 2.0);
        assert_eq!(d.get(2), 0.0);
        assert_eq!(d.get(3), -4.0);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn dot_product_symmetric() {
        let mut a = FeatureVector::new();
        a.add(1, 2.0);
        a.add(5, 3.0);
        let mut b = FeatureVector::new();
        b.add(5, 4.0);
        b.add(9, 1.0);
        assert_eq!(a.dot(&b), 12.0);
        assert_eq!(b.dot(&a), 12.0);
    }

    #[test]
    fn scale_and_norm() {
        let mut f = FeatureVector::new();
        f.add(0, 3.0);
        f.add(1, 4.0);
        assert_eq!(f.norm(), 5.0);
        f.scale(2.0);
        assert_eq!(f.norm(), 10.0);
        f.scale(0.0);
        assert!(f.is_empty());
    }

    #[test]
    fn iter_covers_entries() {
        let mut f = FeatureVector::new();
        f.add(7, 1.0);
        f.add(8, 2.0);
        let mut pairs: Vec<_> = f.iter().collect();
        pairs.sort_by_key(|(k, _)| *k);
        assert_eq!(pairs, vec![(7, 1.0), (8, 2.0)]);
    }
}
