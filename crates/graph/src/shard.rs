//! Sharding the factor graph for parallel intra-world sampling.
//!
//! §5.1 of the paper structures the NER model so that no factor crosses a
//! document boundary (transitions and skip edges are built per document).
//! That independence is exactly what lets one world be walked by several
//! MH chains at once: partition the variables so every factor's scope lies
//! inside a single part, and the neighborhood score of any proposal in part
//! `s` depends only on variables of part `s` — walkers over distinct parts
//! compose into a single valid chain over the joint world.
//!
//! [`ShardMap`] is that partition, [`FactorSpans`] is the model-side
//! enumeration of factor scopes it is validated against, and
//! [`ShardMap::validate`] is the proof obligation: **no factor spans
//! shards**. Everything downstream (per-shard walkers, delta queues, the
//! single merge point) relies on this invariant.

use crate::graph::FactorGraph;
use crate::variable::VariableId;
use std::fmt;
use std::ops::Range;

/// Errors constructing or validating a [`ShardMap`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// A map needs at least one variable and one shard.
    Empty,
    /// More shards requested than groups (or variables) to fill them.
    TooManyShards { shards: usize, groups: usize },
    /// Shard ids must be dense: every shard in `0..num_shards` non-empty.
    EmptyShard(u32),
    /// Groups passed to [`ShardMap::by_contiguous_groups`] must tile
    /// `0..num_variables` without gaps or overlaps.
    NonContiguousGroups { expected_start: usize, got: usize },
    /// A factor's scope crosses a shard boundary — the partition is not a
    /// valid sharding of this model.
    SpanningFactor {
        a: VariableId,
        shard_a: u32,
        b: VariableId,
        shard_b: u32,
    },
    /// A factor references a variable outside the map.
    UnmappedVariable(VariableId),
    /// The map covers a different number of variables than the world.
    WorldMismatch { map_vars: usize, world_vars: usize },
    /// An index does not fit the u32 shard/variable id space.
    IdOverflow(usize),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Empty => write!(f, "shard map needs at least one variable and shard"),
            ShardError::TooManyShards { shards, groups } => {
                write!(f, "{shards} shards requested but only {groups} groups")
            }
            ShardError::EmptyShard(s) => write!(f, "shard {s} has no variables"),
            ShardError::NonContiguousGroups {
                expected_start,
                got,
            } => write!(
                f,
                "groups must tile the variable range: expected start {expected_start}, got {got}"
            ),
            ShardError::SpanningFactor {
                a,
                shard_a,
                b,
                shard_b,
            } => write!(
                f,
                "factor spans shards: {a} in shard {shard_a}, {b} in shard {shard_b}"
            ),
            ShardError::UnmappedVariable(v) => {
                write!(f, "factor references {v}, which is outside the shard map")
            }
            ShardError::WorldMismatch {
                map_vars,
                world_vars,
            } => write!(
                f,
                "shard map covers {map_vars} variables but world has {world_vars}"
            ),
            ShardError::IdOverflow(i) => {
                write!(f, "index {i} exceeds the u32 shard/variable id space")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Enumeration of every multi-variable factor scope of a model, for shard
/// validation. Unary factors may be skipped — a single-variable scope cannot
/// span shards.
///
/// Explicit graphs iterate their factor list; lazy models (the CRF) iterate
/// their pair templates (transitions, skip edges) without materializing
/// factor objects.
pub trait FactorSpans {
    /// Calls `f` once per factor with that factor's variable scope.
    fn for_each_factor_span(&self, f: &mut dyn FnMut(&[VariableId]));
}

impl<T: FactorSpans + ?Sized> FactorSpans for &T {
    fn for_each_factor_span(&self, f: &mut dyn FnMut(&[VariableId])) {
        (**self).for_each_factor_span(f)
    }
}

impl<T: FactorSpans + ?Sized> FactorSpans for Box<T> {
    fn for_each_factor_span(&self, f: &mut dyn FnMut(&[VariableId])) {
        (**self).for_each_factor_span(f)
    }
}

impl<T: FactorSpans + ?Sized> FactorSpans for std::sync::Arc<T> {
    fn for_each_factor_span(&self, f: &mut dyn FnMut(&[VariableId])) {
        (**self).for_each_factor_span(f)
    }
}

impl FactorSpans for FactorGraph {
    fn for_each_factor_span(&self, f: &mut dyn FnMut(&[VariableId])) {
        for i in 0..self.num_factors() {
            f(self.factor(i).variables());
        }
    }
}

/// A partition of the hidden variables into `num_shards` dense, non-empty
/// parts. Validated against a model with [`ShardMap::validate`] before any
/// parallel walking begins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// `shard_of[v]` is the shard of variable `v`.
    shard_of: Vec<u32>,
    /// Variables of each shard, ascending.
    shards: Vec<Vec<VariableId>>,
}

impl ShardMap {
    /// The trivial single-shard map: every variable in shard 0. A sharded
    /// sampler over this map is definitionally the sequential sampler.
    ///
    /// # Errors
    /// [`ShardError::Empty`] when there are no variables.
    pub fn single(num_variables: usize) -> Result<Self, ShardError> {
        ShardMap::from_assignment(vec![0; num_variables])
    }

    /// Builds a map from an explicit per-variable shard assignment. Shard
    /// ids must be dense: every shard in `0..=max` non-empty.
    ///
    /// # Errors
    /// [`ShardError::Empty`] on an empty assignment, [`ShardError::EmptyShard`]
    /// when a shard id below the maximum has no variables.
    pub fn from_assignment(shard_of: Vec<u32>) -> Result<Self, ShardError> {
        if shard_of.is_empty() {
            return Err(ShardError::Empty);
        }
        let num_shards = shard_of.iter().max().copied().unwrap_or(0) as usize + 1;
        let mut shards: Vec<Vec<VariableId>> = vec![Vec::new(); num_shards];
        for (v, &s) in shard_of.iter().enumerate() {
            let id = u32::try_from(v).map_err(|_| ShardError::IdOverflow(v))?;
            shards[s as usize].push(VariableId(id));
        }
        if let Some(empty) = shards.iter().position(Vec::is_empty) {
            let empty = u32::try_from(empty).map_err(|_| ShardError::IdOverflow(empty))?;
            return Err(ShardError::EmptyShard(empty));
        }
        Ok(ShardMap { shard_of, shards })
    }

    /// Partitions contiguous variable groups (one per document) into
    /// `num_shards` contiguous, size-balanced shards: greedy accumulation
    /// toward `remaining_vars / remaining_shards`, never splitting a group.
    /// Contiguity keeps each shard's working set a single slice of the
    /// world — the cache-locality property the sharded bench measures.
    ///
    /// # Errors
    /// [`ShardError::Empty`] when `groups` or `num_shards` is zero or a
    /// group is empty, [`ShardError::TooManyShards`] when shards outnumber
    /// groups, [`ShardError::NonContiguousGroups`] when the groups do not
    /// tile `0..n` in order.
    pub fn by_contiguous_groups(
        groups: &[Range<usize>],
        num_shards: usize,
    ) -> Result<Self, ShardError> {
        if groups.is_empty() || num_shards == 0 {
            return Err(ShardError::Empty);
        }
        if num_shards > groups.len() {
            return Err(ShardError::TooManyShards {
                shards: num_shards,
                groups: groups.len(),
            });
        }
        let mut expected = 0usize;
        for g in groups {
            if g.start != expected {
                return Err(ShardError::NonContiguousGroups {
                    expected_start: expected,
                    got: g.start,
                });
            }
            if g.is_empty() {
                return Err(ShardError::Empty);
            }
            expected = g.end;
        }
        let total = expected;
        let mut shard_of = vec![0u32; total];
        let mut shard = 0usize;
        let mut filled = 0usize; // variables assigned to shards < shard
        let mut in_shard = 0usize; // variables assigned to the current shard
        for (gi, g) in groups.iter().enumerate() {
            let remaining_groups = groups.len() - gi;
            let remaining_shards = num_shards - shard;
            // Shards strictly after the current one, all still empty.
            let empty_after = num_shards - shard - 1;
            // Close the current shard when it reached its fair share of the
            // remaining variables, or when the groups left are only just
            // enough to keep every remaining shard non-empty.
            let target = (total - filled).div_ceil(remaining_shards);
            if in_shard > 0
                && shard + 1 < num_shards
                && (in_shard + g.len() > target || remaining_groups <= empty_after)
            {
                shard += 1;
                filled += in_shard;
                in_shard = 0;
            }
            let shard_id = u32::try_from(shard).map_err(|_| ShardError::IdOverflow(shard))?;
            for v in g.clone() {
                shard_of[v] = shard_id;
            }
            in_shard += g.len();
        }
        ShardMap::from_assignment(shard_of)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of variables covered.
    pub fn num_variables(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard of a variable.
    ///
    /// # Panics
    /// Panics when the variable is outside the map.
    pub fn shard_of(&self, v: VariableId) -> u32 {
        self.shard_of[v.index()]
    }

    /// The variables of one shard, ascending.
    pub fn variables(&self, shard: usize) -> &[VariableId] {
        &self.shards[shard]
    }

    /// Per-shard variable counts.
    pub fn sizes(&self) -> Vec<usize> {
        self.shards.iter().map(Vec::len).collect()
    }

    /// Validates that no factor of `model` spans two shards and every
    /// factor variable is covered — the invariant that makes per-shard
    /// walkers compose into one valid chain over the joint world.
    ///
    /// # Errors
    /// [`ShardError::SpanningFactor`] naming the offending pair,
    /// [`ShardError::UnmappedVariable`] when a factor reaches outside the
    /// map.
    pub fn validate(&self, model: &impl FactorSpans) -> Result<(), ShardError> {
        let mut err = None;
        model.for_each_factor_span(&mut |vars: &[VariableId]| {
            if err.is_some() {
                return;
            }
            let mut first: Option<(VariableId, u32)> = None;
            for &v in vars {
                if v.index() >= self.shard_of.len() {
                    err = Some(ShardError::UnmappedVariable(v));
                    return;
                }
                let s = self.shard_of[v.index()];
                match first {
                    None => first = Some((v, s)),
                    Some((a, sa)) if sa != s => {
                        err = Some(ShardError::SpanningFactor {
                            a,
                            shard_a: sa,
                            b: v,
                            shard_b: s,
                        });
                        return;
                    }
                    Some(_) => {}
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::TableFactor;
    use crate::variable::Domain;
    use crate::world::World;

    fn pair_factor(a: u32, b: u32) -> Box<TableFactor> {
        Box::new(TableFactor::new(
            vec![VariableId(a), VariableId(b)],
            vec![2, 2],
            vec![1.0, 0.0, 0.0, 1.0],
            format!("agree{a}{b}"),
        ))
    }

    #[test]
    fn single_map_covers_everything() {
        let m = ShardMap::single(5).unwrap();
        assert_eq!(m.num_shards(), 1);
        assert_eq!(m.num_variables(), 5);
        assert_eq!(m.variables(0).len(), 5);
        assert_eq!(m.shard_of(VariableId(4)), 0);
        assert_eq!(ShardMap::single(0), Err(ShardError::Empty));
    }

    #[test]
    fn from_assignment_requires_dense_shards() {
        assert!(ShardMap::from_assignment(vec![0, 1, 0, 1]).is_ok());
        assert_eq!(
            ShardMap::from_assignment(vec![0, 2]),
            Err(ShardError::EmptyShard(1))
        );
        assert_eq!(ShardMap::from_assignment(vec![]), Err(ShardError::Empty));
    }

    #[test]
    fn contiguous_groups_balance_without_splitting() {
        // Documents of sizes 3, 3, 2, 4 over 12 variables into 2 shards:
        // greedy target 6 → shards {0..6} and {6..12}.
        let groups = vec![0..3, 3..6, 6..8, 8..12];
        let m = ShardMap::by_contiguous_groups(&groups, 2).unwrap();
        assert_eq!(m.num_shards(), 2);
        assert_eq!(m.sizes(), vec![6, 6]);
        // Contiguity: shard ids are non-decreasing over the variable range.
        for v in 1..m.num_variables() {
            assert!(m.shard_of(VariableId(v as u32)) >= m.shard_of(VariableId(v as u32 - 1)));
        }
        // No document is split.
        for g in &groups {
            let s = m.shard_of(VariableId(g.start as u32));
            for v in g.clone() {
                assert_eq!(m.shard_of(VariableId(v as u32)), s);
            }
        }
    }

    #[test]
    fn contiguous_groups_one_shard_per_group_at_the_limit() {
        let groups = vec![0..1, 1..2, 2..10];
        let m = ShardMap::by_contiguous_groups(&groups, 3).unwrap();
        assert_eq!(m.sizes(), vec![1, 1, 8]);
        assert_eq!(
            ShardMap::by_contiguous_groups(&groups, 4),
            Err(ShardError::TooManyShards {
                shards: 4,
                groups: 3
            })
        );
    }

    #[test]
    fn contiguous_groups_reject_gaps() {
        assert_eq!(
            ShardMap::by_contiguous_groups(&[0..3, 4..6], 1),
            Err(ShardError::NonContiguousGroups {
                expected_start: 3,
                got: 4
            })
        );
    }

    #[test]
    fn validate_accepts_within_shard_factors() {
        let mut g = FactorGraph::new();
        g.add_factor(pair_factor(0, 1));
        g.add_factor(pair_factor(2, 3));
        let m = ShardMap::from_assignment(vec![0, 0, 1, 1]).unwrap();
        assert_eq!(m.validate(&g), Ok(()));
    }

    #[test]
    fn validate_rejects_spanning_factor() {
        let mut g = FactorGraph::new();
        g.add_factor(pair_factor(1, 2)); // crosses the 0/1 boundary below
        let m = ShardMap::from_assignment(vec![0, 0, 1, 1]).unwrap();
        assert_eq!(
            m.validate(&g),
            Err(ShardError::SpanningFactor {
                a: VariableId(1),
                shard_a: 0,
                b: VariableId(2),
                shard_b: 1,
            })
        );
    }

    #[test]
    fn validate_rejects_unmapped_variable() {
        let mut g = FactorGraph::new();
        g.add_factor(pair_factor(0, 9));
        let m = ShardMap::from_assignment(vec![0, 0]).unwrap();
        assert_eq!(
            m.validate(&g),
            Err(ShardError::UnmappedVariable(VariableId(9)))
        );
    }

    #[test]
    fn validate_works_through_arc_and_ref() {
        let mut g = FactorGraph::new();
        g.add_factor(pair_factor(0, 1));
        let m = ShardMap::single(2).unwrap();
        let arc = std::sync::Arc::new(g);
        assert_eq!(m.validate(&arc), Ok(()));
        assert_eq!(m.validate(&&*arc), Ok(()));
    }

    #[test]
    fn world_shard_sync_copies_only_named_variables() {
        let d = Domain::of_labels(&["a", "b", "c"]);
        let mut dst = World::new(vec![d.clone(), d.clone(), d]);
        let mut src = dst.clone();
        src.set(VariableId(0), 2);
        src.set(VariableId(2), 1);
        dst.copy_assignments_from(&src, &[VariableId(2)]);
        assert_eq!(dst.get(VariableId(0)), 0, "unnamed variable untouched");
        assert_eq!(dst.get(VariableId(2)), 1, "named variable synced");
    }
}
