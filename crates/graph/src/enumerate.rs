//! Exact inference by exhaustive enumeration.
//!
//! Eq. 4 of the paper defines answer-tuple probabilities as a sum over all
//! possible worlds — intractable in general, but *computable* when the
//! hidden-variable space is tiny. This module enumerates it exactly, giving
//! the test-suite ground truth that is stronger than the paper's own
//! methodology (which estimates truth with a very long sampler run): MCMC
//! convergence tests compare against these closed-form marginals.

use crate::model::{EvalStats, Model};
use crate::variable::VariableId;
use crate::world::World;

/// Iterates every joint assignment of `vars` (other variables untouched),
/// invoking `visit(world, log_score)` for each.
pub fn for_each_world<M: Model>(
    model: &M,
    world: &mut World,
    vars: &[VariableId],
    mut visit: impl FnMut(&World, f64),
) {
    let saved: Vec<usize> = vars.iter().map(|&v| world.get(v)).collect();
    let cards: Vec<usize> = vars.iter().map(|&v| world.domain(v).len()).collect();
    let total: usize = cards.iter().product();
    assert!(
        total <= 20_000_000,
        "joint space too large to enumerate ({total} assignments)"
    );
    let mut stats = EvalStats::default();
    let mut idx = vec![0usize; vars.len()];
    for _ in 0..total {
        for (k, &v) in vars.iter().enumerate() {
            world.set(v, idx[k]);
        }
        let s = model.score_world(world, &mut stats);
        visit(world, s);
        // Odometer increment.
        for k in (0..idx.len()).rev() {
            idx[k] += 1;
            if idx[k] < cards[k] {
                break;
            }
            idx[k] = 0;
        }
    }
    for (&v, &s) in vars.iter().zip(&saved) {
        world.set(v, s);
    }
}

/// Log-partition function `log Z` over the joint assignments of `vars`.
pub fn log_partition<M: Model>(model: &M, world: &mut World, vars: &[VariableId]) -> f64 {
    let mut scores = Vec::new();
    for_each_world(model, world, vars, |_, s| scores.push(s));
    log_sum_exp(&scores)
}

/// Exact per-variable marginals: `result[k][d]` is `P(varsₖ = d)`.
pub fn exact_marginals<M: Model>(
    model: &M,
    world: &mut World,
    vars: &[VariableId],
) -> Vec<Vec<f64>> {
    let cards: Vec<usize> = vars.iter().map(|&v| world.domain(v).len()).collect();
    let mut raw: Vec<Vec<f64>> = cards.iter().map(|&c| vec![f64::NEG_INFINITY; c]).collect();
    let mut all = Vec::new();
    for_each_world(model, world, vars, |w, s| {
        all.push(s);
        for (k, &v) in vars.iter().enumerate() {
            let d = w.get(v);
            raw[k][d] = log_add_exp(raw[k][d], s);
        }
    });
    let z = log_sum_exp(&all);
    raw.iter()
        .map(|row| row.iter().map(|&l| (l - z).exp()).collect())
        .collect()
}

/// Exact probability of an arbitrary world event — e.g. "tuple t is in the
/// answer of Q" (Eq. 4): sum of normalized weights of worlds satisfying the
/// predicate.
pub fn exact_event_probability<M: Model>(
    model: &M,
    world: &mut World,
    vars: &[VariableId],
    mut event: impl FnMut(&World) -> bool,
) -> f64 {
    let mut hit = Vec::new();
    let mut all = Vec::new();
    for_each_world(model, world, vars, |w, s| {
        all.push(s);
        if event(w) {
            hit.push(s);
        }
    });
    if hit.is_empty() {
        return 0.0;
    }
    (log_sum_exp(&hit) - log_sum_exp(&all)).exp()
}

/// Numerically stable `log Σ exp(xᵢ)`.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Numerically stable `log(exp(a) + exp(b))`.
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    hi + (lo - hi).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::TableFactor;
    use crate::graph::FactorGraph;
    use crate::variable::Domain;

    /// Two binary variables with a coupling factor preferring agreement and
    /// a bias on variable 0.
    fn ising2() -> (FactorGraph, World, Vec<VariableId>) {
        let d = Domain::of_labels(&["0", "1"]);
        let w = World::new(vec![d.clone(), d]);
        let mut g = FactorGraph::new();
        g.add_factor(Box::new(TableFactor::new(
            vec![VariableId(0), VariableId(1)],
            vec![2, 2],
            vec![1.0, 0.0, 0.0, 1.0],
            "couple",
        )));
        g.add_factor(Box::new(TableFactor::new(
            vec![VariableId(0)],
            vec![2],
            vec![0.0, 0.7],
            "bias",
        )));
        (g, w, vec![VariableId(0), VariableId(1)])
    }

    #[test]
    fn log_sum_exp_basics() {
        assert!((log_sum_exp(&[0.0, 0.0]) - 2f64.ln()).abs() < 1e-12);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        // Stability: huge inputs don't overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_add_exp_matches_log_sum_exp() {
        for (a, b) in [(0.0, 1.0), (-5.0, 3.0), (f64::NEG_INFINITY, 2.0)] {
            let got = log_add_exp(a, b);
            let want = log_sum_exp(&[a, b]);
            if want == f64::NEG_INFINITY {
                assert_eq!(got, f64::NEG_INFINITY);
            } else {
                assert!((got - want).abs() < 1e-12);
            }
        }
        assert_eq!(
            log_add_exp(f64::NEG_INFINITY, f64::NEG_INFINITY),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn enumeration_visits_all_assignments_and_restores() {
        let (g, mut w, vars) = ising2();
        w.set(VariableId(0), 1); // non-default start must be restored
        let mut n = 0;
        for_each_world(&g, &mut w, &vars, |_, _| n += 1);
        assert_eq!(n, 4);
        assert_eq!(w.get(VariableId(0)), 1);
        assert_eq!(w.get(VariableId(1)), 0);
    }

    #[test]
    fn marginals_match_hand_computation() {
        let (g, mut w, vars) = ising2();
        // Unnormalized weights: (0,0): e^1, (0,1): e^0, (1,0): e^0.7,
        // (1,1): e^1.7.
        let z = 1f64.exp() + 1.0 + 0.7f64.exp() + 1.7f64.exp();
        let p0_1 = (0.7f64.exp() + 1.7f64.exp()) / z;
        let m = exact_marginals(&g, &mut w, &vars);
        assert!((m[0][1] - p0_1).abs() < 1e-12);
        assert!((m[0][0] + m[0][1] - 1.0).abs() < 1e-12);
        assert!((m[1][0] + m[1][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn event_probability_agrees_with_marginal() {
        let (g, mut w, vars) = ising2();
        let m = exact_marginals(&g, &mut w, &vars);
        let p = exact_event_probability(&g, &mut w, &vars, |w| w.get(VariableId(0)) == 1);
        assert!((p - m[0][1]).abs() < 1e-12);
        // Impossible event.
        let zero = exact_event_probability(&g, &mut w, &vars, |_| false);
        assert_eq!(zero, 0.0);
        // Certain event.
        let one = exact_event_probability(&g, &mut w, &vars, |_| true);
        assert!((one - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_partition_matches_direct_sum() {
        let (g, mut w, vars) = ising2();
        let z = 1f64.exp() + 1.0 + 0.7f64.exp() + 1.7f64.exp();
        assert!((log_partition(&g, &mut w, &vars) - z.ln()).abs() < 1e-12);
    }
}
