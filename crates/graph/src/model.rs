//! The model abstraction: a distribution over worlds, scored lazily.
//!
//! A factor graph defines `π(y|x) ∝ ∏ₖ ψₖ(yˢ, xᵗ)` (Eq. 1 of the paper). We
//! work throughout in **log space**: a model reports the log of the
//! unnormalized probability, and Metropolis–Hastings only ever needs
//! *differences* of log scores, so the #P-hard normalizer `Z_X` never
//! appears (§3.4).
//!
//! Crucially, [`Model::score_neighborhood`] scores only the factors adjacent
//! to a given set of variables. Appendix 9.2 shows that the MH acceptance
//! ratio reduces to `∏_{yᵢ∈δ} ψ(X, yᵢ') / ∏_{yᵢ∈δ} ψ(X, yᵢ)` — all factors
//! untouched by the proposal cancel. Models therefore never materialize the
//! full unrolled graph; they enumerate neighborhood factors on demand, which
//! is what makes a walk step O(1) in the database size (§5.3).

use crate::variable::VariableId;
use crate::world::World;

/// Instrumentation counters for factor evaluation.
///
/// Figure 9 / Appendix 9.2 claims the number of factors evaluated per
/// proposal is constant in the number of tuples; experiment E7 verifies this
/// by reading these counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Individual factor evaluations performed.
    pub factors_evaluated: u64,
    /// Neighborhood scorings performed.
    pub neighborhood_scores: u64,
}

impl EvalStats {
    /// Accumulates another counter set.
    pub fn absorb(&mut self, other: EvalStats) {
        self.factors_evaluated += other.factors_evaluated;
        self.neighborhood_scores += other.neighborhood_scores;
    }
}

/// A probability model over worlds (unnormalized, log space).
pub trait Model: Send + Sync {
    /// Log of the unnormalized probability of the whole world:
    /// `log ∏ ψ = Σ log ψ`. Used by exact enumeration and tests; large
    /// models may implement it as a fold over all factors.
    fn score_world(&self, world: &World, stats: &mut EvalStats) -> f64;

    /// Sum of log-scores of every factor adjacent to at least one variable
    /// in `vars` (each such factor counted exactly once).
    ///
    /// MH computes `score_neighborhood(w', δ) − score_neighborhood(w, δ)`
    /// for the changed set δ; correctness requires that factor *structure*
    /// adjacent to δ depends only on observed data and on the variables in
    /// δ themselves (true for the CRF and coreference models here).
    fn score_neighborhood(&self, world: &World, vars: &[VariableId], stats: &mut EvalStats) -> f64;

    /// Neighborhood score of `var` *as if* it were set to `value`, without
    /// mutating the world — the primitive Gibbs full-conditional sampling
    /// needs once per candidate value.
    ///
    /// The default implementation clones the world, which is correct but
    /// O(#variables) per call; models over large worlds should override it
    /// with an overlay read (the CRF and coreference models do).
    fn score_neighborhood_whatif(
        &self,
        world: &World,
        var: VariableId,
        value: usize,
        stats: &mut EvalStats,
    ) -> f64 {
        let mut scratch = world.clone();
        scratch.set(var, value);
        self.score_neighborhood(&scratch, &[var], stats)
    }
}

/// Blanket impl so `&M` and boxed models are models too.
impl<M: Model + ?Sized> Model for &M {
    fn score_world(&self, world: &World, stats: &mut EvalStats) -> f64 {
        (**self).score_world(world, stats)
    }
    fn score_neighborhood(&self, world: &World, vars: &[VariableId], stats: &mut EvalStats) -> f64 {
        (**self).score_neighborhood(world, vars, stats)
    }
    fn score_neighborhood_whatif(
        &self,
        world: &World,
        var: VariableId,
        value: usize,
        stats: &mut EvalStats,
    ) -> f64 {
        (**self).score_neighborhood_whatif(world, var, value, stats)
    }
}

impl<M: Model + ?Sized> Model for Box<M> {
    fn score_world(&self, world: &World, stats: &mut EvalStats) -> f64 {
        (**self).score_world(world, stats)
    }
    fn score_neighborhood(&self, world: &World, vars: &[VariableId], stats: &mut EvalStats) -> f64 {
        (**self).score_neighborhood(world, vars, stats)
    }
    fn score_neighborhood_whatif(
        &self,
        world: &World,
        var: VariableId,
        value: usize,
        stats: &mut EvalStats,
    ) -> f64 {
        (**self).score_neighborhood_whatif(world, var, value, stats)
    }
}

impl<M: Model + ?Sized> Model for std::sync::Arc<M> {
    fn score_world(&self, world: &World, stats: &mut EvalStats) -> f64 {
        (**self).score_world(world, stats)
    }
    fn score_neighborhood(&self, world: &World, vars: &[VariableId], stats: &mut EvalStats) -> f64 {
        (**self).score_neighborhood(world, vars, stats)
    }
    fn score_neighborhood_whatif(
        &self,
        world: &World,
        var: VariableId,
        value: usize,
        stats: &mut EvalStats,
    ) -> f64 {
        (**self).score_neighborhood_whatif(world, var, value, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::Domain;

    /// A trivial model preferring higher domain indexes.
    struct Prefer;

    impl Model for Prefer {
        fn score_world(&self, world: &World, stats: &mut EvalStats) -> f64 {
            stats.factors_evaluated += world.num_variables() as u64;
            world.variables().map(|v| world.get(v) as f64).sum()
        }
        fn score_neighborhood(
            &self,
            world: &World,
            vars: &[VariableId],
            stats: &mut EvalStats,
        ) -> f64 {
            stats.neighborhood_scores += 1;
            stats.factors_evaluated += vars.len() as u64;
            vars.iter().map(|&v| world.get(v) as f64).sum()
        }
    }

    #[test]
    fn stats_accumulate() {
        let d = Domain::of_labels(&["a", "b"]);
        let w = World::new(vec![d.clone(), d]);
        let m = Prefer;
        let mut s = EvalStats::default();
        m.score_world(&w, &mut s);
        m.score_neighborhood(&w, &[VariableId(0)], &mut s);
        assert_eq!(s.factors_evaluated, 3);
        assert_eq!(s.neighborhood_scores, 1);
        let mut t = EvalStats::default();
        t.absorb(s);
        t.absorb(s);
        assert_eq!(t.factors_evaluated, 6);
    }

    #[test]
    fn blanket_impls_delegate() {
        let d = Domain::of_labels(&["a", "b"]);
        let mut w = World::new(vec![d]);
        w.set(VariableId(0), 1);
        let mut s = EvalStats::default();
        let boxed: Box<dyn Model> = Box::new(Prefer);
        assert_eq!(boxed.score_world(&w, &mut s), 1.0);
        let arc = std::sync::Arc::new(Prefer);
        assert_eq!(arc.score_world(&w, &mut s), 1.0);
        let r = &Prefer;
        assert_eq!(r.score_neighborhood(&w, &[VariableId(0)], &mut s), 1.0);
    }
}
