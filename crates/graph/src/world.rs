//! Possible worlds as variable assignments.
//!
//! A [`World`] is a setting of every hidden variable — together with the
//! (implicit, constant) observed variables it determines one deterministic
//! database instance (§3.2). MCMC walks this space by flipping one or a few
//! entries at a time; the representation is a flat `Vec<u16>` of domain
//! indexes so a walk step touches a couple of cache lines.

use crate::error::ModelError;
use crate::variable::{Domain, VariableId};
use fgdb_relational::Value;
use std::sync::Arc;

/// An assignment of every hidden variable to a value of its domain.
#[derive(Clone, Debug)]
pub struct World {
    domains: Vec<Arc<Domain>>,
    assignment: Vec<u16>,
}

impl World {
    /// Creates a world with every variable at domain index 0.
    pub fn new(domains: Vec<Arc<Domain>>) -> Self {
        for d in &domains {
            assert!(
                d.len() <= u16::MAX as usize + 1,
                "domain too large for u16 index"
            );
        }
        let n = domains.len();
        World {
            domains,
            assignment: vec![0; n],
        }
    }

    /// Adds a variable with the given domain and initial index, returning its id.
    pub fn add_variable(&mut self, domain: Arc<Domain>, initial: usize) -> VariableId {
        assert!(initial < domain.len(), "initial index out of domain");
        let id = VariableId(self.domains.len() as u32);
        self.domains.push(domain);
        self.assignment.push(initial as u16);
        id
    }

    /// Number of hidden variables.
    pub fn num_variables(&self) -> usize {
        self.assignment.len()
    }

    /// Current domain index of a variable.
    #[inline]
    pub fn get(&self, v: VariableId) -> usize {
        self.assignment[v.index()] as usize
    }

    /// Current value of a variable.
    #[inline]
    pub fn value(&self, v: VariableId) -> &Value {
        self.domains[v.index()].value(self.get(v))
    }

    /// Sets a variable to a domain index, returning the previous index.
    #[inline]
    pub fn set(&mut self, v: VariableId, idx: usize) -> usize {
        debug_assert!(idx < self.domains[v.index()].len());
        let old = self.assignment[v.index()];
        self.assignment[v.index()] = idx as u16;
        old as usize
    }

    /// Sets a variable by value, returning the previous domain index.
    ///
    /// # Errors
    /// Returns [`ModelError::ValueNotInDomain`] when the value is not in the
    /// variable's domain — a malformed proposal must not abort the engine
    /// thread applying it.
    pub fn set_value(&mut self, v: VariableId, value: &Value) -> Result<usize, ModelError> {
        let idx = self.domains[v.index()].index_of(value).ok_or_else(|| {
            ModelError::ValueNotInDomain {
                variable: v,
                value: value.to_string(),
            }
        })?;
        Ok(self.set(v, idx))
    }

    /// Domain of a variable.
    pub fn domain(&self, v: VariableId) -> &Arc<Domain> {
        &self.domains[v.index()]
    }

    /// Iterates all variable ids.
    pub fn variables(&self) -> impl Iterator<Item = VariableId> {
        (0..self.assignment.len() as u32).map(VariableId)
    }

    /// Raw assignment snapshot (for hashing worlds in tests).
    pub fn assignment(&self) -> &[u16] {
        &self.assignment
    }

    /// Per-variable domains, indexed by `VariableId` — the serialization
    /// accessor the durability layer uses to persist a world. Domains shared
    /// between variables are the same `Arc`, which an encoder can detect by
    /// pointer identity to write each distinct domain once.
    pub fn domains(&self) -> &[Arc<Domain>] {
        &self.domains
    }

    /// Rebuilds a world from persisted parts: per-variable domains plus the
    /// assignment vector. Inverse of ([`World::domains`], [`World::assignment`]).
    ///
    /// # Panics
    /// Panics when the lengths differ, an index falls outside its domain, or
    /// a domain exceeds the `u16` index space — persisted state that fails
    /// these checks is corrupt, and the durability layer validates record
    /// checksums before ever calling this.
    pub fn from_parts(domains: Vec<Arc<Domain>>, assignment: Vec<u16>) -> Self {
        assert_eq!(
            domains.len(),
            assignment.len(),
            "world parts disagree: {} domains vs {} assignments",
            domains.len(),
            assignment.len()
        );
        for (d, &idx) in domains.iter().zip(&assignment) {
            assert!(
                d.len() <= u16::MAX as usize + 1,
                "domain too large for u16 index"
            );
            assert!((idx as usize) < d.len(), "assignment index out of domain");
        }
        World {
            domains,
            assignment,
        }
    }

    /// Restores a previously captured assignment.
    pub fn restore(&mut self, assignment: &[u16]) {
        assert_eq!(assignment.len(), self.assignment.len());
        self.assignment.copy_from_slice(assignment);
    }

    /// Copies the named variables' assignments from `src`, leaving every
    /// other variable untouched — the shard-sync primitive: a sharded
    /// sampler refreshes one shard's slice of a walker's world without
    /// disturbing the walker's own variables.
    ///
    /// # Panics
    /// Panics when the worlds have different variable counts (they must be
    /// views of the same model).
    pub fn copy_assignments_from(&mut self, src: &World, vars: &[VariableId]) {
        assert_eq!(
            self.assignment.len(),
            src.assignment.len(),
            "shard sync between worlds of different size"
        );
        for &v in vars {
            self.assignment[v.index()] = src.assignment[v.index()];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bio() -> Arc<Domain> {
        Domain::of_labels(&["O", "B-PER", "I-PER"])
    }

    #[test]
    fn construction_defaults_to_zero() {
        let w = World::new(vec![bio(), bio()]);
        assert_eq!(w.num_variables(), 2);
        assert_eq!(w.get(VariableId(0)), 0);
        assert_eq!(w.value(VariableId(1)).as_str(), Some("O"));
    }

    #[test]
    fn add_variable_grows_world() {
        let mut w = World::new(vec![]);
        let a = w.add_variable(bio(), 1);
        let b = w.add_variable(bio(), 2);
        assert_eq!(w.num_variables(), 2);
        assert_eq!(w.value(a).as_str(), Some("B-PER"));
        assert_eq!(w.value(b).as_str(), Some("I-PER"));
    }

    #[test]
    fn set_returns_old_index() {
        let mut w = World::new(vec![bio()]);
        let v = VariableId(0);
        assert_eq!(w.set(v, 2), 0);
        assert_eq!(w.set(v, 1), 2);
        assert_eq!(w.get(v), 1);
    }

    #[test]
    fn set_value_resolves_domain_index() {
        let mut w = World::new(vec![bio()]);
        let v = VariableId(0);
        assert_eq!(w.set_value(v, &Value::str("I-PER")), Ok(0));
        assert_eq!(w.get(v), 2);
    }

    #[test]
    fn set_value_rejects_foreign_value_without_panicking() {
        let mut w = World::new(vec![bio()]);
        w.set(VariableId(0), 1);
        let err = w.set_value(VariableId(0), &Value::str("B-ORG"));
        assert_eq!(
            err,
            Err(ModelError::ValueNotInDomain {
                variable: VariableId(0),
                value: "B-ORG".into()
            })
        );
        // The world is untouched by the failed assignment.
        assert_eq!(w.get(VariableId(0)), 1);
    }

    #[test]
    fn snapshot_and_restore() {
        let mut w = World::new(vec![bio(), bio()]);
        w.set(VariableId(0), 1);
        let snap = w.assignment().to_vec();
        w.set(VariableId(0), 2);
        w.set(VariableId(1), 1);
        w.restore(&snap);
        assert_eq!(w.get(VariableId(0)), 1);
        assert_eq!(w.get(VariableId(1)), 0);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut w = World::new(vec![bio(), bio()]);
        w.set(VariableId(0), 2);
        let rebuilt = World::from_parts(w.domains().to_vec(), w.assignment().to_vec());
        assert_eq!(rebuilt.assignment(), w.assignment());
        assert_eq!(rebuilt.value(VariableId(0)), w.value(VariableId(0)));
        // Shared domains stay shared through the accessor.
        assert!(
            Arc::ptr_eq(&rebuilt.domains()[0], &rebuilt.domains()[1])
                == Arc::ptr_eq(&w.domains()[0], &w.domains()[1])
        );
    }

    #[test]
    #[should_panic(expected = "world parts disagree")]
    fn from_parts_rejects_length_mismatch() {
        World::from_parts(vec![bio()], vec![0, 0]);
    }

    #[test]
    fn variables_iterator_covers_all() {
        let w = World::new(vec![bio(), bio(), bio()]);
        let ids: Vec<_> = w.variables().collect();
        assert_eq!(ids, vec![VariableId(0), VariableId(1), VariableId(2)]);
    }
}
