//! An explicit factor graph — the bipartite `G = ⟨V, Ψ⟩` of §3.1.
//!
//! [`FactorGraph`] materializes factors and a variable→factor adjacency
//! index, and implements [`Model`] by summing adjacent factors. This is the
//! right representation for *small* graphs: pedagogical examples (Figure 1),
//! exact-inference tests, and unit-scale worlds. The large CRF models of the
//! `fgdb-ie` crate instead implement [`Model`] lazily — the paper is
//! explicit that MCMC lets it "avoid instantiating the factor graphs over
//! the entire database" (§3.3) — but both forms score identically, which the
//! test-suite exploits by cross-checking them on small instances.

use crate::factor::Factor;
use crate::model::{EvalStats, Model};
use crate::variable::VariableId;
use crate::world::World;
use std::cell::RefCell;

/// Reusable dedup scratch for [`FactorGraph::score_neighborhood`]: a
/// generation-stamped seen buffer. Marking a factor seen is one store;
/// resetting between calls is one generation bump — no clearing, no
/// per-step allocation, no O(d²) `Vec::contains` scans.
///
/// The scratch is **thread-local** (see [`SEEN`]): concurrent shard walkers
/// sharing one graph via `Arc` each get their own buffer, so the parallel
/// path never contends and never allocates in steady state. (An earlier
/// revision kept the scratch behind a `Mutex` with an allocating `try_lock`
/// fallback — under concurrent walkers every contended scorer silently
/// allocated per call.)
#[derive(Default)]
struct SeenScratch {
    /// `stamp[f] == gen` ⇔ factor f already scored in the current call.
    stamp: Vec<u32>,
    gen: u32,
    /// Diagnostic: times `stamp` grew. Steady state performs none — the
    /// contention regression test asserts this stays flat per thread.
    resizes: u64,
}

thread_local! {
    /// One dedup scratch per thread, shared by every graph scored on that
    /// thread: the per-call generation bump isolates calls, so stamps left
    /// by another graph are always stale.
    static SEEN: RefCell<SeenScratch> = RefCell::new(SeenScratch::default());
    /// Times this thread ran the re-entrancy fallback (see
    /// `score_neighborhood`). Kept outside [`SEEN`] because it is counted
    /// exactly when that cell is unavailable. Thread-locality makes
    /// cross-thread contention impossible, so this can only fire on
    /// re-entrant scoring from inside a factor — the contention regression
    /// test asserts zero under parallel load.
    static SEEN_FALLBACKS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// This thread's `(resizes, fallbacks)` scratch counters — diagnostics for
/// the allocation-free-scoring regression test. Counters are per-thread, so
/// a test owns its workers' numbers regardless of what other threads do.
pub fn seen_scratch_counters() -> (u64, u64) {
    let resizes = SEEN.with(|cell| cell.borrow().resizes);
    let fallbacks = SEEN_FALLBACKS.with(std::cell::Cell::get);
    (resizes, fallbacks)
}

/// An explicit factor graph with adjacency indexing.
#[derive(Default)]
pub struct FactorGraph {
    factors: Vec<Box<dyn Factor>>,
    /// `adjacency[v]` lists the factor indexes touching variable v, each
    /// factor at most once (deduplicated at insertion).
    adjacency: Vec<Vec<u32>>,
}

impl FactorGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a factor, updating adjacency. Returns its index.
    pub fn add_factor(&mut self, factor: Box<dyn Factor>) -> usize {
        let idx = self.factors.len() as u32;
        let vars = factor.variables();
        for (i, v) in vars.iter().enumerate() {
            // A factor listing the same variable twice still appears once in
            // that variable's adjacency (it must be scored exactly once).
            if vars[..i].contains(v) {
                continue;
            }
            let vi = v.index();
            if self.adjacency.len() <= vi {
                self.adjacency.resize_with(vi + 1, Vec::new);
            }
            self.adjacency[vi].push(idx);
        }
        self.factors.push(factor);
        idx as usize
    }

    /// Number of factors.
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    /// Factors adjacent to a variable.
    pub fn factors_of(&self, v: VariableId) -> &[u32] {
        self.adjacency
            .get(v.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Degree of a variable (number of adjacent factors).
    pub fn degree(&self, v: VariableId) -> usize {
        self.factors_of(v).len()
    }

    /// The factor at an index.
    pub fn factor(&self, idx: usize) -> &dyn Factor {
        &*self.factors[idx]
    }
}

impl Model for FactorGraph {
    fn score_world(&self, world: &World, stats: &mut EvalStats) -> f64 {
        stats.factors_evaluated += self.factors.len() as u64;
        self.factors.iter().map(|f| f.log_score(world)).sum()
    }

    fn score_neighborhood(&self, world: &World, vars: &[VariableId], stats: &mut EvalStats) -> f64 {
        stats.neighborhood_scores += 1;
        let mut sum = 0.0;
        // Single-variable fast path (the common MH proposal): one variable's
        // adjacency never repeats a factor, so no dedup state is needed.
        if let [v] = vars {
            for &fi in self.factors_of(*v) {
                stats.factors_evaluated += 1;
                sum += self.factors[fi as usize].log_score(world);
            }
            return sum;
        }
        // Deduplicate factors shared between changed variables so each is
        // counted exactly once, as required by the MH ratio of Appendix 9.2.
        // The generation-stamped thread-local scratch makes this O(Σ degree)
        // with zero steady-state allocation on every thread — concurrent
        // shard walkers never contend. `try_borrow_mut` only fails on
        // re-entrant scoring (a factor's own `log_score` calling back into
        // `score_neighborhood`); that degenerate path falls back to a small
        // seen-list scan.
        SEEN.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => {
                scratch.gen = scratch.gen.wrapping_add(1);
                if scratch.gen == 0 {
                    // Generation counter wrapped: old stamps could alias. Reset.
                    scratch.stamp.iter_mut().for_each(|s| *s = 0);
                    scratch.gen = 1;
                }
                if scratch.stamp.len() < self.factors.len() {
                    scratch.resizes += 1;
                    let n = self.factors.len();
                    scratch.stamp.resize(n, 0);
                }
                let gen = scratch.gen;
                for v in vars {
                    for &fi in self.factors_of(*v) {
                        let slot = &mut scratch.stamp[fi as usize];
                        if *slot == gen {
                            continue;
                        }
                        *slot = gen;
                        stats.factors_evaluated += 1;
                        sum += self.factors[fi as usize].log_score(world);
                    }
                }
                sum
            }
            Err(_) => {
                SEEN_FALLBACKS.with(|c| c.set(c.get() + 1));
                let mut seen: Vec<u32> = Vec::with_capacity(vars.len() * 2);
                for v in vars {
                    for &fi in self.factors_of(*v) {
                        if seen.contains(&fi) {
                            continue;
                        }
                        seen.push(fi);
                        stats.factors_evaluated += 1;
                        sum += self.factors[fi as usize].log_score(world);
                    }
                }
                sum
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{FnFactor, TableFactor};
    use crate::variable::Domain;

    /// Chain of three binary variables with pairwise agreement factors and a
    /// bias on the first.
    fn chain() -> (FactorGraph, World) {
        let d = Domain::of_labels(&["0", "1"]);
        let w = World::new(vec![d.clone(), d.clone(), d]);
        let mut g = FactorGraph::new();
        let agree = |a: u32, b: u32| {
            TableFactor::new(
                vec![VariableId(a), VariableId(b)],
                vec![2, 2],
                // log-scores: agreement rewarded by +1
                vec![1.0, 0.0, 0.0, 1.0],
                format!("agree{a}{b}"),
            )
        };
        g.add_factor(Box::new(agree(0, 1)));
        g.add_factor(Box::new(agree(1, 2)));
        g.add_factor(Box::new(FnFactor::new(
            vec![VariableId(0)],
            |w: &World| if w.get(VariableId(0)) == 1 { 0.5 } else { 0.0 },
            "bias0",
        )));
        (g, w)
    }

    #[test]
    fn adjacency_tracks_factors() {
        let (g, _) = chain();
        assert_eq!(g.num_factors(), 3);
        assert_eq!(g.degree(VariableId(0)), 2); // agree01 + bias
        assert_eq!(g.degree(VariableId(1)), 2); // agree01 + agree12
        assert_eq!(g.degree(VariableId(2)), 1);
        assert_eq!(g.degree(VariableId(9)), 0); // unknown var: empty
    }

    #[test]
    fn world_score_sums_all_factors() {
        let (g, mut w) = chain();
        let mut s = EvalStats::default();
        // all zeros: both agreements fire (+1 each), bias0 off.
        assert_eq!(g.score_world(&w, &mut s), 2.0);
        w.set(VariableId(0), 1);
        // agree01 broken, bias on: 0 + 1 + 0.5
        assert_eq!(g.score_world(&w, &mut s), 1.5);
        assert_eq!(s.factors_evaluated, 6);
    }

    #[test]
    fn neighborhood_deduplicates_shared_factors() {
        let (g, w) = chain();
        let mut s = EvalStats::default();
        // Variables 0 and 1 share agree01; it must be scored once.
        let n = g.score_neighborhood(&w, &[VariableId(0), VariableId(1)], &mut s);
        assert_eq!(s.factors_evaluated, 3); // agree01, bias0, agree12
        assert_eq!(n, 2.0);
    }

    #[test]
    fn neighborhood_score_difference_equals_world_score_difference() {
        // The cancellation identity of Appendix 9.2 on the explicit graph.
        let (g, mut w) = chain();
        let mut s = EvalStats::default();
        let delta = [VariableId(1)];

        let full_before = g.score_world(&w, &mut s);
        let hood_before = g.score_neighborhood(&w, &delta, &mut s);
        w.set(VariableId(1), 1);
        let full_after = g.score_world(&w, &mut s);
        let hood_after = g.score_neighborhood(&w, &delta, &mut s);

        assert!(
            ((full_after - full_before) - (hood_after - hood_before)).abs() < 1e-12,
            "neighborhood delta must equal full delta"
        );
    }

    #[test]
    fn factor_accessor() {
        let (g, _) = chain();
        assert_eq!(g.factor(2).name(), "bias0");
    }

    #[test]
    fn neighborhood_scratch_is_reusable_across_calls() {
        // Repeated multi-variable scorings must keep deduplicating correctly
        // (each call bumps the generation instead of clearing the buffer).
        let (g, w) = chain();
        for _ in 0..100 {
            let mut s = EvalStats::default();
            let n = g.score_neighborhood(&w, &[VariableId(0), VariableId(1)], &mut s);
            assert_eq!(s.factors_evaluated, 3);
            assert_eq!(n, 2.0);
        }
    }

    #[test]
    fn concurrent_scoring_is_allocation_free_after_warmup() {
        // Regression test for the shared-`Mutex` scratch: under concurrent
        // walkers the old `try_lock` fallback silently allocated on every
        // contended multi-variable scoring. With the thread-local scratch,
        // after one warm-up call per thread, heavy parallel scoring must
        // perform zero scratch growth and never take any fallback path.
        use std::sync::Arc;
        let (g, w) = chain();
        let g = Arc::new(g);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                let w = w.clone();
                std::thread::spawn(move || {
                    let mut s = EvalStats::default();
                    // Warm up: the thread's scratch grows to graph size once.
                    g.score_neighborhood(&w, &[VariableId(0), VariableId(1)], &mut s);
                    let (resizes, fallbacks) = seen_scratch_counters();
                    for _ in 0..10_000 {
                        let mut s = EvalStats::default();
                        let n = g.score_neighborhood(&w, &[VariableId(0), VariableId(1)], &mut s);
                        // Dedup stays exact under concurrency.
                        assert_eq!(s.factors_evaluated, 3);
                        assert_eq!(n, 2.0);
                    }
                    let (resizes_after, fallbacks_after) = seen_scratch_counters();
                    assert_eq!(resizes_after, resizes, "scratch reallocated mid-run");
                    assert_eq!(fallbacks_after, fallbacks, "fallback path fired");
                    assert_eq!(fallbacks_after, 0, "no fallback may ever fire here");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn factor_repeating_a_variable_is_scored_once() {
        let d = Domain::of_labels(&["0", "1"]);
        let w = World::new(vec![d]);
        let mut g = FactorGraph::new();
        g.add_factor(Box::new(TableFactor::new(
            vec![VariableId(0), VariableId(0)],
            vec![2, 2],
            vec![1.0, 0.0, 0.0, 1.0],
            "self_pair",
        )));
        assert_eq!(g.degree(VariableId(0)), 1); // deduplicated adjacency
        let mut s = EvalStats::default();
        g.score_neighborhood(&w, &[VariableId(0)], &mut s);
        assert_eq!(s.factors_evaluated, 1);
    }
}
