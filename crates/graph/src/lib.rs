//! # fgdb-graph — factor graphs over database fields
//!
//! The representation layer of Wick, McCallum & Miklau (VLDB 2010, §3):
//! hidden random variables with finite domains ([`variable`]), possible
//! worlds as assignments ([`world`]), factors and log-linear scoring
//! ([`factor`]), explicit factor graphs with adjacency ([`graph`]), the lazy
//! [`model::Model`] abstraction whose `score_neighborhood` realizes the
//! factor-cancellation identity of Appendix 9.2, sparse features for
//! SampleRank learning ([`feature`]), exact inference by enumeration for
//! test-scale ground truth ([`enumerate`]), and variable partitioning with
//! no-factor-spans-shards validation for parallel intra-world sampling
//! ([`shard`]).

pub mod enumerate;
pub mod error;
pub mod factor;
pub mod feature;
pub mod graph;
pub mod model;
pub mod shard;
pub mod variable;
pub mod world;

pub use error::ModelError;
pub use factor::{log_linear, Factor, FnFactor, TableFactor};
pub use feature::{FeatureVector, Learnable};
pub use graph::FactorGraph;
pub use model::{EvalStats, Model};
pub use shard::{FactorSpans, ShardError, ShardMap};
pub use variable::{Domain, VariableId};
pub use world::World;
