//! Property test for the Appendix-9.2 cancellation identity on random
//! explicit factor graphs: for any change set δ, the difference of
//! neighborhood scores equals the difference of full-world scores — the
//! fact that makes the MH acceptance ratio O(|δ|)-computable.

use fgdb_graph::{Domain, EvalStats, FactorGraph, Model, TableFactor, VariableId, World};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomFactor {
    vars: Vec<u8>,
    table: Vec<f64>,
}

const NUM_VARS: usize = 5;
const CARD: usize = 3;

fn factor_strategy() -> impl Strategy<Value = RandomFactor> {
    // Unary or binary factors over 5 ternary variables.
    prop_oneof![
        (
            0u8..NUM_VARS as u8,
            prop::collection::vec(-2.0f64..2.0, CARD)
        )
            .prop_map(|(v, table)| RandomFactor {
                vars: vec![v],
                table
            }),
        (
            0u8..NUM_VARS as u8,
            0u8..NUM_VARS as u8,
            prop::collection::vec(-2.0f64..2.0, CARD * CARD)
        )
            .prop_filter("distinct vars", |(a, b, _)| a != b)
            .prop_map(|(a, b, table)| RandomFactor {
                vars: vec![a, b],
                table
            }),
    ]
}

fn build_graph(factors: &[RandomFactor]) -> (FactorGraph, World) {
    let d = Domain::of_labels(&["x", "y", "z"]);
    let world = World::new(vec![d; NUM_VARS]);
    let mut g = FactorGraph::new();
    for (i, f) in factors.iter().enumerate() {
        g.add_factor(Box::new(TableFactor::new(
            f.vars.iter().map(|&v| VariableId(v as u32)).collect(),
            vec![CARD; f.vars.len()],
            f.table.clone(),
            format!("f{i}"),
        )));
    }
    (g, world)
}

proptest! {
    #[test]
    fn neighborhood_delta_equals_world_delta(
        factors in prop::collection::vec(factor_strategy(), 1..12),
        start in prop::collection::vec(0usize..CARD, NUM_VARS),
        changes in prop::collection::vec((0u8..NUM_VARS as u8, 0usize..CARD), 1..4),
    ) {
        let (g, mut w) = build_graph(&factors);
        for (i, &s) in start.iter().enumerate() {
            w.set(VariableId(i as u32), s);
        }
        let mut delta_vars: Vec<VariableId> =
            changes.iter().map(|(v, _)| VariableId(*v as u32)).collect();
        delta_vars.sort();
        delta_vars.dedup();

        let mut stats = EvalStats::default();
        let full_before = g.score_world(&w, &mut stats);
        let hood_before = g.score_neighborhood(&w, &delta_vars, &mut stats);
        for (v, idx) in &changes {
            w.set(VariableId(*v as u32), *idx);
        }
        let full_after = g.score_world(&w, &mut stats);
        let hood_after = g.score_neighborhood(&w, &delta_vars, &mut stats);

        let full_delta = full_after - full_before;
        let hood_delta = hood_after - hood_before;
        prop_assert!(
            (full_delta - hood_delta).abs() < 1e-9,
            "full Δ {} vs neighborhood Δ {}", full_delta, hood_delta
        );
    }

    /// The neighborhood never evaluates more factors than exist, and each
    /// adjacent factor exactly once.
    #[test]
    fn neighborhood_counts_each_factor_once(
        factors in prop::collection::vec(factor_strategy(), 1..12),
        vars in prop::collection::vec(0u8..NUM_VARS as u8, 1..NUM_VARS),
    ) {
        let (g, w) = build_graph(&factors);
        let mut delta_vars: Vec<VariableId> =
            vars.iter().map(|&v| VariableId(v as u32)).collect();
        delta_vars.sort();
        delta_vars.dedup();
        let mut stats = EvalStats::default();
        g.score_neighborhood(&w, &delta_vars, &mut stats);
        // Count adjacent factors by brute force.
        let adjacent = factors
            .iter()
            .filter(|f| {
                f.vars
                    .iter()
                    .any(|&v| delta_vars.contains(&VariableId(v as u32)))
            })
            .count() as u64;
        prop_assert_eq!(stats.factors_evaluated, adjacent);
    }
}
