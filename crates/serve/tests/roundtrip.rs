//! End-to-end serving test: a live sampler behind a real TCP server,
//! exercised by real clients over localhost.
//!
//! Covers the full request surface (ping, stats, query, status, pin /
//! unpin), the snapshot-isolation contract at the wire level, error
//! rendering (parse errors arrive with their caret diagnostic), and
//! graceful shutdown of both the server and the sampler.

use fgdb_core::fixtures::biased_token_pdb;
use fgdb_core::{LiveSampler, ServingConfig};
use fgdb_relational::parser::paper_sql;
use fgdb_serve::{Client, ClientError, ErrorCode, Server};

const N_TOKENS: usize = 24;

fn serving_config() -> ServingConfig {
    ServingConfig {
        thinning: 20,
        publish_every: 2,
        window: 64,
        ..Default::default()
    }
}

/// Spins up a sampler + server pair; returns both plus the address.
fn start_stack() -> (
    LiveSampler<std::sync::Arc<fgdb_graph::FactorGraph>>,
    Server,
    String,
) {
    let pdb = biased_token_pdb(N_TOKENS, 6, 0xD1CE);
    let q1 = paper_sql::query1("TOKEN");
    let q4 = paper_sql::query4("TOKEN");
    let sampler = LiveSampler::spawn(
        pdb,
        &[("q1", q1.as_str()), ("q4", q4.as_str())],
        serving_config(),
    )
    .expect("spawn live sampler");
    let server = Server::start(sampler.reader(), "127.0.0.1:0").expect("bind server");
    let addr = server.addr().to_string();
    (sampler, server, addr)
}

#[test]
fn full_request_surface_roundtrips() {
    let (sampler, server, addr) = start_stack();
    let mut client = Client::connect(&addr).expect("connect");

    client.ping().expect("ping");

    let stats = client.stats().expect("stats");
    assert!(stats.running, "sampler should be live while serving");
    assert!(stats.error.is_none());

    // Ad-hoc SQL answers from some epoch, with provenance attached.
    let answer = client
        .query("SELECT doc_id, COUNT(*) FROM TOKEN GROUP BY doc_id")
        .expect("grouped count");
    assert_eq!(answer.columns.len(), 2);
    let total: i64 = answer.rows.iter().map(|r| r.count).sum();
    assert!(total > 0);

    // Registered-query status carries convergence diagnostics.
    let (meta, status) = client.status("q1").expect("status q1");
    assert_eq!(status.name, "q1");
    assert!(status.r_hat.is_finite());
    assert!(
        status.window_len >= 1,
        "epoch 0 already recorded one sample"
    );
    assert!(
        meta.steps >= meta.samples * serving_config().thinning as u64,
        "each published sample costs a full thinning interval"
    );

    // Unknown registered query is a typed Unavailable error.
    let err = client.status("nope").expect_err("unknown name");
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::Unavailable),
        other => panic!("expected server error, got {other}"),
    }

    server.stop();
    sampler.stop().expect("sampler returns the pdb");
}

#[test]
fn parse_errors_arrive_rendered_with_caret() {
    let (sampler, server, addr) = start_stack();
    let mut client = Client::connect(&addr).expect("connect");

    // Multibyte garbage before the error point: offset must be usable and
    // the rendering must include the caret line.
    let err = client
        .query("SELECT 'é' FROM ☃ WHERE")
        .expect_err("bad sql");
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.code, ErrorCode::Parse);
            assert!(
                e.rendered.contains('^'),
                "rendered diagnostic should carry the caret: {}",
                e.rendered
            );
        }
        other => panic!("expected parse error, got {other}"),
    }

    server.stop();
    sampler.stop().expect("clean sampler stop");
}

#[test]
fn pinned_connections_are_snapshot_isolated() {
    let (sampler, server, addr) = start_stack();
    let mut client = Client::connect(&addr).expect("connect");
    let sql = "SELECT label, COUNT(*) FROM TOKEN GROUP BY label";

    let pinned_at = client.pin().expect("pin");
    let first = client.query(sql).expect("pinned query");
    assert_eq!(first.meta.epoch, pinned_at.epoch);

    // Let the sampler publish newer epochs, then re-ask: the pinned
    // connection must keep seeing the identical world.
    let target = pinned_at.epoch + 3;
    while sampler.reader().status().epoch < target {
        std::thread::yield_now();
    }
    for _ in 0..4 {
        let again = client.query(sql).expect("repinned query");
        assert_eq!(again.meta.epoch, pinned_at.epoch, "pin must hold the epoch");
        assert_eq!(again.rows, first.rows, "pinned answers must not drift");
    }
    // The label partition of a pinned world covers every token exactly
    // once (COUNT(*) is the second output column).
    let total: i64 = first
        .rows
        .iter()
        .map(|r| match r.values[1] {
            fgdb_serve::WireValue::Int(n) => n,
            ref other => panic!("COUNT(*) should be an int, got {other:?}"),
        })
        .sum();
    assert_eq!(total, N_TOKENS as i64);

    // Unpinning resumes freshest-epoch reads.
    client.unpin().expect("unpin");
    let fresh = client.query(sql).expect("fresh query");
    assert!(fresh.meta.epoch >= target, "unpinned read should be fresh");

    // A second connection is independent of the first one's pin.
    let mut other = Client::connect(&addr).expect("second connection");
    let other_answer = other.query(sql).expect("other query");
    assert!(other_answer.meta.epoch >= target);

    server.stop();
    sampler.stop().expect("clean sampler stop");
}

#[test]
fn malformed_frames_get_error_responses_not_disconnects() {
    use fgdb_serve::{Request, Response};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let (sampler, server, addr) = start_stack();
    let mut raw = TcpStream::connect(&addr).expect("raw connect");

    // A well-framed payload full of garbage: the server must answer with a
    // protocol error and keep the connection open.
    let garbage = [0xFFu8, 0xFF, 0xFF];
    let mut frame = (garbage.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&garbage);
    raw.write_all(&frame).expect("send garbage");

    let mut len_buf = [0u8; 4];
    raw.read_exact(&mut len_buf).expect("error response length");
    let mut payload = vec![0u8; u32::from_le_bytes(len_buf) as usize];
    raw.read_exact(&mut payload)
        .expect("error response payload");
    match Response::decode(&payload).expect("decodable error response") {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }

    // Same connection still serves valid requests afterwards.
    let ping = Request::Ping.encode().unwrap();
    let mut ping_frame = (ping.len() as u32).to_le_bytes().to_vec();
    ping_frame.extend_from_slice(&ping);
    raw.write_all(&ping_frame).expect("send ping after garbage");
    raw.read_exact(&mut len_buf).expect("pong length");
    let mut payload = vec![0u8; u32::from_le_bytes(len_buf) as usize];
    raw.read_exact(&mut payload).expect("pong payload");
    assert!(matches!(
        Response::decode(&payload).expect("decodable pong"),
        Response::Pong
    ));

    server.stop();
    sampler.stop().expect("clean sampler stop");
}

#[test]
fn shutdown_is_graceful_with_connected_clients() {
    let (sampler, server, addr) = start_stack();
    // Leave clients connected and mid-session when the server stops: stop
    // must still return (workers notice the flag via their read timeout).
    let mut clients: Vec<Client> = (0..4)
        .map(|_| Client::connect(&addr).expect("connect"))
        .collect();
    for c in &mut clients {
        c.ping().expect("ping before shutdown");
    }
    server.stop();

    // The sampler outlives the server and still stops cleanly.
    let pdb = sampler.stop().expect("sampler survives server shutdown");
    drop(pdb);

    // New connections are refused (or at best dropped without service).
    let late = Client::connect(&addr);
    if let Ok(mut c) = late {
        assert!(c.ping().is_err(), "stopped server must not serve");
    }
}
