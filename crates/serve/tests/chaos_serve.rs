//! Serving-layer chaos: overload shedding, degraded-sampler behavior,
//! hostile response frames, and client retry — the network half of the
//! fault-injection suite (`crates/core/tests/chaos.rs` is the storage
//! half).
//!
//! Invariants under test:
//!
//! * past the connection cap the server answers one typed
//!   `Unavailable{retry_after_ms}` frame — it never queues silently,
//!   never hangs, never drops the socket without a word — and a
//!   retrying client rides the shed through to an answer once capacity
//!   frees up;
//! * while the sampler is degraded (supervisor mid
//!   restart-from-recovery), fresh-state requests shed with a retry
//!   hint, health probes keep answering with `degraded` set, pinned
//!   connections keep reading their immutable epoch, and everything
//!   heals once the supervisor resumes;
//! * every truncation and every single-byte corruption of a valid
//!   response frame decodes to a typed error or a valid message on the
//!   client — never a panic, never an allocation blow-up.

use fgdb_core::fixtures::{biased_token_pdb, relabel_proposer};
use fgdb_core::supervise::{ModelFactory, SupervisedSampler, SupervisorConfig};
use fgdb_core::{DurabilityConfig, FsyncPolicy, LiveSampler, ServingConfig};
use fgdb_durability::{FaultKind, FaultSchedule, FaultyIo, StoreIo};
use fgdb_graph::FactorGraph;
use fgdb_relational::parser::paper_sql;
use fgdb_serve::{
    Client, ClientConfig, ClientError, EpochMeta, ErrorCode, Response, Server, ServerConfig,
    WireError, WireQueryStatus, WireRow, WireStats, WireValue,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_TOKENS: usize = 24;

fn serving_config() -> ServingConfig {
    ServingConfig {
        thinning: 10,
        publish_every: 2,
        window: 32,
        ..Default::default()
    }
}

#[test]
fn connection_cap_sheds_with_retry_hint_and_retry_rides_it_out() {
    let pdb = biased_token_pdb(N_TOKENS, 6, 0xCAFE);
    let q1 = paper_sql::query1("TOKEN");
    let sampler = LiveSampler::spawn(pdb, &[("q1", q1.as_str())], serving_config()).unwrap();
    let server = Server::start_with(
        sampler.reader(),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 1,
            retry_after_ms: 25,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    // Occupy the single slot.
    let mut holder = Client::connect(&addr).unwrap();
    holder.ping().unwrap();

    // The excess connection is answered with a typed shed, not silence.
    let mut shed = Client::connect(&addr).unwrap();
    match shed.ping() {
        Err(ClientError::Unavailable { retry_after_ms }) => assert_eq!(retry_after_ms, 25),
        other => panic!("expected Unavailable at the cap, got {other:?}"),
    }

    // A retrying client started while the cap is full succeeds once the
    // holder disconnects: shed → backoff (honoring the hint) → reconnect
    // → answer.
    let addr2 = addr.clone();
    let retrier = std::thread::spawn(move || {
        let mut c = Client::connect_with(
            &addr2,
            ClientConfig {
                max_retries: 10,
                backoff_base_ms: 20,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        c.query_with_retry("SELECT doc_id, COUNT(*) FROM TOKEN GROUP BY doc_id")
    });
    std::thread::sleep(Duration::from_millis(60));
    drop(holder); // frees the slot; the worker notices EOF within a poll tick
    let answer = retrier
        .join()
        .unwrap()
        .expect("retry must ride out the cap");
    assert_eq!(answer.columns.len(), 2);

    server.stop();
    sampler.stop().unwrap();
}

fn supervised_stack(
    restart_backoff_ms: u64,
) -> (
    FaultyIo,
    SupervisedSampler<Arc<FactorGraph>>,
    Server,
    String,
) {
    let dir = fgdb_durability::test_dir("chaos-serve-degraded");
    let fio = FaultyIo::new(FaultSchedule::none());
    let io: Arc<dyn StoreIo> = Arc::new(fio.clone());
    let pdb = biased_token_pdb(N_TOKENS, 6, 0xD06F);
    let model = Arc::clone(pdb.model());
    let durable = pdb
        .open_durable_with_io(
            io,
            &dir,
            DurabilityConfig {
                fsync: FsyncPolicy::Always,
            },
        )
        .unwrap();
    let factory: ModelFactory<Arc<FactorGraph>> =
        Box::new(move || (Arc::clone(&model), relabel_proposer(N_TOKENS)));
    let q1 = paper_sql::query1("TOKEN");
    let sampler = SupervisedSampler::spawn(
        durable,
        &[("q1", q1.as_str())],
        SupervisorConfig {
            serving: serving_config(),
            max_restarts: 5,
            restart_backoff_ms,
            checkpoint_every: 0,
        },
        factory,
    )
    .unwrap();
    let server = Server::start_with(
        sampler.reader(),
        "127.0.0.1:0",
        ServerConfig {
            retry_after_ms: 40,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    (fio, sampler, server, addr)
}

#[test]
fn degraded_sampler_sheds_fresh_reads_serves_pinned_ones_and_heals() {
    // A long restart backoff holds the degraded window open wide enough
    // to observe deterministically.
    let (fio, sampler, server, addr) = supervised_stack(800);
    let sql = "SELECT label, COUNT(*) FROM TOKEN GROUP BY label";

    let mut pinned_client = Client::connect(&addr).unwrap();
    let pinned_at: EpochMeta = pinned_client.pin().unwrap();
    let pinned_answer = pinned_client.query(sql).unwrap();
    assert_eq!(pinned_answer.meta.epoch, pinned_at.epoch);

    // Break the WAL once; wait until the supervisor parks degraded.
    fio.inject_now(FaultKind::WriteErr);
    // Retry budget must span the 800ms degraded window: 12 × ≥40ms
    // (hint-floored) with exponential growth is plenty.
    let mut probe = Client::connect_with(
        &addr,
        ClientConfig {
            max_retries: 12,
            backoff_base_ms: 40,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let degraded_stats: WireStats = loop {
        assert!(Instant::now() < deadline, "sampler never reported degraded");
        let s = probe.stats().unwrap();
        if s.degraded {
            break s;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    // Health stays observable mid-degradation, with the fault attached.
    assert!(!degraded_stats.running);
    assert!(
        degraded_stats.error.is_some(),
        "degraded stats must carry the typed fault, rendered"
    );

    // Fresh-state requests shed with the retry hint...
    match probe.query(sql) {
        Err(ClientError::Unavailable { retry_after_ms }) => assert_eq!(retry_after_ms, 40),
        other => panic!("expected shed during degradation, got {other:?}"),
    }
    match probe.pin() {
        Err(ClientError::Unavailable { .. }) => {}
        other => panic!("expected pin shed during degradation, got {other:?}"),
    }
    // ...while the pinned connection keeps reading its immutable epoch.
    let again = pinned_client.query(sql).unwrap();
    assert_eq!(again.meta.epoch, pinned_at.epoch);
    assert_eq!(again.rows, pinned_answer.rows);

    // A retrying client spanning the whole degraded window comes out
    // with an answer — no caller-visible hang, no manual babysitting.
    let answer = probe
        .query_with_retry(sql)
        .expect("retry must span the degraded window");
    assert!(!answer.rows.is_empty());

    // Healed: running again, error cleared, fresh epochs flowing.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "sampler never resumed");
        let s = probe.stats().unwrap();
        if s.running && !s.degraded && s.error.is_none() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    server.stop();
    sampler.stop().expect("supervised sampler stops cleanly");
}

#[test]
fn hostile_response_frames_never_panic_the_client_decoder() {
    // A corpus covering every response shape the server can send,
    // including the new Unavailable frame and degraded stats.
    let meta = EpochMeta {
        epoch: 7,
        steps: 1400,
        samples: 140,
    };
    let corpus: Vec<Response> = vec![
        Response::Table {
            meta,
            columns: vec!["label".into(), "n".into()],
            rows: vec![WireRow {
                values: vec![WireValue::Str("B-PER".into()), WireValue::Int(6)],
                count: 1,
            }],
        },
        Response::Status {
            meta,
            status: Box::new(WireQueryStatus {
                name: "q1".into(),
                sql: "SELECT string FROM TOKEN".into(),
                columns: vec!["string".into()],
                r_hat: 1.02,
                min_ess: 31.5,
                window_len: 32,
                converged: false,
                answer: vec![WireRow {
                    values: vec![WireValue::Str("Boston".into())],
                    count: 2,
                }],
                marginals: vec![(vec![WireValue::Str("Boston".into())], 0.5)],
            }),
        },
        Response::Stats(WireStats {
            epoch: 7,
            steps: 1400,
            samples: 140,
            running: false,
            degraded: true,
            error: Some("durable store error: injected ENOSPC".into()),
        }),
        Response::Unavailable {
            retry_after_ms: 100,
        },
        Response::Error(WireError {
            code: ErrorCode::Exec,
            offset: None,
            message: "boom".into(),
            rendered: "boom".into(),
        }),
    ];
    for resp in &corpus {
        let enc = resp.encode().unwrap();
        // Round trip sanity first.
        assert_eq!(&Response::decode(&enc).unwrap(), resp);
        // Every truncation fails typed (or, for the empty prefix of a
        // length-delimited inner string, still decodes — both fine);
        // nothing panics.
        for cut in 0..enc.len() {
            let _ = Response::decode(&enc[..cut]);
        }
        // Every single-byte corruption decodes or errors — no panics,
        // no unbounded allocations (count fields are capped by payload
        // length checks).
        let mut mutated = enc.clone();
        for i in 0..mutated.len() {
            let original = mutated[i];
            for flip in [0x01u8, 0x80, 0xFF] {
                mutated[i] = original ^ flip;
                let _ = Response::decode(&mutated);
            }
            mutated[i] = original;
        }
    }
}

#[test]
fn stalled_mid_frame_peer_is_cut_off_with_a_typed_error() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let pdb = biased_token_pdb(N_TOKENS, 6, 0x57A1);
    let q1 = paper_sql::query1("TOKEN");
    let sampler = LiveSampler::spawn(pdb, &[("q1", q1.as_str())], serving_config()).unwrap();
    let server = Server::start_with(
        sampler.reader(),
        "127.0.0.1:0",
        ServerConfig {
            stall_budget: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    // Send a length prefix promising 64 bytes, then go silent.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(&64u32.to_le_bytes()).unwrap();
    raw.write_all(b"only-a-few").unwrap();

    // The server must answer a typed protocol error and close — within
    // the stall budget plus slack, never hanging the worker.
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut len_buf = [0u8; 4];
    raw.read_exact(&mut len_buf).expect("typed stall response");
    let mut payload = vec![0u8; u32::from_le_bytes(len_buf) as usize];
    raw.read_exact(&mut payload).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::Protocol);
            assert!(
                e.message.contains("stalled"),
                "error should name the stall: {}",
                e.message
            );
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    // And then EOF: the connection is gone, not resumed mid-frame.
    let n = raw.read(&mut len_buf).unwrap_or(0);
    assert_eq!(n, 0, "server must close a stalled connection");

    server.stop();
    sampler.stop().unwrap();
}
