//! The blocking client: one TCP connection, request/response framing,
//! typed convenience calls, socket timeouts, and retry with
//! exponential backoff. Used by the integration tests, the `fgdb-bench`
//! load generator, and the `serving` example.

use crate::protocol::{
    read_frame_timeout, write_frame, EpochMeta, Framed, ProtocolError, Request, Response,
    WireError, WireQueryStatus, WireRow, WireStats,
};
use std::fmt;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure: transport/protocol trouble, a served error, a
/// shed request, a timeout, or a response of the wrong kind.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or wire-format failure.
    Protocol(ProtocolError),
    /// The server answered with an error response.
    Server(WireError),
    /// The server shed the request (connection cap, or degraded sampler)
    /// and hinted when to retry. [`Client::query_with_retry`] honors the
    /// hint automatically.
    Unavailable {
        /// The server's suggested pause before retrying.
        retry_after_ms: u64,
    },
    /// The server did not answer (or did not finish answering) within
    /// the configured read timeout. The connection is desynchronized
    /// after this — reconnect before reusing it.
    Timeout {
        /// What the client was waiting for when the clock ran out.
        during: &'static str,
    },
    /// The server answered with an unexpected response kind.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {}", e.rendered),
            ClientError::Unavailable { retry_after_ms } => {
                write!(f, "server unavailable, retry after {retry_after_ms} ms")
            }
            ClientError::Timeout { during } => write!(f, "timed out waiting for {during}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl ClientError {
    /// Whether retrying (on a fresh connection) can plausibly succeed:
    /// sheds, timeouts, and transport failures are transient; a served
    /// SQL error or a malformed frame is not.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Unavailable { .. } | ClientError::Timeout { .. } => true,
            ClientError::Protocol(ProtocolError::Io(_)) => true,
            ClientError::Protocol(ProtocolError::Stalled { .. }) => true,
            ClientError::Protocol(_) | ClientError::Server(_) | ClientError::Unexpected(_) => false,
        }
    }
}

/// Client socket and retry tuning.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// How long to wait for a response before [`ClientError::Timeout`]
    /// (`None` waits forever — the pre-timeout behavior).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
    /// Retries after the first attempt of [`Client::query_with_retry`]
    /// and friends.
    pub max_retries: u32,
    /// Base backoff: retry `n` (1-based) waits `backoff_base_ms × 2ⁿ⁻¹`
    /// plus deterministic jitter, floored by any server retry hint.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Seed of the deterministic jitter stream (so a retry storm from a
    /// fleet of clients can be de-synchronized reproducibly).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            max_retries: 4,
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
            jitter_seed: 0x5EED,
        }
    }
}

/// An ad-hoc query answer with its epoch provenance.
#[derive(Clone, Debug)]
pub struct TableAnswer {
    /// Which epoch answered.
    pub meta: EpochMeta,
    /// Output column names.
    pub columns: Vec<String>,
    /// Answer rows, sorted by tuple.
    pub rows: Vec<WireRow>,
}

/// A blocking connection to an [`fgdb-serve`](crate) server.
pub struct Client {
    stream: TcpStream,
    peer: SocketAddr,
    config: ClientConfig,
    jitter: u64,
}

impl Client {
    /// Connects to `addr` with default timeouts and retry tuning.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit tuning.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ProtocolError::Io)?;
        let peer = stream.peer_addr().map_err(ProtocolError::Io)?;
        Self::from_stream(stream, peer, config)
    }

    fn from_stream(
        stream: TcpStream,
        peer: SocketAddr,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        stream.set_nodelay(true).map_err(ProtocolError::Io)?;
        stream
            .set_read_timeout(config.read_timeout)
            .map_err(ProtocolError::Io)?;
        stream
            .set_write_timeout(config.write_timeout)
            .map_err(ProtocolError::Io)?;
        Ok(Client {
            stream,
            peer,
            config,
            jitter: config.jitter_seed | 1,
        })
    }

    /// Drops the current connection and dials the same peer again. After
    /// a [`ClientError::Timeout`] or transport error the old stream may
    /// hold half a response, so retries must start clean.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.peer).map_err(ProtocolError::Io)?;
        stream.set_nodelay(true).map_err(ProtocolError::Io)?;
        stream
            .set_read_timeout(self.config.read_timeout)
            .map_err(ProtocolError::Io)?;
        stream
            .set_write_timeout(self.config.write_timeout)
            .map_err(ProtocolError::Io)?;
        self.stream = stream;
        Ok(())
    }

    /// Sends one request and reads one response (the protocol is strictly
    /// request/response per connection). A read timeout surfaces as
    /// [`ClientError::Timeout`]; a served shed surfaces as
    /// [`ClientError::Unavailable`].
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let encoded = req.encode().map_err(ClientError::Protocol)?;
        if let Err(e) = write_frame(&mut self.stream, &encoded) {
            return Err(match e {
                ProtocolError::Io(ref io)
                    if io.kind() == std::io::ErrorKind::WouldBlock
                        || io.kind() == std::io::ErrorKind::TimedOut =>
                {
                    ClientError::Timeout {
                        during: "request write",
                    }
                }
                ProtocolError::Io(ref io)
                    if matches!(
                        io.kind(),
                        std::io::ErrorKind::BrokenPipe
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    // A shedding server writes one Unavailable frame and
                    // closes; our write can race that close and fail with
                    // EPIPE while the shed frame sits in the receive
                    // buffer. Drain it so the caller sees the typed shed,
                    // not a transport error.
                    match read_frame_timeout(&mut self.stream, Duration::ZERO) {
                        Ok(Framed::Frame(payload)) => match Response::decode(&payload) {
                            Ok(Response::Unavailable { retry_after_ms }) => {
                                return Err(ClientError::Unavailable { retry_after_ms });
                            }
                            _ => ClientError::Protocol(e),
                        },
                        _ => ClientError::Protocol(e),
                    }
                }
                other => ClientError::Protocol(other),
            });
        }
        // The socket read timeout doubles as the stall budget: a server
        // that never starts answering and one that stops halfway are the
        // same timeout to a caller.
        let budget = self.config.read_timeout.unwrap_or(Duration::MAX);
        match read_frame_timeout(&mut self.stream, budget) {
            Ok(Framed::Frame(payload)) => match Response::decode(&payload)? {
                Response::Unavailable { retry_after_ms } => {
                    Err(ClientError::Unavailable { retry_after_ms })
                }
                resp => Ok(resp),
            },
            Ok(Framed::Eof) => Err(ClientError::Protocol(ProtocolError::Malformed(
                "server closed before responding".into(),
            ))),
            Ok(Framed::Idle) => Err(ClientError::Timeout { during: "response" }),
            Err(ProtocolError::Stalled { .. }) => Err(ClientError::Timeout {
                during: "response body",
            }),
            Err(e) => Err(ClientError::Protocol(e)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Live sampler counters.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Pins the freshest epoch for this connection; returns its
    /// provenance. Queries after `pin` are snapshot-isolated against it.
    pub fn pin(&mut self) -> Result<EpochMeta, ClientError> {
        match self.request(&Request::Pin)? {
            Response::Pinned { meta } => Ok(meta),
            other => Err(unexpected(other)),
        }
    }

    /// Drops the connection's pinned epoch.
    pub fn unpin(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Unpin)? {
            Response::Unpinned => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Ad-hoc SQL against the pinned (or freshest) epoch.
    pub fn query(&mut self, sql: &str) -> Result<TableAnswer, ClientError> {
        match self.request(&Request::Query {
            sql: sql.to_string(),
        })? {
            Response::Table {
                meta,
                columns,
                rows,
            } => Ok(TableAnswer {
                meta,
                columns,
                rows,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Convergence-tagged status of a registered query.
    pub fn status(&mut self, name: &str) -> Result<(EpochMeta, WireQueryStatus), ClientError> {
        match self.request(&Request::Status {
            name: name.to_string(),
        })? {
            Response::Status { meta, status } => Ok((meta, *status)),
            other => Err(unexpected(other)),
        }
    }

    /// [`Client::query`] with retry: sheds, timeouts, and transport
    /// failures back off exponentially (with deterministic jitter,
    /// honoring any server `retry_after_ms` hint as a floor) and try
    /// again on a fresh connection, up to
    /// [`ClientConfig::max_retries`] retries. SQL errors and protocol
    /// violations are returned immediately — retrying replays them.
    ///
    /// Note the retried request re-executes against the *freshest* epoch
    /// (any per-connection pin died with the old connection), which is
    /// what an unpinned query means anyway.
    pub fn query_with_retry(&mut self, sql: &str) -> Result<TableAnswer, ClientError> {
        self.with_retry(|c| c.query(sql))
    }

    /// [`Client::ping`] with the same retry/backoff loop.
    pub fn ping_with_retry(&mut self) -> Result<(), ClientError> {
        self.with_retry(|c| c.ping())
    }

    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        loop {
            let err = match op(self) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < self.config.max_retries => e,
                Err(e) => return Err(e),
            };
            attempt += 1;
            std::thread::sleep(self.backoff(attempt, &err));
            // Timeouts and transport errors leave the old stream in an
            // unknown position; a shed closed it server-side. Either
            // way, retries start on a clean connection — and if the
            // server itself is down, the reconnect error ends the loop
            // unless retries remain.
            if let Err(re) = self.reconnect() {
                if attempt >= self.config.max_retries {
                    return Err(re);
                }
            }
        }
    }

    /// Backoff before retry `attempt` (1-based): exponential in the
    /// attempt with ±half jitter, capped, floored by the server's
    /// `retry_after_ms` hint when one was served.
    fn backoff(&mut self, attempt: u32, err: &ClientError) -> Duration {
        let exp = self
            .config
            .backoff_base_ms
            .saturating_mul(1u64 << (attempt - 1).min(20))
            .min(self.config.backoff_cap_ms);
        // xorshift64*: deterministic per-client jitter stream.
        let mut x = self.jitter;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.jitter = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let jittered = exp / 2 + r % (exp / 2 + 1);
        let floor = match err {
            ClientError::Unavailable { retry_after_ms } => *retry_after_ms,
            _ => 0,
        };
        Duration::from_millis(
            jittered
                .max(floor)
                .min(self.config.backoff_cap_ms.max(floor)),
        )
    }
}

fn unexpected(resp: Response) -> ClientError {
    match resp {
        Response::Error(e) => ClientError::Server(e),
        other => ClientError::Unexpected(format!("{other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_exponential_and_honors_hints() {
        let config = ClientConfig {
            backoff_base_ms: 10,
            backoff_cap_ms: 200,
            jitter_seed: 7,
            ..ClientConfig::default()
        };
        // Two clients with the same seed produce the same jitter stream.
        let roll = |seed: u64| {
            let mut jitter = seed | 1;
            let timeout = ClientError::Timeout { during: "response" };
            (1..=6u32)
                .map(|attempt| {
                    let exp = config
                        .backoff_base_ms
                        .saturating_mul(1u64 << (attempt - 1).min(20))
                        .min(config.backoff_cap_ms);
                    let mut x = jitter;
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    jitter = x;
                    let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
                    let _ = &timeout;
                    exp / 2 + r % (exp / 2 + 1)
                })
                .collect::<Vec<u64>>()
        };
        assert_eq!(roll(7), roll(7));
        let waits = roll(7);
        // Exponential envelope: each wait is within [exp/2, exp], capped.
        for (i, &w) in waits.iter().enumerate() {
            let exp = (10u64 << i).min(200);
            assert!(
                w >= exp / 2 && w <= exp,
                "wait {w} outside envelope of {exp}"
            );
        }
    }

    #[test]
    fn retryability_is_typed() {
        assert!(ClientError::Timeout { during: "response" }.is_retryable());
        assert!(ClientError::Unavailable { retry_after_ms: 5 }.is_retryable());
        assert!(
            ClientError::Protocol(ProtocolError::Io(std::io::Error::other("reset"))).is_retryable()
        );
        assert!(!ClientError::Protocol(ProtocolError::Malformed("junk".into())).is_retryable());
        assert!(!ClientError::Unexpected("pong".into()).is_retryable());
    }
}
