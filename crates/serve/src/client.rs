//! The blocking client: one TCP connection, request/response framing,
//! and typed convenience calls. Used by the integration tests, the
//! `fgdb-bench` load generator, and the `serving` example.

use crate::protocol::{
    read_frame, write_frame, EpochMeta, ProtocolError, Request, Response, WireError,
    WireQueryStatus, WireRow, WireStats,
};
use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport/protocol trouble, a served error, or a
/// response of the wrong kind.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or wire-format failure.
    Protocol(ProtocolError),
    /// The server answered with an error response.
    Server(WireError),
    /// The server answered with an unexpected response kind.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {}", e.rendered),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// An ad-hoc query answer with its epoch provenance.
#[derive(Clone, Debug)]
pub struct TableAnswer {
    /// Which epoch answered.
    pub meta: EpochMeta,
    /// Output column names.
    pub columns: Vec<String>,
    /// Answer rows, sorted by tuple.
    pub rows: Vec<WireRow>,
}

/// A blocking connection to an [`fgdb-serve`](crate) server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ProtocolError::Io)?;
        stream.set_nodelay(true).map_err(ProtocolError::Io)?;
        Ok(Client { stream })
    }

    /// Sends one request and reads one response (the protocol is strictly
    /// request/response per connection).
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(ClientError::Protocol(ProtocolError::Malformed(
                "server closed before responding".into(),
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Live sampler counters.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Pins the freshest epoch for this connection; returns its
    /// provenance. Queries after `pin` are snapshot-isolated against it.
    pub fn pin(&mut self) -> Result<EpochMeta, ClientError> {
        match self.request(&Request::Pin)? {
            Response::Pinned { meta } => Ok(meta),
            other => Err(unexpected(other)),
        }
    }

    /// Drops the connection's pinned epoch.
    pub fn unpin(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Unpin)? {
            Response::Unpinned => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Ad-hoc SQL against the pinned (or freshest) epoch.
    pub fn query(&mut self, sql: &str) -> Result<TableAnswer, ClientError> {
        match self.request(&Request::Query {
            sql: sql.to_string(),
        })? {
            Response::Table {
                meta,
                columns,
                rows,
            } => Ok(TableAnswer {
                meta,
                columns,
                rows,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Convergence-tagged status of a registered query.
    pub fn status(&mut self, name: &str) -> Result<(EpochMeta, WireQueryStatus), ClientError> {
        match self.request(&Request::Status {
            name: name.to_string(),
        })? {
            Response::Status { meta, status } => Ok((meta, *status)),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> ClientError {
    match resp {
        Response::Error(e) => ClientError::Server(e),
        other => ClientError::Unexpected(format!("{other:?}")),
    }
}
