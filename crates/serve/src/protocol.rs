//! The wire protocol: length-prefixed frames carrying versioned
//! request/response messages.
//!
//! Everything is little-endian and hand-encoded (no serde, no crates.io).
//! The byte-level layout is specified in `docs/FORMAT.md` ("Serving wire
//! format"); this module is its reference implementation, and the
//! round-trip property tests below pin encode ∘ decode = id.
//!
//! Framing: every message travels as `[len: u32 LE][payload: len bytes]`
//! with `len ≤` [`MAX_FRAME_LEN`]. Payloads start `[ver: u8][kind: u8]`;
//! unknown versions and kinds are decode errors, never panics — the
//! server treats a malformed frame as a per-connection error response,
//! not a reason to die.

use fgdb_relational::Value;
use std::fmt;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u8 = 1;

/// Maximum frame payload (16 MiB): bounds per-connection memory and
/// rejects garbage length prefixes early.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Request opcodes (request payload byte 1).
const OP_QUERY: u8 = 1;
const OP_STATUS: u8 = 2;
const OP_STATS: u8 = 3;
const OP_PING: u8 = 4;
const OP_PIN: u8 = 5;
const OP_UNPIN: u8 = 6;

/// Response kinds (response payload byte 1).
const RESP_TABLE: u8 = 0;
const RESP_STATUS: u8 = 1;
const RESP_STATS: u8 = 2;
const RESP_PONG: u8 = 3;
const RESP_PINNED: u8 = 4;
const RESP_UNPINNED: u8 = 5;
const RESP_UNAVAILABLE: u8 = 6;
const RESP_ERROR: u8 = 255;

/// Value tags.
const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;
const VAL_STR: u8 = 4;

/// Wire protocol failure: I/O, framing, or a payload that does not decode.
#[derive(Debug)]
pub enum ProtocolError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame declared more payload than [`MAX_FRAME_LEN`]. Wide enough
    /// to report an oversize *outgoing* payload faithfully — the length
    /// is the error's whole content, so it must not itself truncate.
    FrameTooLarge(u64),
    /// A message being *encoded* has a collection longer than its wire
    /// length prefix can carry. Surfaces as a typed error instead of a
    /// silently wrapped prefix (which would desynchronize the stream and
    /// decode as garbage on the peer).
    Oversize {
        /// What overflowed (e.g. `"string"`, `"rows"`).
        field: &'static str,
        /// Actual element/byte count.
        len: usize,
        /// Largest count the prefix can carry.
        max: u64,
    },
    /// The peer speaks a different protocol version.
    VersionMismatch(u8),
    /// The payload does not decode as a valid message.
    Malformed(String),
    /// The peer sent part of a frame and then stalled past the stall
    /// budget (see [`read_frame_timeout`]) — a half-open or hostile
    /// connection, distinct from an *idle* one that has sent nothing.
    Stalled {
        /// Frame bytes received before the stall (including the length
        /// prefix).
        received: usize,
        /// Total frame bytes the length prefix promised.
        needed: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds MAX_FRAME_LEN")
            }
            ProtocolError::Oversize { field, len, max } => {
                write!(f, "{field} of length {len} exceeds wire maximum {max}")
            }
            ProtocolError::VersionMismatch(v) => {
                write!(f, "peer protocol version {v}, expected {PROTOCOL_VERSION}")
            }
            ProtocolError::Malformed(m) => write!(f, "malformed message: {m}"),
            ProtocolError::Stalled { received, needed } => write!(
                f,
                "peer stalled mid-frame: {received} of {needed} bytes arrived"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Ad-hoc SQL against the connection's pinned epoch (or, unpinned,
    /// the freshest epoch at execution time).
    Query {
        /// The SQL text.
        sql: String,
    },
    /// Convergence-tagged status of a registered query, by name.
    Status {
        /// Registration name.
        name: String,
    },
    /// Live sampler counters and health.
    Stats,
    /// Liveness probe.
    Ping,
    /// Pin the freshest epoch for this connection: subsequent queries are
    /// snapshot-isolated against it until `Unpin` (or another `Pin`).
    Pin,
    /// Drop the connection's pinned epoch.
    Unpin,
}

/// Epoch provenance attached to every answer: which published world the
/// answer was computed against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochMeta {
    /// Epoch publication number.
    pub epoch: u64,
    /// MH walk-steps the chain had taken at publication.
    pub steps: u64,
    /// Samples drawn at publication.
    pub samples: u64,
}

/// A value as it travels the wire (owned mirror of
/// [`fgdb_relational::Value`]).
#[derive(Clone, Debug, PartialEq)]
pub enum WireValue {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl From<&Value> for WireValue {
    fn from(v: &Value) -> Self {
        match v {
            Value::Null => WireValue::Null,
            Value::Bool(b) => WireValue::Bool(*b),
            Value::Int(i) => WireValue::Int(*i),
            Value::Float(x) => WireValue::Float(x.get()),
            Value::Str(s) => WireValue::Str(s.to_string()),
        }
    }
}

/// One answer row: tuple values plus its multiset count.
#[derive(Clone, Debug, PartialEq)]
pub struct WireRow {
    /// Column values.
    pub values: Vec<WireValue>,
    /// Multiset multiplicity.
    pub count: i64,
}

/// A registered query's convergence-tagged state, as served.
#[derive(Clone, Debug, PartialEq)]
pub struct WireQueryStatus {
    /// Registration name.
    pub name: String,
    /// Registered SQL text.
    pub sql: String,
    /// Output column names.
    pub columns: Vec<String>,
    /// Worst per-tuple split-R̂ over the diagnostic window.
    pub r_hat: f64,
    /// Smallest per-tuple ESS over the window.
    pub min_ess: f64,
    /// Samples in the window at publication.
    pub window_len: u64,
    /// Whether the R̂ gate passed on a warm window.
    pub converged: bool,
    /// The epoch world's deterministic answer.
    pub answer: Vec<WireRow>,
    /// Full-run marginal estimates `(tuple values, probability)`.
    pub marginals: Vec<(Vec<WireValue>, f64)>,
}

/// Live sampler counters, as served.
#[derive(Clone, Debug, PartialEq)]
pub struct WireStats {
    /// Latest published epoch.
    pub epoch: u64,
    /// Total MH walk-steps taken.
    pub steps: u64,
    /// Total samples drawn.
    pub samples: u64,
    /// True while the sampler loop runs.
    pub running: bool,
    /// True while a supervisor is attempting restart-from-recovery.
    /// Already-published epochs stay pinnable and readable; only
    /// freshness is degraded.
    pub degraded: bool,
    /// The error that degraded or killed the loop (rendered; cleared
    /// once a supervisor recovers).
    pub error: Option<String>,
}

/// Machine-readable error category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// SQL failed to parse or lower.
    Parse,
    /// The query planned but execution failed.
    Exec,
    /// The request itself was malformed.
    Protocol,
    /// The requested resource does not exist (e.g. unknown registered
    /// query name).
    Unavailable,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Parse => 1,
            ErrorCode::Exec => 2,
            ErrorCode::Protocol => 3,
            ErrorCode::Unavailable => 4,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        match b {
            1 => Ok(ErrorCode::Parse),
            2 => Ok(ErrorCode::Exec),
            3 => Ok(ErrorCode::Protocol),
            4 => Ok(ErrorCode::Unavailable),
            other => Err(ProtocolError::Malformed(format!(
                "unknown error code {other}"
            ))),
        }
    }
}

/// A served error: category, optional byte offset into the offending SQL,
/// the bare message, and a human-oriented rendering (for parse errors,
/// the caret diagnostic of `ParseError::render` — boundary-safe under
/// multibyte input).
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// Category.
    pub code: ErrorCode,
    /// Byte offset of the offending token in the submitted SQL, when
    /// attributable.
    pub offset: Option<u64>,
    /// Bare error message.
    pub message: String,
    /// Multi-line human-oriented rendering (may equal `message`).
    pub rendered: String,
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// An ad-hoc query answer.
    Table {
        /// Provenance of the answering epoch.
        meta: EpochMeta,
        /// Output column names.
        columns: Vec<String>,
        /// Answer rows.
        rows: Vec<WireRow>,
    },
    /// A registered query's status.
    Status {
        /// Provenance of the answering epoch.
        meta: EpochMeta,
        /// The status.
        status: Box<WireQueryStatus>,
    },
    /// Sampler counters.
    Stats(WireStats),
    /// Liveness reply.
    Pong,
    /// The connection pinned this epoch.
    Pinned {
        /// Provenance of the pinned epoch.
        meta: EpochMeta,
    },
    /// The connection dropped its pin.
    Unpinned,
    /// The server is shedding load (connection cap reached, or a fresh
    /// epoch was requested while the sampler is degraded) — retry after
    /// the hinted pause. Overload answers with *this*, never with a hang
    /// or a dropped connection.
    Unavailable {
        /// Suggested client pause before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request failed.
    Error(WireError),
}

// ------------------------------------------------------------- encoding --

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Validates that `len` fits a `u32` length prefix. The cast used to be a
/// silent `as u32` — a >4 GiB string would wrap the prefix and
/// desynchronize the stream; now it is a typed [`ProtocolError::Oversize`].
fn len_u32(field: &'static str, len: usize) -> Result<u32, ProtocolError> {
    u32::try_from(len).map_err(|_| ProtocolError::Oversize {
        field,
        len,
        max: u64::from(u32::MAX),
    })
}

/// Validates that `len` fits a `u16` count prefix (columns, row values).
fn len_u16(field: &'static str, len: usize) -> Result<u16, ProtocolError> {
    u16::try_from(len).map_err(|_| ProtocolError::Oversize {
        field,
        len,
        max: u64::from(u16::MAX),
    })
}

fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<(), ProtocolError> {
    put_u32(buf, len_u32("string", s.len())?);
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_value(buf: &mut Vec<u8>, v: &WireValue) -> Result<(), ProtocolError> {
    match v {
        WireValue::Null => buf.push(VAL_NULL),
        WireValue::Bool(b) => {
            buf.push(VAL_BOOL);
            buf.push(u8::from(*b));
        }
        WireValue::Int(i) => {
            buf.push(VAL_INT);
            put_i64(buf, *i);
        }
        WireValue::Float(x) => {
            buf.push(VAL_FLOAT);
            put_f64(buf, *x);
        }
        WireValue::Str(s) => {
            buf.push(VAL_STR);
            put_str(buf, s)?;
        }
    }
    Ok(())
}

fn put_values(buf: &mut Vec<u8>, vs: &[WireValue]) -> Result<(), ProtocolError> {
    put_u16(buf, len_u16("row values", vs.len())?);
    for v in vs {
        put_value(buf, v)?;
    }
    Ok(())
}

fn put_meta(buf: &mut Vec<u8>, m: &EpochMeta) {
    put_u64(buf, m.epoch);
    put_u64(buf, m.steps);
    put_u64(buf, m.samples);
}

fn put_rows(buf: &mut Vec<u8>, rows: &[WireRow]) -> Result<(), ProtocolError> {
    put_u32(buf, len_u32("rows", rows.len())?);
    for row in rows {
        put_i64(buf, row.count);
        put_values(buf, &row.values)?;
    }
    Ok(())
}

fn put_columns(buf: &mut Vec<u8>, columns: &[String]) -> Result<(), ProtocolError> {
    put_u16(buf, len_u16("columns", columns.len())?);
    for c in columns {
        put_str(buf, c)?;
    }
    Ok(())
}

impl Request {
    /// Encodes the request as one frame payload.
    ///
    /// # Errors
    /// [`ProtocolError::Oversize`] when a field exceeds its wire length
    /// prefix (e.g. SQL text over `u32::MAX` bytes).
    pub fn encode(&self) -> Result<Vec<u8>, ProtocolError> {
        let mut buf = vec![PROTOCOL_VERSION];
        match self {
            Request::Query { sql } => {
                buf.push(OP_QUERY);
                put_str(&mut buf, sql)?;
            }
            Request::Status { name } => {
                buf.push(OP_STATUS);
                put_str(&mut buf, name)?;
            }
            Request::Stats => buf.push(OP_STATS),
            Request::Ping => buf.push(OP_PING),
            Request::Pin => buf.push(OP_PIN),
            Request::Unpin => buf.push(OP_UNPIN),
        }
        Ok(buf)
    }

    /// Decodes one frame payload as a request.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut r = Reader::new(payload);
        r.expect_version()?;
        let op = r.u8()?;
        let req = match op {
            OP_QUERY => Request::Query { sql: r.str()? },
            OP_STATUS => Request::Status { name: r.str()? },
            OP_STATS => Request::Stats,
            OP_PING => Request::Ping,
            OP_PIN => Request::Pin,
            OP_UNPIN => Request::Unpin,
            other => {
                return Err(ProtocolError::Malformed(format!("unknown opcode {other}")));
            }
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as one frame payload.
    ///
    /// # Errors
    /// [`ProtocolError::Oversize`] when a collection exceeds its wire
    /// length prefix (a >`u32::MAX`-row answer, a >`u16::MAX`-column
    /// schema, …). The server maps this to a `RESP_ERROR` reply rather
    /// than shipping a wrapped prefix the client would misparse.
    pub fn encode(&self) -> Result<Vec<u8>, ProtocolError> {
        let mut buf = vec![PROTOCOL_VERSION];
        match self {
            Response::Table {
                meta,
                columns,
                rows,
            } => {
                buf.push(RESP_TABLE);
                put_meta(&mut buf, meta);
                put_columns(&mut buf, columns)?;
                put_rows(&mut buf, rows)?;
            }
            Response::Status { meta, status } => {
                buf.push(RESP_STATUS);
                put_meta(&mut buf, meta);
                put_str(&mut buf, &status.name)?;
                put_str(&mut buf, &status.sql)?;
                put_columns(&mut buf, &status.columns)?;
                put_f64(&mut buf, status.r_hat);
                put_f64(&mut buf, status.min_ess);
                put_u64(&mut buf, status.window_len);
                buf.push(u8::from(status.converged));
                put_rows(&mut buf, &status.answer)?;
                put_u32(&mut buf, len_u32("marginals", status.marginals.len())?);
                for (values, p) in &status.marginals {
                    put_values(&mut buf, values)?;
                    put_f64(&mut buf, *p);
                }
            }
            Response::Stats(s) => {
                buf.push(RESP_STATS);
                put_u64(&mut buf, s.epoch);
                put_u64(&mut buf, s.steps);
                put_u64(&mut buf, s.samples);
                buf.push(u8::from(s.running));
                buf.push(u8::from(s.degraded));
                match &s.error {
                    None => buf.push(0),
                    Some(e) => {
                        buf.push(1);
                        put_str(&mut buf, e)?;
                    }
                }
            }
            Response::Pong => buf.push(RESP_PONG),
            Response::Pinned { meta } => {
                buf.push(RESP_PINNED);
                put_meta(&mut buf, meta);
            }
            Response::Unpinned => buf.push(RESP_UNPINNED),
            Response::Unavailable { retry_after_ms } => {
                buf.push(RESP_UNAVAILABLE);
                put_u64(&mut buf, *retry_after_ms);
            }
            Response::Error(e) => {
                buf.push(RESP_ERROR);
                buf.push(e.code.to_byte());
                match e.offset {
                    None => buf.push(0),
                    Some(o) => {
                        buf.push(1);
                        put_u64(&mut buf, o);
                    }
                }
                put_str(&mut buf, &e.message)?;
                put_str(&mut buf, &e.rendered)?;
            }
        }
        Ok(buf)
    }

    /// Decodes one frame payload as a response.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut r = Reader::new(payload);
        r.expect_version()?;
        let kind = r.u8()?;
        let resp = match kind {
            RESP_TABLE => Response::Table {
                meta: r.meta()?,
                columns: r.columns()?,
                rows: r.rows()?,
            },
            RESP_STATUS => {
                let meta = r.meta()?;
                let name = r.str()?;
                let sql = r.str()?;
                let columns = r.columns()?;
                let r_hat = r.f64()?;
                let min_ess = r.f64()?;
                let window_len = r.u64()?;
                let converged = r.bool()?;
                let answer = r.rows()?;
                let n = r.u32()? as usize;
                let mut marginals = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let values = r.values()?;
                    let p = r.f64()?;
                    marginals.push((values, p));
                }
                Response::Status {
                    meta,
                    status: Box::new(WireQueryStatus {
                        name,
                        sql,
                        columns,
                        r_hat,
                        min_ess,
                        window_len,
                        converged,
                        answer,
                        marginals,
                    }),
                }
            }
            RESP_STATS => Response::Stats(WireStats {
                epoch: r.u64()?,
                steps: r.u64()?,
                samples: r.u64()?,
                running: r.bool()?,
                degraded: r.bool()?,
                error: if r.bool()? { Some(r.str()?) } else { None },
            }),
            RESP_PONG => Response::Pong,
            RESP_PINNED => Response::Pinned { meta: r.meta()? },
            RESP_UNPINNED => Response::Unpinned,
            RESP_UNAVAILABLE => Response::Unavailable {
                retry_after_ms: r.u64()?,
            },
            RESP_ERROR => Response::Error(WireError {
                code: ErrorCode::from_byte(r.u8()?)?,
                offset: if r.bool()? { Some(r.u64()?) } else { None },
                message: r.str()?,
                rendered: r.str()?,
            }),
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown response kind {other}"
                )));
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

// ------------------------------------------------------------- decoding --

/// Bounds-checked cursor over one frame payload. Every read is total:
/// truncated or trailing bytes surface as [`ProtocolError::Malformed`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let (out, end) = self
            .pos
            .checked_add(n)
            .and_then(|end| Some((self.buf.get(self.pos..end)?, end)))
            .ok_or_else(|| {
                ProtocolError::Malformed(format!(
                    "payload truncated: wanted {n} bytes at offset {}",
                    self.pos
                ))
            })?;
        self.pos = end;
        Ok(out)
    }

    /// Takes exactly `N` bytes as a fixed-size array — the checked form of
    /// `take(N)?.try_into().unwrap()`.
    fn take_n<const N: usize>(&mut self) -> Result<[u8; N], ProtocolError> {
        let s = self.take(N)?;
        <[u8; N]>::try_from(s)
            .map_err(|_| ProtocolError::Malformed(format!("payload truncated: wanted {N} bytes")))
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        self.take_n().map(|[b]| b)
    }

    fn bool(&mut self) -> Result<bool, ProtocolError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ProtocolError::Malformed(format!(
                "invalid bool byte {other}"
            ))),
        }
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take_n()?))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take_n()?))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take_n()?))
    }

    fn i64(&mut self) -> Result<i64, ProtocolError> {
        Ok(i64::from_le_bytes(self.take_n()?))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_le_bytes(self.take_n()?))
    }

    fn str(&mut self) -> Result<String, ProtocolError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::Malformed("string is not valid UTF-8".into()))
    }

    fn value(&mut self) -> Result<WireValue, ProtocolError> {
        match self.u8()? {
            VAL_NULL => Ok(WireValue::Null),
            VAL_BOOL => Ok(WireValue::Bool(self.bool()?)),
            VAL_INT => Ok(WireValue::Int(self.i64()?)),
            VAL_FLOAT => Ok(WireValue::Float(self.f64()?)),
            VAL_STR => Ok(WireValue::Str(self.str()?)),
            other => Err(ProtocolError::Malformed(format!(
                "unknown value tag {other}"
            ))),
        }
    }

    fn values(&mut self) -> Result<Vec<WireValue>, ProtocolError> {
        let n = self.u16()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.value()?);
        }
        Ok(out)
    }

    fn meta(&mut self) -> Result<EpochMeta, ProtocolError> {
        Ok(EpochMeta {
            epoch: self.u64()?,
            steps: self.u64()?,
            samples: self.u64()?,
        })
    }

    fn columns(&mut self) -> Result<Vec<String>, ProtocolError> {
        let n = self.u16()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.str()?);
        }
        Ok(out)
    }

    fn rows(&mut self) -> Result<Vec<WireRow>, ProtocolError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let count = self.i64()?;
            let values = self.values()?;
            out.push(WireRow { values, count });
        }
        Ok(out)
    }

    fn expect_version(&mut self) -> Result<(), ProtocolError> {
        let v = self.u8()?;
        if v != PROTOCOL_VERSION {
            return Err(ProtocolError::VersionMismatch(v));
        }
        Ok(())
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::Malformed(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// -------------------------------------------------------------- framing --

/// Writes one `[len u32 LE][payload]` frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    // The error must carry the true length: the old `as u32` here could
    // truncate a >4 GiB payload's reported size to something small (even
    // an in-budget-looking number).
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or(ProtocolError::FrameTooLarge(payload.len() as u64))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` signals a clean EOF *before* any length
/// byte arrived (the peer closed between messages); EOF mid-frame is an
/// error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        // lint:allow(panic, filled < 4 by the loop condition)
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(ProtocolError::Malformed("EOF inside frame length".into()));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge(u64::from(len)));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// What one timeout-aware frame read produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Framed {
    /// One complete frame payload.
    Frame(Vec<u8>),
    /// Clean EOF before any byte of a frame arrived.
    Eof,
    /// The socket's read timeout expired before any byte of a frame
    /// arrived: the connection is idle, not broken. Poll again.
    Idle,
}

/// Reads one frame from a stream whose read timeout is set, separating
/// the three cases a timeout can mean:
///
/// * timeout **before any byte** of a frame → [`Framed::Idle`] — the
///   peer simply has nothing to say; callers poll their stop flag and
///   try again;
/// * timeout **mid-frame**, with `stall_budget` not yet exhausted →
///   keep reading (a slow peer is allowed to dribble);
/// * stalled mid-frame **past the budget** → [`ProtocolError::Stalled`]
///   — a half-open or hostile peer; the connection must be closed,
///   because resuming the poll loop here would desynchronize the stream
///   (the next read would misparse leftover payload bytes as a length
///   prefix).
///
/// The plain [`read_frame`] treats every timeout as an error, which is
/// right for a client awaiting a response but wrong for a server poll
/// loop; the server reads through this instead.
pub fn read_frame_timeout(
    r: &mut impl Read,
    stall_budget: Duration,
) -> Result<Framed, ProtocolError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    // The stall clock starts at the first byte of the frame; an idle
    // connection never starts it.
    let mut started: Option<Instant> = None;
    while filled < 4 {
        // lint:allow(panic, filled < 4 by the loop condition)
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(Framed::Eof);
                }
                return Err(ProtocolError::Malformed("EOF inside frame length".into()));
            }
            Ok(n) => {
                filled += n;
                started.get_or_insert_with(Instant::now);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                match started {
                    None => return Ok(Framed::Idle),
                    Some(t0) if t0.elapsed() >= stall_budget => {
                        return Err(ProtocolError::Stalled {
                            received: filled,
                            needed: 4,
                        });
                    }
                    Some(_) => continue,
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge(u64::from(len)));
    }
    let started = started.unwrap_or_else(Instant::now);
    let mut payload = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < len as usize {
        // lint:allow(panic, got < len by the loop condition)
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(ProtocolError::Malformed("EOF inside frame payload".into()));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if started.elapsed() >= stall_budget {
                    return Err(ProtocolError::Stalled {
                        received: 4 + got,
                        needed: 4 + len as usize,
                    });
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Framed::Frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let enc = req.encode().unwrap();
        assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let enc = resp.encode().unwrap();
        assert_eq!(Response::decode(&enc).unwrap(), resp);
    }

    fn meta() -> EpochMeta {
        EpochMeta {
            epoch: 3,
            steps: 12_000,
            samples: 120,
        }
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Query {
            sql: "SELECT string FROM TOKEN WHERE label = 'B-PER'".into(),
        });
        roundtrip_request(Request::Query {
            sql: "SELECT '日本語' FROM TOKEN ☃".into(),
        });
        roundtrip_request(Request::Status { name: "q1".into() });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Pin);
        roundtrip_request(Request::Unpin);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Table {
            meta: meta(),
            columns: vec!["string".into(), "n".into()],
            rows: vec![
                WireRow {
                    values: vec![
                        WireValue::Str("Bill".into()),
                        WireValue::Int(2),
                        WireValue::Float(0.25),
                        WireValue::Bool(true),
                        WireValue::Null,
                    ],
                    count: 2,
                },
                WireRow {
                    values: vec![WireValue::Str("日本".into())],
                    count: -1,
                },
            ],
        });
        roundtrip_response(Response::Status {
            meta: meta(),
            status: Box::new(WireQueryStatus {
                name: "q1".into(),
                sql: "SELECT string FROM TOKEN".into(),
                columns: vec!["string".into()],
                r_hat: 1.013,
                min_ess: 47.5,
                window_len: 256,
                converged: true,
                answer: vec![WireRow {
                    values: vec![WireValue::Str("x".into())],
                    count: 1,
                }],
                marginals: vec![(vec![WireValue::Str("x".into())], 0.875)],
            }),
        });
        roundtrip_response(Response::Stats(WireStats {
            epoch: 9,
            steps: 100,
            samples: 10,
            running: true,
            degraded: false,
            error: None,
        }));
        roundtrip_response(Response::Stats(WireStats {
            epoch: 9,
            steps: 100,
            samples: 10,
            running: false,
            degraded: true,
            error: Some("chain died".into()),
        }));
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Pinned { meta: meta() });
        roundtrip_response(Response::Unpinned);
        roundtrip_response(Response::Unavailable {
            retry_after_ms: 250,
        });
        roundtrip_response(Response::Error(WireError {
            code: ErrorCode::Parse,
            offset: Some(17),
            message: "expected `FROM`".into(),
            rendered: "expected `FROM` (at byte 17)\nSELECT x\n       ^".into(),
        }));
        roundtrip_response(Response::Error(WireError {
            code: ErrorCode::Unavailable,
            offset: None,
            message: "no registered query `zz`".into(),
            rendered: "no registered query `zz`".into(),
        }));
    }

    #[test]
    fn truncated_and_trailing_payloads_are_errors() {
        let enc = Request::Query {
            sql: "SELECT 1".into(),
        }
        .encode()
        .unwrap();
        for cut in 0..enc.len() {
            assert!(
                Request::decode(&enc[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut trailing = enc.clone();
        trailing.push(0);
        assert!(Request::decode(&trailing).is_err());
        // Garbage after a valid response header fails too.
        let mut resp = Response::Pong.encode().unwrap();
        resp.push(7);
        assert!(Response::decode(&resp).is_err());
    }

    #[test]
    fn version_and_opcode_mismatches_are_typed() {
        let mut enc = Request::Ping.encode().unwrap();
        enc[0] = 99;
        assert!(matches!(
            Request::decode(&enc),
            Err(ProtocolError::VersionMismatch(99))
        ));
        let mut enc = Request::Ping.encode().unwrap();
        enc[1] = 200;
        assert!(matches!(
            Request::decode(&enc),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn oversize_lengths_are_typed_errors_not_wrapped_prefixes() {
        // The length checks are the validation point: a 2^32-byte string
        // cannot be allocated in a test, so the boundary is exercised on
        // the helpers the encoders call.
        assert_eq!(len_u32("string", u32::MAX as usize).unwrap(), u32::MAX);
        match len_u32("string", u32::MAX as usize + 1) {
            Err(ProtocolError::Oversize { field, len, max }) => {
                assert_eq!(field, "string");
                assert_eq!(len, u32::MAX as usize + 1);
                assert_eq!(max, u64::from(u32::MAX));
            }
            other => panic!("expected Oversize, got {other:?}"),
        }
        assert_eq!(len_u16("columns", u16::MAX as usize).unwrap(), u16::MAX);
        assert!(matches!(
            len_u16("columns", u16::MAX as usize + 1),
            Err(ProtocolError::Oversize {
                field: "columns",
                ..
            })
        ));

        // End to end at the (allocatable) u16 prefixes: 65 536 values
        // would previously have wrapped to a count prefix of 0 — the
        // peer would decode an empty row and misparse everything after.
        let row = WireRow {
            values: vec![WireValue::Null; u16::MAX as usize + 1],
            count: 1,
        };
        let resp = Response::Table {
            meta: meta(),
            columns: vec!["c".into()],
            rows: vec![row],
        };
        assert!(matches!(
            resp.encode(),
            Err(ProtocolError::Oversize {
                field: "row values",
                ..
            })
        ));
        let resp = Response::Table {
            meta: meta(),
            columns: vec![String::new(); u16::MAX as usize + 1],
            rows: vec![],
        };
        assert!(matches!(
            resp.encode(),
            Err(ProtocolError::Oversize {
                field: "columns",
                ..
            })
        ));
    }

    #[test]
    fn write_frame_reports_the_true_oversize_length() {
        // One byte past the 16 MiB budget: the error must carry the real
        // length (the old `as u32` could misreport a >4 GiB payload).
        let payload = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut sink = Vec::new();
        match write_frame(&mut sink, &payload) {
            Err(ProtocolError::FrameTooLarge(n)) => {
                assert_eq!(n, u64::from(MAX_FRAME_LEN) + 1);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        assert!(sink.is_empty(), "nothing may be written on oversize");
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");

        // A hostile length prefix is rejected without allocating it.
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes();
        let mut cursor = std::io::Cursor::new(huge.to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::FrameTooLarge(_))
        ));

        // EOF mid-frame is an error, not a silent None.
        let mut partial = Vec::new();
        write_frame(&mut partial, b"abcdef").unwrap();
        partial.truncate(6);
        let mut cursor = std::io::Cursor::new(partial);
        assert!(read_frame(&mut cursor).is_err());
    }

    /// A peer that serves `data` and then stalls forever (every further
    /// read times out, as on a socket with a read timeout).
    struct StallingPeer {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for StallingPeer {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "stalled",
                ));
            }
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn timeout_reads_distinguish_idle_eof_and_stall() {
        let budget = Duration::from_millis(5);

        // Nothing sent at all: idle, poll again — NOT an error.
        let mut idle = StallingPeer {
            data: vec![],
            pos: 0,
        };
        assert_eq!(read_frame_timeout(&mut idle, budget).unwrap(), Framed::Idle);

        // A whole frame followed by silence: the frame, then idle.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut peer = StallingPeer { data: buf, pos: 0 };
        assert_eq!(
            read_frame_timeout(&mut peer, budget).unwrap(),
            Framed::Frame(b"hello".to_vec())
        );
        assert_eq!(read_frame_timeout(&mut peer, budget).unwrap(), Framed::Idle);

        // Clean EOF before any byte.
        let mut eof = std::io::Cursor::new(Vec::new());
        assert_eq!(read_frame_timeout(&mut eof, budget).unwrap(), Framed::Eof);

        // Length prefix then stall: typed Stalled, never Idle — treating
        // this as an idle poll tick is the desync bug this API fixes.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(7); // 4-byte length + 3 payload bytes, then silence
        let mut peer = StallingPeer { data: buf, pos: 0 };
        match read_frame_timeout(&mut peer, budget) {
            Err(ProtocolError::Stalled { received, needed }) => {
                assert_eq!(received, 7);
                assert_eq!(needed, 10);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }

        // Two bytes of the length prefix itself, then silence.
        let mut peer = StallingPeer {
            data: vec![6, 0],
            pos: 0,
        };
        match read_frame_timeout(&mut peer, budget) {
            Err(ProtocolError::Stalled { received, needed }) => {
                assert_eq!(received, 2);
                assert_eq!(needed, 4);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }
}
