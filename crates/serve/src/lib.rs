//! `fgdb-serve`: the TCP serving layer over a live sampler.
//!
//! The paper's system serves probabilistic queries *while* MCMC inference
//! runs continuously; `fgdb-core`'s [`serving`](fgdb_core::serving) module
//! provides the concurrency core (a [`LiveSampler`](fgdb_core::LiveSampler)
//! publishing snapshot-isolated [`EpochSnapshot`](fgdb_core::EpochSnapshot)s
//! through cheap-clone [`EpochReader`](fgdb_core::EpochReader) handles).
//! This crate puts a network in front of it, hand-rolled on `std::net` —
//! no external dependencies:
//!
//! * [`protocol`] — the length-prefixed wire format: `[len: u32 LE]`
//!   frames whose payloads carry versioned request/response messages
//!   (SQL text in, convergence-tagged answer tables out). The full byte
//!   layout is specified in `docs/FORMAT.md`.
//! * [`server`] — [`Server`]: a `TcpListener` accept loop plus one worker
//!   thread per connection. Each connection may *pin* an epoch (`PIN`),
//!   after which every query it sends runs against that pinned world —
//!   snapshot isolation across requests — or run unpinned, where each
//!   query pins the freshest epoch for its own duration. Overload sheds
//!   with typed `Unavailable{retry_after_ms}` frames (connection cap,
//!   degraded sampler) instead of queueing or hanging. Graceful
//!   shutdown drains workers via a stop flag and a self-connect.
//! * [`client`] — [`Client`]: the blocking client used by the tests, the
//!   load generator in `fgdb-bench`, and the `serving` example. Socket
//!   timeouts surface as typed `Timeout` errors; `query_with_retry`
//!   backs off exponentially with deterministic jitter, honoring server
//!   retry hints.
//!
//! Queries never touch the sampler's own state: the server holds only an
//! `EpochReader`, so a slow scan (or a slow client) costs inference
//! nothing beyond the CPU it burns.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientConfig, ClientError, TableAnswer};
pub use protocol::{
    EpochMeta, ErrorCode, Framed, ProtocolError, Request, Response, WireError, WireQueryStatus,
    WireRow, WireStats, WireValue, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig};
