//! The TCP server: accept loop, per-connection workers, graceful
//! shutdown.
//!
//! The server owns nothing but an [`EpochReader`] — the sampler keeps
//! running whether or not a server fronts it, and a worker answering a
//! query holds a pinned [`EpochSnapshot`]
//! `Arc`, never any lock the sampler contends on. Connection lifecycle:
//!
//! * each accepted connection gets its own worker thread with a short
//!   read timeout, so workers notice the stop flag promptly even when
//!   their client is idle;
//! * a connection may `PIN` the freshest epoch; every later query on that
//!   connection answers from the pinned world until `UNPIN` — snapshot
//!   isolation across requests, the wire-level form of the core's
//!   epoch-pinning contract;
//! * malformed frames produce an error *response* where possible and
//!   close only that connection — a hostile client cannot take down the
//!   process (protocol decode is total; query evaluation returns typed
//!   errors by the bugfix sweep in this PR);
//! * [`Server::stop`] flips the stop flag, self-connects to unblock
//!   `accept`, and joins the accept loop and every worker.

use crate::protocol::{
    read_frame, write_frame, EpochMeta, ErrorCode, ProtocolError, Request, Response, WireError,
    WireQueryStatus, WireRow, WireStats, WireValue,
};
use fgdb_core::{EpochReader, EpochSnapshot, EvaluateError, QueryError, QueryStatus};
use fgdb_relational::QueryResult;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a worker blocks in `read` before re-checking the stop flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// A running TCP server over one [`EpochReader`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop. Each connection is served by its own
    /// worker thread until the client disconnects or [`Server::stop`].
    pub fn start(reader: EpochReader, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = Arc::new(Mutex::new(Vec::new()));

        let a_stop = Arc::clone(&stop);
        let a_workers = Arc::clone(&workers);
        let accept = std::thread::Builder::new()
            .name("fgdb-serve-accept".into())
            .spawn(move || accept_loop(listener, reader, a_stop, a_workers))?;

        Ok(Server {
            addr: local,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, drains every worker, joins all
    /// threads. Idempotent through `Drop` (dropping an already-stopped
    /// server is a no-op).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop: a throwaway self-connection makes
        // `accept` return so the loop can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let drained: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for h in drained {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    reader: EpochReader,
    stop: Arc<AtomicBool>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        let w_reader = reader.clone();
        let w_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("fgdb-serve-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, w_reader, w_stop);
            });
        if let Ok(h) = handle {
            workers.lock().unwrap_or_else(|e| e.into_inner()).push(h);
        }
    }
}

/// Serves one connection until EOF, a fatal protocol error, or stop.
fn serve_connection(
    mut stream: TcpStream,
    reader: EpochReader,
    stop: Arc<AtomicBool>,
) -> Result<(), ProtocolError> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_nodelay(true)?;
    // The connection's pinned epoch, when `PIN`ned.
    let mut pinned: Option<Arc<EpochSnapshot>> = None;
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()), // client closed cleanly
            Err(ProtocolError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // idle poll tick: re-check the stop flag
            }
            Err(e) => return Err(e),
        };
        let response = match Request::decode(&payload) {
            Ok(req) => handle_request(req, &reader, &mut pinned),
            // A decodable-length frame with garbage inside gets a typed
            // error response; the connection survives.
            Err(e) => Response::Error(WireError {
                code: ErrorCode::Protocol,
                offset: None,
                message: e.to_string(),
                rendered: e.to_string(),
            }),
        };
        write_frame(&mut stream, &response.encode())?;
    }
}

fn handle_request(
    req: Request,
    reader: &EpochReader,
    pinned: &mut Option<Arc<EpochSnapshot>>,
) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Stats => {
            let s = reader.status();
            Response::Stats(WireStats {
                epoch: s.epoch,
                steps: s.steps,
                samples: s.samples,
                running: s.running,
                error: s.error,
            })
        }
        Request::Pin => {
            let snap = reader.pin();
            let meta = meta_of(&snap);
            *pinned = Some(snap);
            Response::Pinned { meta }
        }
        Request::Unpin => {
            *pinned = None;
            Response::Unpinned
        }
        Request::Query { sql } => {
            // A pinned connection reads its pinned world; otherwise pin
            // the freshest epoch for just this request.
            let snap = pinned.clone().unwrap_or_else(|| reader.pin());
            match snap.query(&sql) {
                Ok(result) => table_response(&snap, result),
                Err(e) => Response::Error(wire_error(e, &sql)),
            }
        }
        Request::Status { name } => {
            let snap = pinned.clone().unwrap_or_else(|| reader.pin());
            match snap.status(&name) {
                Some(status) => Response::Status {
                    meta: meta_of(&snap),
                    status: Box::new(wire_status(status)),
                },
                None => Response::Error(WireError {
                    code: ErrorCode::Unavailable,
                    offset: None,
                    message: format!("no registered query `{name}`"),
                    rendered: format!("no registered query `{name}`"),
                }),
            }
        }
    }
}

fn meta_of(snap: &EpochSnapshot) -> EpochMeta {
    EpochMeta {
        epoch: snap.epoch,
        steps: snap.steps,
        samples: snap.samples,
    }
}

fn table_response(snap: &EpochSnapshot, result: QueryResult) -> Response {
    Response::Table {
        meta: meta_of(snap),
        columns: result.columns.iter().map(|c| c.to_string()).collect(),
        rows: result
            .rows
            .sorted_entries()
            .into_iter()
            .map(|(tuple, count)| WireRow {
                values: tuple.values().iter().map(WireValue::from).collect(),
                count,
            })
            .collect(),
    }
}

fn wire_status(status: &QueryStatus) -> WireQueryStatus {
    WireQueryStatus {
        name: status.name.to_string(),
        sql: status.sql.to_string(),
        columns: status.columns.iter().map(|c| c.to_string()).collect(),
        r_hat: status.r_hat,
        min_ess: status.min_ess,
        window_len: status.window_len,
        converged: status.converged,
        answer: status
            .answer
            .sorted_entries()
            .into_iter()
            .map(|(tuple, count)| WireRow {
                values: tuple.values().iter().map(WireValue::from).collect(),
                count,
            })
            .collect(),
        marginals: status
            .marginals
            .iter()
            .map(|(tuple, p)| (tuple.values().iter().map(WireValue::from).collect(), *p))
            .collect(),
    }
}

/// Maps an evaluation failure to its wire form. Parse errors carry their
/// byte offset and the caret rendering (`ParseError::render` is total and
/// boundary-safe under multibyte input — the satellite bugfix this PR
/// ships alongside the server).
fn wire_error(e: EvaluateError, sql: &str) -> WireError {
    match &e {
        EvaluateError::Query(QueryError::Parse(pe)) => WireError {
            code: ErrorCode::Parse,
            offset: pe.offset.map(|o| o as u64),
            message: pe.message.clone(),
            rendered: pe.render(sql),
        },
        EvaluateError::Query(QueryError::Plan(_)) => WireError {
            code: ErrorCode::Parse,
            offset: None,
            message: e.to_string(),
            rendered: e.to_string(),
        },
        _ => WireError {
            code: ErrorCode::Exec,
            offset: None,
            message: e.to_string(),
            rendered: e.to_string(),
        },
    }
}
