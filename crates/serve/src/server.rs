//! The TCP server: accept loop, per-connection workers, overload
//! shedding, graceful shutdown.
//!
//! The server owns nothing but an [`EpochReader`] — the sampler keeps
//! running whether or not a server fronts it, and a worker answering a
//! query holds a pinned [`EpochSnapshot`]
//! `Arc`, never any lock the sampler contends on. Connection lifecycle:
//!
//! * each accepted connection gets its own worker thread with a short
//!   read timeout, so workers notice the stop flag promptly even when
//!   their client is idle;
//! * a connection may `PIN` the freshest epoch; every later query on that
//!   connection answers from the pinned world until `UNPIN` — snapshot
//!   isolation across requests, the wire-level form of the core's
//!   epoch-pinning contract;
//! * malformed frames produce an error *response* where possible and
//!   close only that connection — a hostile client cannot take down the
//!   process. A peer that starts a frame and stalls is cut off after
//!   [`ServerConfig::stall_budget`] (continuing to poll there would
//!   desynchronize the stream — see
//!   [`read_frame_timeout`]);
//! * **overload sheds, it never queues silently**: past
//!   [`ServerConfig::max_connections`] live connections, an excess accept
//!   is answered with one typed [`Response::Unavailable`] frame carrying
//!   a retry hint, then closed. Likewise, while the sampler is degraded
//!   (mid restart-from-recovery) requests for *fresh* state — `PIN` and
//!   unpinned queries — answer `Unavailable`; an explicitly pinned
//!   connection keeps reading its immutable epoch, because degradation
//!   is about freshness, never about consistency;
//! * [`Server::stop`] flips the stop flag, self-connects to unblock
//!   `accept`, and joins the accept loop and every worker.

use crate::protocol::{
    read_frame_timeout, write_frame, EpochMeta, ErrorCode, Framed, ProtocolError, Request,
    Response, WireError, WireQueryStatus, WireRow, WireStats, WireValue,
};
use fgdb_core::{EpochReader, EpochSnapshot, EvaluateError, QueryError, QueryStatus, SamplerState};
use fgdb_relational::QueryResult;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs; [`ServerConfig::default`] suits tests and small
/// deployments.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Live connections served concurrently; excess accepts are answered
    /// with [`Response::Unavailable`] and closed (`FGDB_MAX_CONNS`).
    pub max_connections: usize,
    /// How long a worker blocks in `read` before re-checking the stop
    /// flag on an idle connection.
    pub read_poll: Duration,
    /// How long a peer may dawdle *mid-frame* before the connection is
    /// closed as stalled.
    pub stall_budget: Duration,
    /// Socket write timeout: a client that stops draining its socket
    /// cannot park a worker forever.
    pub write_timeout: Duration,
    /// The retry hint carried by every [`Response::Unavailable`], in
    /// milliseconds.
    pub retry_after_ms: u64,
    /// Whether to shed fresh-state requests (`PIN`, unpinned queries)
    /// while the sampler is degraded. Pinned reads always keep working.
    pub shed_degraded: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            read_poll: Duration::from_millis(50),
            stall_budget: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            retry_after_ms: 100,
            shed_degraded: true,
        }
    }
}

impl ServerConfig {
    /// Environment overrides: `FGDB_MAX_CONNS`, `FGDB_RETRY_AFTER_MS`.
    pub fn from_env() -> Self {
        let mut config = ServerConfig::default();
        if let Some(n) = env_usize("FGDB_MAX_CONNS") {
            config.max_connections = n.max(1);
        }
        if let Some(ms) = env_usize("FGDB_RETRY_AFTER_MS") {
            config.retry_after_ms = ms as u64;
        }
        config
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// A running TCP server over one [`EpochReader`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop with default tuning plus environment
    /// overrides ([`ServerConfig::from_env`]). Each connection is served
    /// by its own worker thread until the client disconnects or
    /// [`Server::stop`].
    pub fn start(reader: EpochReader, addr: &str) -> io::Result<Server> {
        Self::start_with(reader, addr, ServerConfig::from_env())
    }

    /// [`Server::start`] with explicit tuning.
    pub fn start_with(reader: EpochReader, addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = Arc::new(Mutex::new(Vec::new()));

        let a_stop = Arc::clone(&stop);
        let a_workers = Arc::clone(&workers);
        let accept = std::thread::Builder::new()
            .name("fgdb-serve-accept".into())
            .spawn(move || accept_loop(listener, reader, config, a_stop, a_workers))?;

        Ok(Server {
            addr: local,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, drains every worker, joins all
    /// threads. Idempotent through `Drop` (dropping an already-stopped
    /// server is a no-op).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop: a throwaway self-connection makes
        // `accept` return so the loop can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let drained: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for h in drained {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decrements the live-connection count when a worker exits, however it
/// exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn accept_loop(
    listener: TcpListener,
    reader: EpochReader,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let live = Arc::new(AtomicUsize::new(0));
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        // At the cap: answer one typed Unavailable frame and close, so
        // the excess client learns *when* to come back instead of
        // queueing invisibly or timing out against silence.
        if live.load(Ordering::Acquire) >= config.max_connections {
            shed(stream, &config);
            continue;
        }
        live.fetch_add(1, Ordering::AcqRel);
        let guard = ConnGuard(Arc::clone(&live));
        let w_reader = reader.clone();
        let w_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("fgdb-serve-conn".into())
            .spawn(move || {
                let _guard = guard;
                let _ = serve_connection(stream, w_reader, config, w_stop);
            });
        match handle {
            Ok(h) => {
                let mut guard = workers.lock().unwrap_or_else(|e| e.into_inner());
                // Reap finished workers so a long-lived server's handle
                // list tracks live connections, not historical ones.
                guard.retain(|w| !w.is_finished());
                guard.push(h);
            }
            Err(_) => {
                // Spawn failed: the guard moved into the closure was
                // never run, so the count was already released by drop.
            }
        }
    }
}

/// Answers one `Unavailable` frame on an excess connection, best effort.
fn shed(mut stream: TcpStream, config: &ServerConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let shed = Response::Unavailable {
        retry_after_ms: config.retry_after_ms,
    };
    if let Ok(payload) = shed.encode() {
        let _ = write_frame(&mut stream, &payload);
    }
}

/// Serves one connection until EOF, a fatal protocol error, or stop.
fn serve_connection(
    mut stream: TcpStream,
    reader: EpochReader,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
) -> Result<(), ProtocolError> {
    stream.set_read_timeout(Some(config.read_poll))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    stream.set_nodelay(true)?;
    // The connection's pinned epoch, when `PIN`ned.
    let mut pinned: Option<Arc<EpochSnapshot>> = None;
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let payload = match read_frame_timeout(&mut stream, config.stall_budget) {
            Ok(Framed::Frame(p)) => p,
            Ok(Framed::Eof) => return Ok(()), // client closed cleanly
            Ok(Framed::Idle) => continue,     // idle poll tick: re-check the stop flag
            Err(e @ ProtocolError::Stalled { .. }) => {
                // Half-open or hostile peer: tell it why (best effort)
                // and close. The stream position is mid-frame, so the
                // connection cannot be resumed.
                let resp = Response::Error(WireError {
                    code: ErrorCode::Protocol,
                    offset: None,
                    message: e.to_string(),
                    rendered: e.to_string(),
                });
                if let Ok(payload) = resp.encode() {
                    let _ = write_frame(&mut stream, &payload);
                }
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        let response = match Request::decode(&payload) {
            Ok(req) => handle_request(req, &reader, &config, &mut pinned),
            // A decodable-length frame with garbage inside gets a typed
            // error response; the connection survives.
            Err(e) => Response::Error(WireError {
                code: ErrorCode::Protocol,
                offset: None,
                message: e.to_string(),
                rendered: e.to_string(),
            }),
        };
        // An answer too large for its own wire prefixes degrades to a
        // typed error response; only a failure to encode *that* (or the
        // socket) ends the connection.
        let payload = response.encode().or_else(|e| {
            Response::Error(WireError {
                code: ErrorCode::Exec,
                offset: None,
                message: e.to_string(),
                rendered: e.to_string(),
            })
            .encode()
        })?;
        write_frame(&mut stream, &payload)?;
    }
}

fn handle_request(
    req: Request,
    reader: &EpochReader,
    config: &ServerConfig,
    pinned: &mut Option<Arc<EpochSnapshot>>,
) -> Response {
    // While the sampler is degraded (or dead), fresh-state requests shed
    // with a retry hint; pinned reads and health probes still answer. A
    // *gracefully stopped* sampler keeps serving its final epoch — only
    // fault states shed.
    let shed_fresh = config.shed_degraded
        && matches!(
            reader.status().state,
            SamplerState::Degraded { .. } | SamplerState::Failed
        );
    match req {
        Request::Ping => Response::Pong,
        Request::Stats => {
            let s = reader.status();
            Response::Stats(WireStats {
                epoch: s.epoch,
                steps: s.steps,
                samples: s.samples,
                running: s.running,
                degraded: s.state.is_degraded(),
                error: s.error.map(|e| e.to_string()),
            })
        }
        Request::Pin => {
            if shed_fresh {
                return Response::Unavailable {
                    retry_after_ms: config.retry_after_ms,
                };
            }
            let snap = reader.pin();
            let meta = meta_of(&snap);
            *pinned = Some(snap);
            Response::Pinned { meta }
        }
        Request::Unpin => {
            *pinned = None;
            Response::Unpinned
        }
        Request::Query { sql } => {
            // A pinned connection reads its pinned world; otherwise pin
            // the freshest epoch for just this request.
            let snap = match pinned.clone() {
                Some(snap) => snap,
                None if shed_fresh => {
                    return Response::Unavailable {
                        retry_after_ms: config.retry_after_ms,
                    };
                }
                None => reader.pin(),
            };
            match snap.query(&sql) {
                Ok(result) => table_response(&snap, result),
                Err(e) => Response::Error(wire_error(e, &sql)),
            }
        }
        Request::Status { name } => {
            let snap = match pinned.clone() {
                Some(snap) => snap,
                None if shed_fresh => {
                    return Response::Unavailable {
                        retry_after_ms: config.retry_after_ms,
                    };
                }
                None => reader.pin(),
            };
            match snap.status(&name) {
                Some(status) => Response::Status {
                    meta: meta_of(&snap),
                    status: Box::new(wire_status(status)),
                },
                None => Response::Error(WireError {
                    code: ErrorCode::Unavailable,
                    offset: None,
                    message: format!("no registered query `{name}`"),
                    rendered: format!("no registered query `{name}`"),
                }),
            }
        }
    }
}

fn meta_of(snap: &EpochSnapshot) -> EpochMeta {
    EpochMeta {
        epoch: snap.epoch,
        steps: snap.steps,
        samples: snap.samples,
    }
}

fn table_response(snap: &EpochSnapshot, result: QueryResult) -> Response {
    Response::Table {
        meta: meta_of(snap),
        columns: result.columns.iter().map(|c| c.to_string()).collect(),
        rows: result
            .rows
            .sorted_entries()
            .into_iter()
            .map(|(tuple, count)| WireRow {
                values: tuple.values().iter().map(WireValue::from).collect(),
                count,
            })
            .collect(),
    }
}

fn wire_status(status: &QueryStatus) -> WireQueryStatus {
    WireQueryStatus {
        name: status.name.to_string(),
        sql: status.sql.to_string(),
        columns: status.columns.iter().map(|c| c.to_string()).collect(),
        r_hat: status.r_hat,
        min_ess: status.min_ess,
        window_len: status.window_len,
        converged: status.converged,
        answer: status
            .answer
            .sorted_entries()
            .into_iter()
            .map(|(tuple, count)| WireRow {
                values: tuple.values().iter().map(WireValue::from).collect(),
                count,
            })
            .collect(),
        marginals: status
            .marginals
            .iter()
            .map(|(tuple, p)| (tuple.values().iter().map(WireValue::from).collect(), *p))
            .collect(),
    }
}

/// Maps an evaluation failure to its wire form. Parse errors carry their
/// byte offset and the caret rendering (`ParseError::render` is total and
/// boundary-safe under multibyte input — the satellite bugfix this PR
/// ships alongside the server).
fn wire_error(e: EvaluateError, sql: &str) -> WireError {
    match &e {
        EvaluateError::Query(QueryError::Parse(pe)) => WireError {
            code: ErrorCode::Parse,
            offset: pe.offset.map(|o| o as u64),
            message: pe.message.clone(),
            rendered: pe.render(sql),
        },
        EvaluateError::Query(QueryError::Plan(_)) => WireError {
            code: ErrorCode::Parse,
            offset: None,
            message: e.to_string(),
            rendered: e.to_string(),
        },
        _ => WireError {
            code: ErrorCode::Exec,
            offset: None,
            message: e.to_string(),
            rendered: e.to_string(),
        },
    }
}
